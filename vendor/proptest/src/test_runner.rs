//! Test configuration, RNG, and case-level error types.

use std::hash::{Hash, Hasher};

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest's default; cheap for the property bodies in this
        // repository.
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by [`crate::prop_assume!`].
    Reject(&'static str),
    /// A [`crate::prop_assert!`]-family assertion failed.
    Fail(String),
}

/// The deterministic RNG driving generation: seeded from the test's name so
/// every test sees a stable, independent stream across runs.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// An RNG seeded from `test_name`.
    #[must_use]
    pub fn for_test(test_name: &str) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        // DefaultHasher::new() is specified to be stable within a process
        // and, in practice, across runs of the same toolchain; the seed only
        // needs to differ between tests.
        test_name.hash(&mut hasher);
        TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(hasher.finish()))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
