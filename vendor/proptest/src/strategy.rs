//! The [`Strategy`] trait and the combinators this repository uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying the draw. Panics after
    /// a large number of consecutive rejections (pathological predicate).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive draws: {}", self.reason);
    }
}

/// See [`crate::prop_oneof!`]: a weighted union of same-valued strategies.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof needs at least one positively weighted arm");
        Union { arms, total_weight }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
