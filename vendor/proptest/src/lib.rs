//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the slice of the
//! proptest API this repository's property tests use is vendored here:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter` / `boxed`,
//! * integer and float range strategies, tuple strategies, [`strategy::Just`],
//!   [`prop_oneof!`], [`arbitrary::any`], and [`collection::vec`],
//! * [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name, there is **no shrinking**
//! (the failing inputs are printed as generated), and persisted regression
//! files (`*.proptest-regressions`) are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — uniform strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing uniformly distributed values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs. Attach `#![proptest_config(expr)]` as the first token to override
/// the configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n  inputs: {}",
                                case + 1, config.cases, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// the generated inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `left != right`\n  both: `{:?}`", l);
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses among several strategies with the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u64..1_000, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..1_000).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b))) {
            prop_assert!(v.0 < 4);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..10, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![1 => Just(1u8), 1 => Just(2u8), 3 => Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn filter_upholds_predicate(x in (0u8..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_discards_without_failing(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("x was"), "message: {msg}");
        assert!(msg.contains("inputs"), "message: {msg}");
    }
}
