//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of `rand 0.8` APIs the simulator uses are vendored here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — the same
//! construction `rand` itself recommends for seeding. Streams are
//! deterministic for a given seed (which the simulator relies on for
//! reproducible workloads) but do not bit-match the real `rand` crate;
//! nothing in this repository depends on the exact stream, only on
//! determinism and reasonable uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly ([`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws a value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256** state words — checkpointing support for the
        /// simulator (the real `rand` offers the same through serde).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from previously captured state words; the
        /// stream continues exactly where [`StdRng::state`] left it.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` in use).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should differ almost everywhere");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} far from 0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
