//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the criterion surface
//! this repository's benches use is vendored here: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from real criterion: no statistical analysis beyond
//! median/mean-of-samples, no HTML reports, no baseline storage. Each
//! benchmark is calibrated so one sample takes roughly
//! [`Criterion::measurement_budget`], then `sample_size` samples are timed
//! with `std::time::Instant` and the per-iteration median/mean are printed.
//!
//! Harness flags understood (others are ignored so `cargo bench` extra args
//! don't break the run): positional substrings filter benchmark names,
//! `--test` runs every benchmark body exactly once without timing (what
//! `cargo test` passes to `harness = false` bench targets), and `--quick`
//! cuts sample counts and budgets for CI smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between setup and routine.
///
/// The shim times each sample as one pre-generated batch regardless of the
/// variant; the enum exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; large batches per sample.
    SmallInput,
    /// Routine input is large; smaller batches per sample.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter (grouped benches already carry the
    /// group name).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a RunConfig,
    /// Filled in by the timing loops; one entry per sample, already divided
    /// down to per-iteration nanoseconds.
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly; the routine's return value is black-boxed
    /// so its computation cannot be optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            black_box(routine());
            return;
        }
        let iters = calibrate(self.cfg, |n| {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            start.elapsed()
        });
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns.push(per_iter_ns(start.elapsed(), iters));
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup cost is kept
    /// out of the measurement by pre-generating each sample's batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.cfg.test_mode {
            black_box(routine(setup()));
            return;
        }
        let iters = calibrate(self.cfg, |n| {
            let batch: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in batch {
                black_box(routine(input));
            }
            start.elapsed()
        });
        for _ in 0..self.cfg.sample_size {
            let batch: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in batch {
                black_box(routine(input));
            }
            self.samples_ns.push(per_iter_ns(start.elapsed(), iters));
        }
    }
}

fn per_iter_ns(elapsed: Duration, iters: u64) -> f64 {
    elapsed.as_secs_f64() * 1e9 / iters as f64
}

/// Doubles the iteration count until one sample meets the measurement
/// budget, warming the code up as a side effect.
fn calibrate<F: FnMut(u64) -> Duration>(cfg: &RunConfig, mut run: F) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let took = run(iters);
        if took >= cfg.budget || iters >= 1 << 24 {
            return iters;
        }
        iters = if took.is_zero() {
            iters * 8
        } else {
            // Aim directly at the budget with 20% headroom, at least doubling.
            let scale = cfg.budget.as_secs_f64() / took.as_secs_f64() * 1.2;
            ((iters as f64 * scale) as u64).max(iters * 2)
        };
    }
}

#[derive(Debug, Clone)]
struct RunConfig {
    sample_size: usize,
    budget: Duration,
    test_mode: bool,
}

/// The benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    sample_size: usize,
    budget: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            sample_size: 30,
            budget: Duration::from_millis(10),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Applies harness command-line arguments (filters, `--test`,
    /// `--quick`); unknown flags are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "-t" => self.test_mode = true,
                "--quick" => {
                    self.sample_size = 10;
                    self.budget = Duration::from_millis(2);
                }
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    // Value-carrying criterion flags: swallow the value when
                    // present so it is not mistaken for a filter.
                    if arg == "--save-baseline"
                        || arg == "--baseline"
                        || arg == "--profile-time"
                        || arg == "--measurement-time"
                        || arg == "--warm-up-time"
                        || arg == "--sample-size"
                    {
                        let _ = args.next();
                    }
                }
                other if other.starts_with('-') => {}
                filter => self.filters.push(filter.to_owned()),
            }
        }
        self
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Overrides how long one calibrated sample should take.
    pub fn measurement_budget(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group_name: group_name.into(), sample_size: None }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let cfg = RunConfig {
            sample_size: self.sample_size,
            budget: self.budget,
            test_mode: self.test_mode,
        };
        self.run_one(id.to_owned(), cfg, f);
        self
    }

    fn matches_filter(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f.as_str()))
    }

    fn run_one<F>(&mut self, full_id: String, cfg: RunConfig, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if !self.matches_filter(&full_id) {
            return;
        }
        let mut bencher = Bencher { cfg: &cfg, samples_ns: Vec::new() };
        f(&mut bencher);
        if cfg.test_mode {
            println!("test {full_id} ... ok");
            return;
        }
        let mut s = bencher.samples_ns;
        if s.is_empty() {
            println!("{full_id}: no samples recorded");
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{full_id}: median {} / mean {} ({} samples)",
            format_ns(median),
            format_ns(mean),
            s.len()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing an id prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group_name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    fn cfg(&self) -> RunConfig {
        RunConfig {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            budget: self.criterion.budget,
            test_mode: self.criterion.test_mode,
        }
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full_id = format!("{}/{}", self.group_name, id.into());
        let cfg = self.cfg();
        self.criterion.run_one(full_id, cfg, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full_id = format!("{}/{}", self.group_name, id);
        let cfg = self.cfg();
        self.criterion.run_one(full_id, cfg, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_reaches_budget() {
        let cfg =
            RunConfig { sample_size: 2, budget: Duration::from_micros(200), test_mode: false };
        let mut total: u64 = 0;
        let iters = calibrate(&cfg, |n| {
            let start = Instant::now();
            for i in 0..n {
                total = total.wrapping_add(black_box(i));
            }
            start.elapsed()
        });
        assert!(iters >= 2, "trivial loop must need many iterations, got {iters}");
    }

    #[test]
    fn bench_function_records_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_budget(Duration::from_micros(50));
        c.bench_function("shim_smoke", |b| {
            b.iter(|| black_box(41u64) + 1);
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion::default();
        c.filters.push("only_this".to_owned());
        let mut ran = false;
        let cfg = RunConfig { sample_size: 2, budget: Duration::from_micros(10), test_mode: true };
        c.run_one("something_else".to_owned(), cfg.clone(), |_| ran = true);
        assert!(!ran, "filtered-out benchmark must not run");
        c.run_one("has_only_this_inside".to_owned(), cfg, |_| ran = true);
        assert!(ran, "matching benchmark must run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("FCFS").to_string(), "FCFS");
    }
}
