//! Quality of service: system-level thread priorities and purely
//! opportunistic service (Section 5 of the paper, Fig. 14).
//!
//! Scenario: omnetpp is the user-facing application; libquantum, milc and
//! astar are background jobs. With PAR-BS the background threads are marked
//! *opportunistic* — their requests never join a batch and are serviced only
//! when the memory system has a free slot.
//!
//! Run with: `cargo run --release --example qos_priorities`

use parbs::ThreadPriority;
use parbs_sim::{default_jobs, experiments, Harness, SimConfig};

fn main() {
    let harness =
        Harness::new(SimConfig { target_instructions: 10_000, ..SimConfig::for_cores(4) });

    println!("four lbm copies with decreasing importance (priorities 1-1-2-8):\n");
    let left = harness.run_plan(&experiments::priority_weighted_plan(), default_jobs());
    print_rows(&left);

    println!("\nomnetpp important, the rest opportunistic:\n");
    let right = harness.run_plan(&experiments::priority_opportunistic_plan(), default_jobs());
    print_rows(&right);

    println!(
        "\nUnder PAR-BS the high-priority thread is marked every batch and ranked first; \
         opportunistic threads are never marked and never displace it — no weights or \
         division hardware needed ({:?} marking periods).",
        [
            ThreadPriority::Level1.period(),
            ThreadPriority::Level(2).period(),
            ThreadPriority::Level(8).period(),
            ThreadPriority::Opportunistic.period(),
        ]
    );
}

fn print_rows(evals: &[parbs_sim::MixEvaluation]) {
    if let Some(first) = evals.first() {
        print!("{:10}", "scheduler");
        for n in &first.thread_names {
            print!(" {n:>12}");
        }
        println!();
    }
    for e in evals {
        print!("{:10}", e.scheduler);
        for s in &e.metrics.slowdowns {
            print!(" {s:>12.2}");
        }
        println!();
    }
}
