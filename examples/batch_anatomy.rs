//! Anatomy of a batch: watch PAR-BS form a batch, rank the threads with the
//! Max-Total rule, and drain the batch in rank order — first on the paper's
//! Figure 3 abstraction, then on the real cycle-level controller.
//!
//! Run with: `cargo run --release --example batch_anatomy`

use parbs::{AbstractBatch, AbstractPolicy, ParBsConfig, ParBsScheduler};
use parbs_dram::{Controller, DramConfig, LineAddr, Request, RequestKind, ThreadId};
use parbs_obs::{downcast_sink, CollectSink};

fn main() {
    // ── 1. The Figure 3 abstraction: latency 1.0 per row conflict, 0.5 per
    //       row hit, banks in parallel.
    let batch = AbstractBatch::figure3_example();
    println!("Figure 3 batch — Max-Total thread loads (max-bank-load, total):");
    for l in batch.thread_loads() {
        println!("  thread {}: ({}, {})", l.thread + 1, l.max_bank_load, l.total_load);
    }
    println!("\naverage batch-completion time:");
    for (name, p) in [
        ("FCFS", AbstractPolicy::Fcfs),
        ("FR-FCFS", AbstractPolicy::FrFcfs),
        ("PAR-BS", AbstractPolicy::ParBs),
    ] {
        println!("  {:8} {:.3}", name, batch.average_completion(p));
    }

    // ── 2. The same idea on the cycle-level controller: a light thread
    //       (one request per bank) and a heavy thread (five requests to one
    //       bank) arrive interleaved; the scheduler ranks the light thread
    //       first, so its requests are serviced in parallel.
    let config = DramConfig::default();
    let mut ctrl = Controller::with_checker(
        config.clone(),
        Box::new(ParBsScheduler::new(ParBsConfig::default())),
    );
    ctrl.set_event_sink(Box::new(CollectSink::new()));
    let reqs = [
        (1usize, 3usize, 10u64), // heavy thread starts piling on bank 3
        (0, 0, 1),
        (1, 3, 11),
        (0, 1, 1),
        (1, 3, 12),
        (0, 2, 1),
        (1, 3, 13),
        (1, 3, 14),
    ];
    for (i, (thread, bank, row)) in reqs.iter().enumerate() {
        let addr = LineAddr { channel: 0, bank: *bank, row: *row, col: 0 };
        ctrl.try_enqueue(Request::new(i as u64, ThreadId(*thread), addr, RequestKind::Read, 0))
            .unwrap();
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    println!("\ncycle-level drain (thread 0 = 3 banks x 1 request, thread 1 = 5 to one bank):");
    for c in &done {
        println!("  t={:>5}  thread {}  {:?}", c.finish, c.thread.0, c.request);
    }
    let finish =
        |t: usize| done.iter().filter(|c| c.thread.0 == t).map(|c| c.finish).max().unwrap();
    println!(
        "\nthread 0 batch-completion {} cycles, thread 1 {} cycles — the shortest job finished first",
        finish(0),
        finish(1)
    );

    // ── 3. The command timeline (A=activate, R=read, P=precharge, .=idle):
    //       thread 0's three activates fire back-to-back on banks 0-2 while
    //       bank 3 serializes thread 1's five requests.
    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(events) = downcast_sink::<CollectSink>(sink) else {
        panic!("the attached sink is a CollectSink");
    };
    let events = events.into_events();
    let end = events.last().map_or(100, |e| e.at() + 10);
    println!("\n{}", parbs_dram::render_timeline(&events, &config, 0, end, 120));
}
