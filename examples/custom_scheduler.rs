//! Extending the framework: implement your own memory scheduler and run it
//! in the full-system simulator against the built-in policies.
//!
//! The example implements **bank-round-robin**: banks take turns, and within
//! a bank the oldest request wins. It is not a good scheduler — the point is
//! how little code a new policy needs and how to plug it in at both the
//! controller level and the full-system level.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use std::cmp::Ordering;

use parbs::{ParBsConfig, ParBsScheduler};
use parbs_baselines::FrFcfsScheduler;
use parbs_cpu::InstructionStream;
use parbs_dram::{
    Controller, DramConfig, LineAddr, MemoryScheduler, Request, RequestKind, SchedView, ThreadId,
};
use parbs_sim::{SimConfig, System};
use parbs_workloads::{case_study_1, SyntheticStream};

/// Round-robin across banks: a bank pointer advances every scheduling slot,
/// and the request whose bank is cyclically closest to the pointer wins;
/// age breaks ties.
#[derive(Debug, Default)]
struct BankRoundRobin {
    pointer: usize,
    banks: usize,
}

impl MemoryScheduler for BankRoundRobin {
    fn name(&self) -> &str {
        "BANK-RR"
    }

    fn pre_schedule(&mut self, _queue: &mut [Request], view: &SchedView<'_>) -> bool {
        self.banks = view.channel.bank_count();
        self.pointer = (self.pointer + 1) % self.banks.max(1);
        // The pointer moves every slot, so every slot reshuffles priorities:
        // report the change so the controller rebuilds its key cache.
        true
    }

    fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
        // Smaller cyclic distance from the pointer wins, age breaks ties;
        // invert both so a larger key means higher priority.
        let dist = (req.addr.bank + self.banks - self.pointer) % self.banks.max(1);
        (u128::from(!(dist as u64)) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, _view: &SchedView<'_>) -> Ordering {
        let dist = |r: &Request| (r.addr.bank + self.banks - self.pointer) % self.banks.max(1);
        dist(a).cmp(&dist(b)).then(a.id.cmp(&b.id))
    }
}

/// Controller-level drain: same 64 requests under each policy.
fn controller_comparison() {
    println!("controller-level drain of 64 mixed requests:");
    let schedulers: Vec<Box<dyn MemoryScheduler>> = vec![
        Box::new(FrFcfsScheduler::new()),
        Box::new(ParBsScheduler::new(ParBsConfig::default())),
        Box::new(BankRoundRobin::default()),
    ];
    for sched in schedulers {
        let name = sched.name().to_owned();
        let mut ctrl = Controller::with_checker(DramConfig::default(), sched);
        for i in 0..64u64 {
            let addr =
                LineAddr { channel: 0, bank: (i % 8) as usize, row: (i / 16) % 3, col: i % 32 };
            let thread = ThreadId((i % 4) as usize);
            ctrl.try_enqueue(Request::new(i, thread, addr, RequestKind::Read, 0)).unwrap();
        }
        let mut now = 0;
        let done = ctrl.run_to_drain(&mut now, 10_000_000);
        let makespan = done.iter().map(|c| c.finish).max().unwrap();
        println!(
            "  {:10} makespan {:>6} cycles, row-hit rate {:.2}",
            name,
            makespan,
            ctrl.stats().row_hit_rate()
        );
    }
}

/// Full-system run of Case Study I with a scheduler factory.
fn system_run(name: &str, factory: &dyn Fn() -> Box<dyn MemoryScheduler>) {
    let cfg = SimConfig { target_instructions: 8_000, ..SimConfig::for_cores(4) };
    let mix = case_study_1();
    let streams: Vec<Box<dyn InstructionStream>> = mix
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            Box::new(SyntheticStream::new(b, cfg.geometry(), cfg.seed, i as u64))
                as Box<dyn InstructionStream>
        })
        .collect();
    let mut sys = System::with_scheduler_factory(cfg, streams, &|_| factory());
    let result = sys.run();
    let total_stall: u64 = result.threads.iter().map(|t| t.mem_stall_cycles).sum();
    println!(
        "  {:10} cycles {:>9}  row-hit rate {:.2}  total stall {:>9}  worst-case latency {:>6}",
        name, result.cycles, result.row_hit_rate, total_stall, result.worst_case_latency
    );
}

fn main() {
    controller_comparison();
    println!("\nfull-system Case Study I under three policies:");
    system_run("FR-FCFS", &|| Box::new(FrFcfsScheduler::new()));
    system_run("PAR-BS", &|| Box::new(ParBsScheduler::new(ParBsConfig::default())));
    system_run("BANK-RR", &|| Box::new(BankRoundRobin::default()));
    println!(
        "\nA policy is ~25 lines: implement `priority_key` (and `pre_schedule` if \
         priorities change between controller-visible events)."
    );
}
