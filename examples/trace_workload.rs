//! Trace-driven workloads: write a memory trace in the text format, load it
//! back, and run it through the full system next to a synthetic benchmark.
//!
//! Run with: `cargo run --release --example trace_workload`

use parbs_cpu::{Instr, InstructionStream};
use parbs_dram::AddressMapper;
use parbs_sim::{SchedulerKind, SimConfig, System};
use parbs_workloads::{by_name, format_trace, load_trace, SyntheticStream};

fn main() {
    // ── 1. Build a pointer-chase trace programmatically: each load depends
    //       on the previous one (D = dependent), hopping across banks.
    let mapper = AddressMapper::canonical(1, 8, 32).unwrap();
    let mut instrs = Vec::new();
    for i in 0..64u64 {
        instrs.push(Instr::DependentLoad(mapper.encode(parbs_dram::LineAddr {
            channel: 0,
            bank: (i % 8) as usize,
            row: i / 8,
            col: (i * 3) % 32,
        })));
        for _ in 0..40 {
            instrs.push(Instr::Compute);
        }
    }
    let text = format_trace(&instrs);
    let path = std::env::temp_dir().join("pointer_chase.trace");
    std::fs::write(&path, &text).expect("write trace");
    println!(
        "wrote {} ({} lines):\n{}...",
        path.display(),
        text.lines().count(),
        text.lines().take(4).collect::<Vec<_>>().join("\n")
    );

    // ── 2. Run the trace on core 0 next to three synthetic benchmarks.
    let cfg = SimConfig { target_instructions: 5_000, ..SimConfig::for_cores(4) };
    let trace_stream = load_trace(&path).expect("parse trace");
    let streams: Vec<Box<dyn InstructionStream>> = vec![
        Box::new(trace_stream),
        Box::new(SyntheticStream::new(by_name("lbm").unwrap(), cfg.geometry(), cfg.seed, 1)),
        Box::new(SyntheticStream::new(by_name("astar").unwrap(), cfg.geometry(), cfg.seed, 2)),
        Box::new(SyntheticStream::new(by_name("gcc").unwrap(), cfg.geometry(), cfg.seed, 3)),
    ];
    let mut sys = System::new(cfg, streams, &SchedulerKind::ParBs(Default::default()));
    let r = sys.run();
    println!("\nshared run under PAR-BS:");
    for (i, name) in ["trace(chase)", "lbm", "astar", "gcc"].iter().enumerate() {
        let t = &r.threads[i];
        println!(
            "  {:12} MCPI {:5.2}  MPKI {:5.1}  BLP {:4.2}  AST/req {:5.0}",
            name,
            t.mcpi(),
            t.mpki(),
            t.blp,
            t.ast_per_req()
        );
    }
    println!(
        "\nthe serial pointer chase shows BLP ~1 and a near-full access latency per miss, \
         unlike lbm's parallel misses"
    );
    std::fs::remove_file(&path).ok();
}
