//! Quickstart: schedule DRAM requests with PAR-BS, then compare it against
//! FR-FCFS on the paper's memory-intensive Case Study I.
//!
//! Run with: `cargo run --release --example quickstart`

use parbs::{ParBsConfig, ParBsScheduler};
use parbs_dram::{Controller, DramConfig, LineAddr, Request, RequestKind, ThreadId};
use parbs_sim::{experiments, Harness, SimConfig};
use parbs_workloads::case_study_1;

fn main() {
    // ── 1. The scheduler on its own: a controller services a burst of
    //       requests from two threads; PAR-BS batches them and services
    //       thread 0's requests in parallel across banks.
    let mut ctrl = Controller::new(
        DramConfig::default(),
        Box::new(ParBsScheduler::new(ParBsConfig::default())),
    );
    // Thread 0: three requests to three different banks (high parallelism).
    // Thread 1: three requests to one bank (a "long job").
    let requests = [(0, 0, 1), (0, 1, 1), (0, 2, 1), (1, 3, 7), (1, 3, 8), (1, 3, 9)];
    for (id, (thread, bank, row)) in requests.into_iter().enumerate() {
        let addr = LineAddr { channel: 0, bank, row, col: 0 };
        ctrl.try_enqueue(Request::new(id as u64, ThreadId(thread), addr, RequestKind::Read, 0))
            .expect("buffer has room");
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    println!("request completion times (PAR-BS):");
    for c in &done {
        println!("  thread {} request {:?} done at cycle {}", c.thread.0, c.request, c.finish);
    }
    let t0_last = done.iter().filter(|c| c.thread.0 == 0).map(|c| c.finish).max().unwrap();
    let t1_last = done.iter().filter(|c| c.thread.0 == 1).map(|c| c.finish).max().unwrap();
    println!(
        "thread 0 (3 banks in parallel) finishes at {t0_last}, thread 1 (1 bank) at {t1_last}\n"
    );

    // ── 2. Full-system comparison on Case Study I (Fig. 5): four intensive
    //       SPEC-like workloads sharing one DDR2-800 channel.
    let harness =
        Harness::new(SimConfig { target_instructions: 10_000, ..SimConfig::for_cores(4) });
    println!("Case Study I (libquantum + mcf + GemsFDTD + xalancbmk):");
    println!(
        "{:10} {:>10} {:>16} {:>14}",
        "scheduler", "unfairness", "weighted-speedup", "avg-stall/req"
    );
    let plan = experiments::compare_plan(&case_study_1());
    for eval in harness.run_plan(&plan, parbs_sim::default_jobs()) {
        println!(
            "{:10} {:>10.2} {:>16.3} {:>14.1}",
            eval.scheduler,
            eval.metrics.unfairness,
            eval.metrics.weighted_speedup,
            eval.metrics.ast_per_req
        );
    }
    println!("\nPAR-BS should show the lowest unfairness and the highest weighted speedup.");
}
