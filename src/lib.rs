//! Workspace-level façade for the PAR-BS reproduction suite.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports the member crates
//! so that examples read naturally. Library users should depend on the
//! individual crates (`parbs`, `parbs-dram`, `parbs-sim`, ...) directly.

pub use parbs;
pub use parbs_baselines;
pub use parbs_cpu;
pub use parbs_dram;
pub use parbs_metrics;
pub use parbs_sim;
pub use parbs_workloads;
