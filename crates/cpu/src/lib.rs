//! Processor core model for shared-DRAM scheduling studies.
//!
//! Models the processor of Mutlu & Moscibroda's Table 2: a 4 GHz core with a
//! 128-entry instruction window, 3-wide fetch/commit with at most one memory
//! operation per cycle, 32 MSHRs, and in-order commit (precise exceptions).
//! The model captures exactly the behaviour the paper's mechanisms interact
//! with:
//!
//! * A load miss **blocks commit** when it reaches the head of the window,
//!   so the core stalls until DRAM services it (Section 2).
//! * Independent load misses behind it **issue to DRAM out of order**, up to
//!   the MSHR and window limits — this is the memory-level parallelism whose
//!   bank-level component the schedulers preserve or destroy.
//! * Stores are posted: they commit immediately and drain to the DRAM write
//!   buffer without blocking progress.
//!
//! The memory system is decoupled: a driver (e.g. `parbs-sim`) pulls pending
//! memory operations from the core with [`Core::pending_read`] /
//! [`Core::pending_write`], forwards them to a DRAM controller, and delivers
//! completions back with [`Core::complete_read`].
//!
//! # Examples
//!
//! ```
//! use parbs_cpu::{Core, CoreConfig, Instr, InstructionStream};
//!
//! /// One load every 4 instructions, round-robin across 8 lines.
//! struct Toy(u64);
//! impl InstructionStream for Toy {
//!     fn next_instr(&mut self) -> Instr {
//!         self.0 += 1;
//!         if self.0 % 4 == 0 { Instr::Load((self.0 / 4) % 8) } else { Instr::Compute }
//!     }
//! }
//!
//! let mut core = Core::new(CoreConfig::default(), Box::new(Toy(0)));
//! // Fetch/commit a few cycles with an infinitely fast memory:
//! for now in 0..100 {
//!     core.tick(now);
//!     while let Some((line, id)) = core.pending_read() {
//!         let _ = line;
//!         core.read_issued(id);
//!         core.complete_read(id); // zero-latency memory
//!     }
//! }
//! assert!(core.stats().committed > 0);
//! ```

mod core_model;
mod stream;

pub use core_model::{Core, CoreConfig, CoreStats, MissId};
pub use stream::{Instr, InstructionStream, TraceStream};
