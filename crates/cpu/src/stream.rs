//! Instruction streams consumed by the core model.

/// One (retired-path) instruction.
///
/// Addresses are **cache-line** addresses of L2 misses: the core model sits
/// above an implied cache hierarchy, so `Load`/`Store` represent the memory
/// operations that actually reach DRAM. Cache hits are folded into
/// [`Instr::Compute`] instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A non-memory instruction (or a cache-hitting memory instruction).
    Compute,
    /// A load that misses the last-level cache; carries the line address.
    Load(u64),
    /// A load miss that **depends on all earlier misses** (e.g. the first
    /// dereference after a pointer chase): it cannot issue to DRAM until
    /// every older outstanding miss has completed, and it blocks younger
    /// misses from issuing while it waits. Dependent loads are what bound a
    /// thread's memory-level parallelism — a thread whose episodes are `k`
    /// independent misses separated by dependent loads has BLP ≈ `k`.
    DependentLoad(u64),
    /// A store whose writeback reaches DRAM; carries the line address.
    Store(u64),
}

/// An infinite supply of instructions for one thread.
///
/// Implementations must be deterministic for reproducible experiments; the
/// synthetic benchmark generators in `parbs-workloads` are seeded.
pub trait InstructionStream {
    /// Produces the next instruction in program order.
    fn next_instr(&mut self) -> Instr;

    /// Serializes the stream's mutable position/state for checkpointing.
    /// Stateless (or purely positional) streams that never need restoring
    /// may keep the default, which writes nothing.
    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        let _ = w;
    }

    /// Restores state captured by [`InstructionStream::save_state`] into a
    /// freshly constructed stream of the same kind and configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`parbs_snap::SnapError`] when the snapshot is truncated or
    /// inconsistent with this stream's configuration.
    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// Replays a fixed instruction trace, looping at the end — useful for tests
/// and for trace-driven experiments.
#[derive(Debug, Clone)]
pub struct TraceStream {
    trace: Vec<Instr>,
    pos: usize,
}

impl TraceStream {
    /// Creates a looping replay of `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty (an instruction stream must be infinite).
    #[must_use]
    pub fn new(trace: Vec<Instr>) -> Self {
        assert!(!trace.is_empty(), "trace must not be empty");
        TraceStream { trace, pos: 0 }
    }
}

impl InstructionStream for TraceStream {
    fn next_instr(&mut self) -> Instr {
        let i = self.trace[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        i
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.usize(self.pos);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let pos = r.usize()?;
        if pos >= self.trace.len() {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "trace stream position",
                expected: self.trace.len() as u64,
                found: pos as u64,
            });
        }
        self.pos = pos;
        Ok(())
    }
}

impl parbs_snap::Snap for Instr {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        match *self {
            Instr::Compute => w.u8(0),
            Instr::Load(line) => {
                w.u8(1);
                w.u64(line);
            }
            Instr::DependentLoad(line) => {
                w.u8(2);
                w.u64(line);
            }
            Instr::Store(line) => {
                w.u8(3);
                w.u64(line);
            }
        }
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        match r.u8()? {
            0 => Ok(Instr::Compute),
            1 => Ok(Instr::Load(r.u64()?)),
            2 => Ok(Instr::DependentLoad(r.u64()?)),
            3 => Ok(Instr::Store(r.u64()?)),
            t => Err(parbs_snap::SnapError::BadTag { what: "instruction", value: u64::from(t) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_stream_loops() {
        let mut s = TraceStream::new(vec![Instr::Compute, Instr::Load(7)]);
        assert_eq!(s.next_instr(), Instr::Compute);
        assert_eq!(s.next_instr(), Instr::Load(7));
        assert_eq!(s.next_instr(), Instr::Compute);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = TraceStream::new(vec![]);
    }
}
