//! Instruction streams consumed by the core model.

/// One (retired-path) instruction.
///
/// Addresses are **cache-line** addresses of L2 misses: the core model sits
/// above an implied cache hierarchy, so `Load`/`Store` represent the memory
/// operations that actually reach DRAM. Cache hits are folded into
/// [`Instr::Compute`] instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A non-memory instruction (or a cache-hitting memory instruction).
    Compute,
    /// A load that misses the last-level cache; carries the line address.
    Load(u64),
    /// A load miss that **depends on all earlier misses** (e.g. the first
    /// dereference after a pointer chase): it cannot issue to DRAM until
    /// every older outstanding miss has completed, and it blocks younger
    /// misses from issuing while it waits. Dependent loads are what bound a
    /// thread's memory-level parallelism — a thread whose episodes are `k`
    /// independent misses separated by dependent loads has BLP ≈ `k`.
    DependentLoad(u64),
    /// A store whose writeback reaches DRAM; carries the line address.
    Store(u64),
}

/// An infinite supply of instructions for one thread.
///
/// Implementations must be deterministic for reproducible experiments; the
/// synthetic benchmark generators in `parbs-workloads` are seeded.
pub trait InstructionStream {
    /// Produces the next instruction in program order.
    fn next_instr(&mut self) -> Instr;
}

/// Replays a fixed instruction trace, looping at the end — useful for tests
/// and for trace-driven experiments.
#[derive(Debug, Clone)]
pub struct TraceStream {
    trace: Vec<Instr>,
    pos: usize,
}

impl TraceStream {
    /// Creates a looping replay of `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty (an instruction stream must be infinite).
    #[must_use]
    pub fn new(trace: Vec<Instr>) -> Self {
        assert!(!trace.is_empty(), "trace must not be empty");
        TraceStream { trace, pos: 0 }
    }
}

impl InstructionStream for TraceStream {
    fn next_instr(&mut self) -> Instr {
        let i = self.trace[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_stream_loops() {
        let mut s = TraceStream::new(vec![Instr::Compute, Instr::Load(7)]);
        assert_eq!(s.next_instr(), Instr::Compute);
        assert_eq!(s.next_instr(), Instr::Load(7));
        assert_eq!(s.next_instr(), Instr::Compute);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = TraceStream::new(vec![]);
    }
}
