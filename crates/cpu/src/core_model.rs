//! The window-based core model.

use std::collections::VecDeque;

use crate::{Instr, InstructionStream};

/// Identifier of an outstanding L2 miss within one core. The driver maps
/// `MissId`s to DRAM request ids; multiple loads to the same line merge into
/// one miss (MSHR semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MissId(pub u64);

/// Microarchitectural parameters (the processor rows of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Instruction window capacity (128).
    pub window_size: usize,
    /// Instructions fetched per cycle (3); at most one may be a memory op.
    pub fetch_width: usize,
    /// Instructions committed per cycle (3), in order.
    pub commit_width: usize,
    /// Maximum outstanding L2 misses (32 MSHRs).
    pub mshrs: usize,
    /// Store-queue capacity (64); fetch stalls when it is full.
    pub store_queue: usize,
}

impl CoreConfig {
    /// The paper's Table 2 processor configuration.
    #[must_use]
    pub fn table2() -> Self {
        CoreConfig { window_size: 128, fetch_width: 3, commit_width: 3, mshrs: 32, store_queue: 64 }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// Counters accumulated by a [`Core`] over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreStats {
    /// Cycles the core has been ticked.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Cycles in which nothing committed because the oldest instruction was
    /// an outstanding DRAM load — the numerator of the paper's MCPI.
    pub mem_stall_cycles: u64,
    /// Distinct DRAM read requests generated (after MSHR merging).
    pub dram_reads: u64,
    /// DRAM write requests generated.
    pub dram_writes: u64,
    /// Loads merged into an existing outstanding miss.
    pub merged_loads: u64,
}

impl CoreStats {
    /// Instructions per cycle so far.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Memory stall cycles per instruction so far (the paper's MCPI).
    #[must_use]
    pub fn mcpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.mem_stall_cycles as f64 / self.committed as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Compute,
    /// A load miss; `miss` indexes the core's miss table, `done` flips when
    /// the miss data returns.
    Load {
        miss: MissId,
        done: bool,
    },
    Store,
}

#[derive(Debug, Clone)]
struct Miss {
    id: MissId,
    line: u64,
    issued: bool,
    completed: bool,
    /// Dependence episode this miss belongs to (incremented at each fence).
    episode: u64,
    /// How many window slots wait on this miss (MSHR merging).
    waiters: u32,
}

/// One processor core: fetches from its [`InstructionStream`], tracks the
/// instruction window, issues DRAM reads/writes through a pull interface,
/// and commits in order.
///
/// Drive it one cycle at a time with [`Core::tick`]; between ticks, forward
/// [`Core::pending_read`] / [`Core::pending_write`] operations to the memory
/// system (respecting its back-pressure) and deliver completions with
/// [`Core::complete_read`].
pub struct Core {
    cfg: CoreConfig,
    stream: Box<dyn InstructionStream>,
    window: VecDeque<Slot>,
    misses: Vec<Miss>,
    next_miss: u64,
    store_queue: VecDeque<u64>,
    stats: CoreStats,
    /// One-instruction fetch buffer: an instruction pulled from the stream
    /// that could not be accepted this cycle (second memory op in a fetch
    /// group, or a store facing a full store queue).
    lookahead: Option<Instr>,
    /// Current dependence-episode counter (bumped by each fence load).
    episode: u64,
    /// True if the stream is paused (used to let a finished thread idle).
    halted: bool,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("window", &self.window.len())
            .field("misses", &self.misses.len())
            .field("committed", &self.stats.committed)
            .finish()
    }
}

impl Core {
    /// Creates a core with the given configuration and instruction supply.
    ///
    /// # Panics
    ///
    /// Panics if any capacity in `cfg` is zero.
    #[must_use]
    pub fn new(cfg: CoreConfig, stream: Box<dyn InstructionStream>) -> Self {
        assert!(cfg.window_size > 0 && cfg.fetch_width > 0 && cfg.commit_width > 0);
        assert!(cfg.mshrs > 0 && cfg.store_queue > 0);
        Core {
            cfg,
            stream,
            window: VecDeque::new(),
            misses: Vec::new(),
            next_miss: 0,
            store_queue: VecDeque::new(),
            stats: CoreStats::default(),
            lookahead: None,
            episode: 0,
            halted: false,
        }
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Number of outstanding (unmerged) misses, issued or not.
    #[must_use]
    pub fn outstanding_misses(&self) -> usize {
        self.misses.len()
    }

    /// Stops fetching new instructions; in-flight work still drains. Used by
    /// the simulator to freeze a thread that reached its instruction target.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// True if the core has been halted via [`Core::halt`].
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The oldest un-issued miss, if the MSHR budget and dependence chain
    /// allow issuing it: `(line address, miss id)`. Call
    /// [`Core::read_issued`] once the memory system accepts it; calling
    /// `pending_read` again before that returns the same miss.
    ///
    /// Dependence model: [`Instr::DependentLoad`] starts a new *episode*;
    /// the misses within an episode are independent and issue together, but
    /// an episode may not issue until every miss of earlier episodes has
    /// completed — the serialization that makes a thread's bank-level
    /// parallelism equal its episode width.
    #[must_use]
    pub fn pending_read(&self) -> Option<(u64, MissId)> {
        let mut in_flight = 0usize;
        let mut oldest_outstanding_episode = u64::MAX;
        for m in &self.misses {
            if m.issued {
                in_flight += 1;
                oldest_outstanding_episode = oldest_outstanding_episode.min(m.episode);
                continue;
            }
            if m.episode >= oldest_outstanding_episode.saturating_add(1) {
                // Dependence: this miss (and everything younger) waits.
                return None;
            }
            if in_flight >= self.cfg.mshrs {
                return None;
            }
            return Some((m.line, m.id));
        }
        None
    }

    /// Marks the miss as accepted by the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or already issued.
    pub fn read_issued(&mut self, id: MissId) {
        let m = self.misses.iter_mut().find(|m| m.id == id).expect("read_issued: unknown miss id");
        assert!(!m.issued, "read_issued: miss already issued");
        m.issued = true;
    }

    /// The oldest queued writeback line, if any. Call
    /// [`Core::write_issued`] once the memory system accepts it.
    #[must_use]
    pub fn pending_write(&self) -> Option<u64> {
        self.store_queue.front().copied()
    }

    /// Pops the writeback returned by [`Core::pending_write`].
    ///
    /// # Panics
    ///
    /// Panics if the store queue is empty.
    pub fn write_issued(&mut self) {
        self.store_queue.pop_front().expect("write_issued: empty store queue");
    }

    /// Delivers read data for a previously issued miss, waking every merged
    /// load. Unknown ids are ignored (the miss may belong to another core).
    pub fn complete_read(&mut self, id: MissId) {
        let Some(pos) = self.misses.iter().position(|m| m.id == id) else {
            return;
        };
        self.misses[pos].completed = true;
        for slot in &mut self.window {
            if let Slot::Load { miss, done } = slot {
                if *miss == id {
                    *done = true;
                }
            }
        }
        self.misses.remove(pos);
    }

    /// Advances the core by one cycle: commit (in order, up to commit
    /// width), then fetch (up to fetch width, at most one memory op).
    pub fn tick(&mut self, _now: u64) {
        self.stats.cycles += 1;
        self.commit();
        self.fetch();
    }

    fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.commit_width {
            match self.window.front() {
                None => break,
                Some(Slot::Compute) => {
                    self.window.pop_front();
                    self.stats.committed += 1;
                    n += 1;
                }
                Some(Slot::Store) => {
                    self.window.pop_front();
                    self.stats.committed += 1;
                    n += 1;
                }
                Some(Slot::Load { done: true, .. }) => {
                    self.window.pop_front();
                    self.stats.committed += 1;
                    n += 1;
                }
                Some(Slot::Load { done: false, .. }) => {
                    if n == 0 {
                        // Nothing committed this cycle and the head is an
                        // outstanding DRAM load: a memory stall cycle.
                        self.stats.mem_stall_cycles += 1;
                    }
                    break;
                }
            }
        }
    }

    fn fetch(&mut self) {
        if self.halted {
            return;
        }
        let mut fetched = 0;
        let mut mem_ops = 0;
        while fetched < self.cfg.fetch_width && self.window.len() < self.cfg.window_size {
            let instr = match self.lookahead.take() {
                Some(i) => i,
                None => self.stream.next_instr(),
            };
            match instr {
                Instr::Compute => {
                    self.window.push_back(Slot::Compute);
                }
                Instr::Load(line) | Instr::DependentLoad(line) => {
                    if mem_ops == 1 {
                        // Only one memory operation per fetch group; hold
                        // the instruction for the next cycle.
                        self.lookahead = Some(instr);
                        break;
                    }
                    mem_ops += 1;
                    let fence = matches!(instr, Instr::DependentLoad(_));
                    let id = self.note_load(line, fence);
                    self.window.push_back(Slot::Load { miss: id, done: false });
                }
                Instr::Store(line) => {
                    if mem_ops == 1 || self.store_queue.len() >= self.cfg.store_queue {
                        // Second memory op, or store-queue back-pressure.
                        self.lookahead = Some(instr);
                        break;
                    }
                    mem_ops += 1;
                    self.store_queue.push_back(line);
                    self.stats.dram_writes += 1;
                    self.window.push_back(Slot::Store);
                }
            }
            fetched += 1;
        }
    }

    /// Records a load miss, merging with an outstanding miss to the same
    /// line if one exists (a merged dependent load keeps the existing miss's
    /// position; its data dependence is already satisfied by that miss).
    fn note_load(&mut self, line: u64, fence: bool) -> MissId {
        if fence {
            self.episode += 1;
        }
        if let Some(m) = self.misses.iter_mut().find(|m| m.line == line && !m.completed) {
            m.waiters += 1;
            self.stats.merged_loads += 1;
            return m.id;
        }
        let id = MissId(self.next_miss);
        self.next_miss += 1;
        self.misses.push(Miss {
            id,
            line,
            issued: false,
            completed: false,
            episode: self.episode,
            waiters: 1,
        });
        self.stats.dram_reads += 1;
        id
    }
}

impl parbs_snap::Snap for MissId {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.0);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(MissId(r.u64()?))
    }
}

impl parbs_snap::Snap for CoreStats {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.cycles);
        w.u64(self.committed);
        w.u64(self.mem_stall_cycles);
        w.u64(self.dram_reads);
        w.u64(self.dram_writes);
        w.u64(self.merged_loads);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(CoreStats {
            cycles: r.u64()?,
            committed: r.u64()?,
            mem_stall_cycles: r.u64()?,
            dram_reads: r.u64()?,
            dram_writes: r.u64()?,
            merged_loads: r.u64()?,
        })
    }
}

impl parbs_snap::Snap for Slot {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        match *self {
            Slot::Compute => w.u8(0),
            Slot::Load { miss, done } => {
                w.u8(1);
                w.put(&miss);
                w.bool(done);
            }
            Slot::Store => w.u8(2),
        }
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        match r.u8()? {
            0 => Ok(Slot::Compute),
            1 => Ok(Slot::Load { miss: r.get()?, done: r.bool()? }),
            2 => Ok(Slot::Store),
            t => Err(parbs_snap::SnapError::BadTag { what: "window slot", value: u64::from(t) }),
        }
    }
}

impl parbs_snap::Snap for Miss {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.id);
        w.u64(self.line);
        w.bool(self.issued);
        w.bool(self.completed);
        w.u64(self.episode);
        w.u32(self.waiters);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(Miss {
            id: r.get()?,
            line: r.u64()?,
            issued: r.bool()?,
            completed: r.bool()?,
            episode: r.u64()?,
            waiters: r.u32()?,
        })
    }
}

impl Core {
    /// Serializes the core's mutable state: instruction window, miss table,
    /// store queue, statistics, fetch lookahead, dependence-episode counter,
    /// halt flag, and the instruction stream's own state. The configuration
    /// is not written — a restored core is rebuilt from the same
    /// [`CoreConfig`] and stream constructor first.
    pub fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.window);
        w.put(&self.misses);
        w.u64(self.next_miss);
        w.put(&self.store_queue);
        w.put(&self.stats);
        w.put(&self.lookahead);
        w.u64(self.episode);
        w.bool(self.halted);
        self.stream.save_state(w);
    }

    /// Restores state captured by [`Core::save_state`] into a core built
    /// with the same configuration and stream kind.
    ///
    /// # Errors
    ///
    /// [`parbs_snap::SnapError::Mismatch`] when the snapshot exceeds this
    /// core's window or store-queue capacity; decoding errors propagate.
    pub fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let window: std::collections::VecDeque<Slot> = r.get()?;
        if window.len() > self.cfg.window_size {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "core window occupancy",
                expected: self.cfg.window_size as u64,
                found: window.len() as u64,
            });
        }
        let misses: Vec<Miss> = r.get()?;
        let next_miss = r.u64()?;
        let store_queue: std::collections::VecDeque<u64> = r.get()?;
        if store_queue.len() > self.cfg.store_queue {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "core store-queue occupancy",
                expected: self.cfg.store_queue as u64,
                found: store_queue.len() as u64,
            });
        }
        self.window = window;
        self.misses = misses;
        self.next_miss = next_miss;
        self.store_queue = store_queue;
        self.stats = r.get()?;
        self.lookahead = r.get()?;
        self.episode = r.u64()?;
        self.halted = r.bool()?;
        self.stream.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStream;

    fn compute_only() -> Box<dyn InstructionStream> {
        Box::new(TraceStream::new(vec![Instr::Compute]))
    }

    #[test]
    fn compute_stream_reaches_full_width_ipc() {
        let mut core = Core::new(CoreConfig::table2(), compute_only());
        for now in 0..1_000 {
            core.tick(now);
        }
        // Window fill takes one cycle; thereafter 3 IPC.
        assert!(core.stats().ipc() > 2.9, "ipc = {}", core.stats().ipc());
        assert_eq!(core.stats().mem_stall_cycles, 0);
    }

    #[test]
    fn lone_load_stalls_until_completed() {
        let trace = vec![Instr::Load(1), Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        core.tick(0);
        let (line, id) = core.pending_read().expect("load should want to issue");
        assert_eq!(line, 1);
        core.read_issued(id);
        assert!(core.pending_read().is_none(), "issued miss should not reappear");
        for now in 1..100 {
            core.tick(now);
        }
        // Head loads block commit; every cycle with the pending head load
        // and zero commits is a memory stall. (The trace alternates loads,
        // and later loads merge or wait, so stalls accumulate.)
        assert!(core.stats().mem_stall_cycles > 50);
        let stalls_before = core.stats().mem_stall_cycles;
        core.complete_read(id);
        core.tick(100);
        assert!(core.stats().committed >= 1);
        // The next head load (a different line) stalls again eventually, but
        // the completed one must have committed without further stall.
        assert!(core.stats().mem_stall_cycles <= stalls_before + 1);
    }

    #[test]
    fn independent_loads_overlap_in_window() {
        // Loads to two lines: both should be outstanding simultaneously.
        let trace = vec![Instr::Load(1), Instr::Load(2), Instr::Compute, Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        core.tick(0);
        core.tick(1);
        let mut issued = Vec::new();
        while let Some((line, id)) = core.pending_read() {
            core.read_issued(id);
            issued.push(line);
        }
        assert!(issued.len() >= 2, "both misses should issue: {issued:?}");
    }

    #[test]
    fn duplicate_loads_merge_into_one_miss() {
        let trace = vec![Instr::Load(42), Instr::Load(42), Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        for now in 0..5 {
            core.tick(now);
        }
        assert_eq!(core.outstanding_misses(), 1, "same line must merge");
        assert!(core.stats().merged_loads >= 1);
        let (_, id) = core.pending_read().unwrap();
        core.read_issued(id);
        core.complete_read(id);
        let committed_before = core.stats().committed;
        core.tick(6);
        assert!(core.stats().committed > committed_before);
    }

    #[test]
    fn stores_do_not_block_commit() {
        let trace = vec![Instr::Store(7), Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        let mut writes = 0;
        for now in 0..100 {
            core.tick(now);
            // Drain the store queue like an always-ready write buffer.
            while core.pending_write().is_some() {
                core.write_issued();
                writes += 1;
            }
        }
        assert_eq!(core.stats().mem_stall_cycles, 0, "posted stores must not stall commit");
        // One store per fetch group limits fetch (and thus IPC) to ~2.
        assert!(core.stats().ipc() > 1.8, "ipc = {}", core.stats().ipc());
        assert!(writes > 50);
    }

    #[test]
    fn write_issued_pops_store_queue() {
        let trace = vec![Instr::Store(7), Instr::Store(8), Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        for now in 0..10 {
            core.tick(now);
        }
        assert_eq!(core.pending_write(), Some(7));
        core.write_issued();
        assert_eq!(core.pending_write(), Some(8));
    }

    #[test]
    fn window_never_exceeds_capacity() {
        let trace = vec![Instr::Load(1)]; // one line: merges, head blocks
        let cfg = CoreConfig { window_size: 16, ..CoreConfig::table2() };
        let mut core = Core::new(cfg, Box::new(TraceStream::new(trace)));
        for now in 0..200 {
            core.tick(now);
            assert!(core.window.len() <= 16);
        }
    }

    #[test]
    fn halted_core_stops_fetching_but_drains() {
        let trace = vec![Instr::Load(1), Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        core.tick(0);
        core.halt();
        let (_, id) = core.pending_read().unwrap();
        core.read_issued(id);
        core.complete_read(id);
        let window_before = core.window.len();
        core.tick(1);
        assert!(core.window.len() < window_before, "drains without fetching");
        assert!(core.is_halted());
    }

    #[test]
    fn full_store_queue_backpressures_fetch() {
        let cfg = CoreConfig { store_queue: 2, ..CoreConfig::table2() };
        let trace = vec![Instr::Store(1), Instr::Store(2), Instr::Store(3), Instr::Store(4)];
        let mut core = Core::new(cfg, Box::new(TraceStream::new(trace)));
        for now in 0..50 {
            core.tick(now);
        }
        // Only two writebacks fit; fetch stalls on the third store.
        assert_eq!(core.stats().dram_writes, 2);
        core.write_issued();
        core.tick(50);
        assert_eq!(core.stats().dram_writes, 3, "draining the queue unblocks fetch");
    }

    #[test]
    fn merged_load_shares_completion() {
        // Two loads to the same line: one completion commits both.
        let trace = vec![Instr::Load(9), Instr::Compute, Instr::Load(9), Instr::Compute];
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
        for now in 0..3 {
            core.tick(now);
        }
        let (_, id) = core.pending_read().unwrap();
        core.read_issued(id);
        assert!(core.pending_read().is_none(), "second load merged, nothing to issue");
        core.complete_read(id);
        let before = core.stats().committed;
        for now in 3..6 {
            core.tick(now);
        }
        assert!(core.stats().committed >= before + 4, "both loads commit after one fill");
    }

    #[test]
    fn complete_unknown_miss_is_ignored() {
        let mut core = Core::new(CoreConfig::table2(), compute_only());
        core.complete_read(MissId(999));
        assert_eq!(core.outstanding_misses(), 0);
    }
}
