//! Property-based tests for the core model: window bounds, MSHR bounds,
//! in-order commit, dependence fences, and stall-accounting sanity under
//! random instruction streams and random memory-service schedules.

use std::collections::VecDeque;

use parbs_cpu::{Core, CoreConfig, Instr, InstructionStream, MissId, TraceStream};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Spec {
    Compute,
    Load(u8),
    DependentLoad(u8),
    Store(u8),
}

fn spec() -> impl Strategy<Value = Spec> {
    prop_oneof![
        3 => Just(Spec::Compute),
        2 => (0u8..16).prop_map(Spec::Load),
        1 => (0u8..16).prop_map(Spec::DependentLoad),
        1 => (0u8..16).prop_map(Spec::Store),
    ]
}

fn to_trace(specs: &[Spec]) -> Vec<Instr> {
    specs
        .iter()
        .map(|s| match s {
            Spec::Compute => Instr::Compute,
            Spec::Load(l) => Instr::Load(u64::from(*l)),
            Spec::DependentLoad(l) => Instr::DependentLoad(u64::from(*l)),
            Spec::Store(l) => Instr::Store(u64::from(*l)),
        })
        .collect()
}

/// A memory system that services reads after a (randomized but bounded)
/// delay, in FIFO order.
struct FakeMemory {
    in_flight: VecDeque<(u64, MissId)>,
    latency: u64,
}

impl FakeMemory {
    fn drive(&mut self, core: &mut Core, now: u64) {
        while let Some((_, id)) = core.pending_read() {
            core.read_issued(id);
            self.in_flight.push_back((now + self.latency, id));
        }
        while core.pending_write().is_some() {
            core.write_issued();
        }
        while let Some(&(ready, id)) = self.in_flight.front() {
            if ready <= now {
                self.in_flight.pop_front();
                core.complete_read(id);
            } else {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn core_always_makes_progress(
        specs in proptest::collection::vec(spec(), 1..60),
        latency in 1u64..400,
        mshrs in 1usize..33,
        window in 4usize..129,
    ) {
        let cfg = CoreConfig { mshrs, window_size: window, ..CoreConfig::table2() };
        let mut core = Core::new(cfg, Box::new(TraceStream::new(to_trace(&specs))));
        let mut mem = FakeMemory { in_flight: VecDeque::new(), latency };
        let mut committed_last = 0;
        for now in 0..50_000u64 {
            core.tick(now);
            mem.drive(&mut core, now);
            if core.stats().committed >= 2_000 {
                break;
            }
            committed_last = core.stats().committed;
        }
        prop_assert!(
            core.stats().committed > committed_last.saturating_sub(1) && core.stats().committed >= 100,
            "core stalled permanently at {} instructions",
            core.stats().committed
        );
    }

    #[test]
    fn stall_cycles_never_exceed_cycles(
        specs in proptest::collection::vec(spec(), 1..40),
        latency in 1u64..300,
    ) {
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(to_trace(&specs))));
        let mut mem = FakeMemory { in_flight: VecDeque::new(), latency };
        for now in 0..10_000u64 {
            core.tick(now);
            mem.drive(&mut core, now);
        }
        let s = core.stats();
        prop_assert!(s.mem_stall_cycles <= s.cycles);
        prop_assert!(s.ipc() <= 3.0 + 1e-9, "IPC cannot exceed commit width");
    }

    #[test]
    fn outstanding_misses_respect_issue_order_and_complete(
        specs in proptest::collection::vec(spec(), 1..40),
        latency in 1u64..200,
    ) {
        let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(to_trace(&specs))));
        let mut last_issued: Option<MissId> = None;
        let mut mem = FakeMemory { in_flight: VecDeque::new(), latency };
        for now in 0..5_000u64 {
            core.tick(now);
            while let Some((_, id)) = core.pending_read() {
                if let Some(prev) = last_issued {
                    prop_assert!(id > prev, "misses must issue oldest-first: {id:?} after {prev:?}");
                }
                last_issued = Some(id);
                core.read_issued(id);
                mem.in_flight.push_back((now + latency, id));
            }
            while core.pending_write().is_some() {
                core.write_issued();
            }
            while let Some(&(ready, id)) = mem.in_flight.front() {
                if ready <= now {
                    mem.in_flight.pop_front();
                    core.complete_read(id);
                } else {
                    break;
                }
            }
        }
    }
}

/// Deterministic fence behaviour: a dependent load does not issue until all
/// older misses have completed.
#[test]
fn dependent_load_waits_for_older_misses() {
    let trace = vec![Instr::Load(1), Instr::Load(2), Instr::DependentLoad(3), Instr::Compute];
    let mut core = Core::new(CoreConfig::table2(), Box::new(TraceStream::new(trace)));
    for now in 0..4 {
        core.tick(now);
    }
    // Issue the two independent loads.
    let (l1, id1) = core.pending_read().unwrap();
    core.read_issued(id1);
    let (l2, id2) = core.pending_read().unwrap();
    core.read_issued(id2);
    assert_eq!((l1, l2), (1, 2));
    // The fence (line 3) must not issue while 1 and 2 are outstanding.
    assert!(core.pending_read().is_none(), "fence must wait");
    core.complete_read(id1);
    assert!(core.pending_read().is_none(), "fence still waits on the second miss");
    core.complete_read(id2);
    let (l3, _) = core.pending_read().expect("fence unblocked");
    assert_eq!(l3, 3);
}

/// An infinite-compute stream driven alongside: sanity for the fake memory
/// harness itself.
#[test]
fn fake_memory_harness_services_everything() {
    struct AllLoads(u64);
    impl InstructionStream for AllLoads {
        fn next_instr(&mut self) -> Instr {
            self.0 += 1;
            Instr::Load(self.0 % 64)
        }
    }
    let mut core = Core::new(CoreConfig::table2(), Box::new(AllLoads(0)));
    let mut mem = FakeMemory { in_flight: VecDeque::new(), latency: 50 };
    for now in 0..20_000 {
        core.tick(now);
        mem.drive(&mut core, now);
    }
    assert!(core.stats().committed > 1_000);
    assert!(core.stats().dram_reads > 100);
}
