//! STFM: the stall-time fair memory scheduler of Mutlu & Moscibroda
//! (MICRO 2007) — the strongest prior baseline in the PAR-BS evaluation.

use std::cmp::Ordering;

use parbs_dram::{
    Command, CommandKind, FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy,
    MemoryScheduler, Request, SchedView, StarvationClaim, ThreadId, ThreadTable, TimingParams,
};

/// STFM's key: the fairness-mode ("boosted") thread first, then row hits,
/// then the inverted request id.
pub(crate) const STFM_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "STFM",
    fields: &[
        KeyField { name: "boosted", semantic: FieldSemantic::Boosted, lo: 65, width: 1 },
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
    ],
};

/// STFM parameters (the values used in the PAR-BS paper's §7.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StfmConfig {
    /// Fairness threshold α: fairness-oriented scheduling kicks in when the
    /// estimated `max slowdown / min slowdown` exceeds this (1.10).
    pub alpha: f64,
    /// Counter-aging interval in cycles (2²⁴): Tshared/Tinterference are
    /// halved every interval so the estimate tracks phase changes.
    pub interval_length: u64,
}

impl Default for StfmConfig {
    fn default() -> Self {
        StfmConfig { alpha: 1.10, interval_length: 1 << 24 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ThreadState {
    /// Measured memory stall time while sharing (fed by the cores).
    t_shared: f64,
    /// Estimated extra stall time caused by other threads.
    t_interference: f64,
    /// Importance weight: the thread's slowdown estimate is multiplied by
    /// it, so a weight-8 thread is treated as 8x as slowed and is
    /// prioritized accordingly (approximating the original's weighted
    /// slowdown support).
    weight: f64,
    /// Whether the thread currently has requests queued (updated each slot).
    active: bool,
    /// Number of distinct banks with queued requests (BLP estimate γ).
    bank_parallelism: u32,
}

impl ThreadState {
    fn slowdown(&self) -> f64 {
        let alone = (self.t_shared - self.t_interference).max(1.0);
        let w = if self.weight > 0.0 { self.weight } else { 1.0 };
        (self.t_shared / alone).max(1.0) * w
    }
}

/// Stall-Time Fair Memory scheduler.
///
/// Per thread it tracks the measured shared-mode stall time `Tshared`
/// (reported by the cores through
/// [`MemoryScheduler::on_stall_cycles`]) and an online estimate of the
/// interference-induced extra stall `Tinterference`; the thread's slowdown
/// estimate is `S = Tshared / (Tshared − Tinterference)`. When
/// `max S / min S > α` the scheduler prioritizes the most-slowed thread's
/// requests; otherwise it behaves like FR-FCFS.
///
/// `Tinterference` accounting: whenever a request of thread *i* is serviced,
/// every other thread *j* with a queued request **to the same bank** accrues
/// `command latency / γ_j`, where `γ_j` is *j*'s instantaneous bank
/// parallelism (interference hurts a high-BLP thread less per bank, but the
/// estimate is systematically coarse — exactly the inaccuracy the PAR-BS
/// paper exploits when STFM underestimates mcf's slowdown); column commands
/// additionally charge the bus-transfer time to every other active thread.
#[derive(Debug, Clone)]
pub struct StfmScheduler {
    cfg: StfmConfig,
    timing: TimingParams,
    /// Sparse per-thread stall/interference state; a thread occupies an
    /// entry only once it stalls, accrues interference, is weighted, or
    /// queues a request.
    threads: ThreadTable<ThreadState>,
    /// Thread estimated most slowed in the current slot (fairness mode).
    prioritized: Option<ThreadId>,
    /// Threads with a queued request per bank, rebuilt each slot.
    bank_threads: Vec<Vec<ThreadId>>,
    /// Distinct queued threads as of the last slot, ascending by id — the
    /// fairness scan and the interference charge walk this instead of the
    /// whole id space, so both stay O(active threads).
    active_threads: Vec<ThreadId>,
    last_aging: u64,
}

impl StfmScheduler {
    /// Creates an STFM scheduler with the paper's parameters
    /// (α = 1.10, interval 2²⁴).
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(StfmConfig::default())
    }

    /// Creates an STFM scheduler with explicit parameters.
    #[must_use]
    pub fn with_config(cfg: StfmConfig) -> Self {
        StfmScheduler {
            cfg,
            timing: TimingParams::ddr2_800(),
            threads: ThreadTable::new(),
            prioritized: None,
            bank_threads: Vec::new(),
            active_threads: Vec::new(),
            last_aging: 0,
        }
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        self.threads.get_or_default(t)
    }

    /// The current slowdown estimate for a thread (for tests/telemetry).
    #[must_use]
    pub fn slowdown_estimate(&self, t: ThreadId) -> f64 {
        self.threads.get(t).map_or(1.0, ThreadState::slowdown)
    }

    /// The thread being prioritized by fairness mode, if any.
    #[must_use]
    pub fn fairness_mode_thread(&self) -> Option<ThreadId> {
        self.prioritized
    }

    fn command_latency(&self, kind: CommandKind) -> f64 {
        match kind {
            CommandKind::Activate => self.timing.t_rcd as f64,
            CommandKind::Precharge => self.timing.t_rp as f64,
            CommandKind::Read | CommandKind::Write => {
                (self.timing.t_cl + self.timing.t_burst) as f64
            }
            CommandKind::Refresh => self.timing.t_rfc as f64,
        }
    }

    /// Estimated unfairness (`max slowdown / min slowdown`) among active
    /// threads with measured service, and the most-slowed such thread.
    ///
    /// Degenerate cases are pinned down explicitly: with fewer than two
    /// eligible threads there is no one to be unfair *to*, so the estimate
    /// is 1.0 and no thread is singled out; threads with `Tshared == 0`
    /// (no measured stall time yet) are skipped entirely, since their
    /// vacuous slowdown-1.0 estimates would otherwise anchor the minimum
    /// and inflate the ratio. A non-finite ratio (impossible with clamped
    /// weights, but cheap to guard) also reports 1.0.
    fn fairness_scan(&self) -> (f64, Option<ThreadId>) {
        let mut max: Option<(f64, ThreadId)> = None;
        let mut min: Option<f64> = None;
        let mut eligible = 0u32;
        // `active_threads` is ascending by id, so ties on the maximum resolve
        // to the lowest thread id — the same winner a dense 0..n scan picks.
        for &i in &self.active_threads {
            let Some(t) = self.threads.get(i) else { continue };
            if !t.active || t.t_shared <= 0.0 {
                continue;
            }
            eligible += 1;
            let s = t.slowdown();
            if max.is_none_or(|(m, _)| s > m) {
                max = Some((s, i));
            }
            min = Some(min.map_or(s, |m: f64| m.min(s)));
        }
        let (Some((max_s, max_thread)), Some(min_s)) = (max, min) else {
            return (1.0, None);
        };
        if eligible < 2 || min_s <= 0.0 {
            return (1.0, None);
        }
        let ratio = max_s / min_s;
        if ratio.is_finite() {
            (ratio, Some(max_thread))
        } else {
            (1.0, None)
        }
    }

    /// The current estimated unfairness among active threads (1.0 when
    /// fewer than two threads have measured service).
    #[must_use]
    pub fn estimated_unfairness(&self) -> f64 {
        self.fairness_scan().0
    }
}

impl Default for StfmScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryScheduler for StfmScheduler {
    fn name(&self) -> &str {
        "STFM"
    }

    fn set_thread_weight(&mut self, thread: ThreadId, weight: f64) {
        self.thread_mut(thread).weight = weight.max(1e-6);
    }

    fn on_stall_cycles(&mut self, stall_cycles: &[u64], _now: u64) {
        for (t, &cycles) in stall_cycles.iter().enumerate() {
            // A zero report adds nothing; skipping it keeps never-stalled
            // threads out of the table entirely.
            if cycles > 0 {
                self.thread_mut(ThreadId(t)).t_shared += cycles as f64;
            }
        }
    }

    fn pre_schedule(&mut self, queue: &mut [Request], view: &SchedView<'_>) -> bool {
        let was_prioritized = self.prioritized;
        // Counter aging — the one sweep that touches every registered entry,
        // amortized over the (long) aging interval. The same sweep retires
        // idle entries whose state is exactly default: an unregistered thread
        // and a default entry are observationally identical (slowdown 1.0,
        // skipped by the fairness scan, re-registered on the next touch), so
        // dropping them cannot change any scheduling decision.
        let now = view.now;
        if now.saturating_sub(self.last_aging) >= self.cfg.interval_length {
            self.last_aging = now;
            self.threads.for_each_mut(|_, t| {
                t.t_shared *= 0.5;
                t.t_interference *= 0.5;
            });
            self.threads.retain(|_, t| {
                t.active || t.t_shared != 0.0 || t.t_interference != 0.0 || t.weight != 0.0
            });
        }
        // Rebuild the bank-occupancy snapshot and per-thread BLP estimate,
        // touching only last slot's active threads and the current queue.
        let banks = view.channel.bank_count();
        self.bank_threads.clear();
        self.bank_threads.resize(banks, Vec::new());
        for &t in &self.active_threads {
            if let Some(st) = self.threads.get_mut(t) {
                st.active = false;
                st.bank_parallelism = 0;
            }
        }
        self.active_threads.clear();
        for req in queue.iter() {
            let list = &mut self.bank_threads[req.addr.bank];
            if !list.contains(&req.thread) {
                list.push(req.thread);
            }
        }
        let bank_threads = std::mem::take(&mut self.bank_threads);
        let mut active = std::mem::take(&mut self.active_threads);
        for list in &bank_threads {
            for &t in list {
                let st = self.thread_mut(t);
                if !st.active {
                    active.push(t);
                }
                st.active = true;
                st.bank_parallelism += 1;
            }
        }
        self.bank_threads = bank_threads;
        self.active_threads = active;
        self.active_threads.sort_unstable_by_key(|t| t.0);
        // Fairness decision: estimated unfairness among active threads.
        let (unfairness, max_thread) = self.fairness_scan();
        self.prioritized = if unfairness > self.cfg.alpha { max_thread } else { None };
        // Only the fairness-mode thread feeds request priorities; the
        // slowdown bookkeeping above does not. Report a key-relevant change
        // exactly when the prioritized thread switched.
        self.prioritized != was_prioritized
    }

    fn on_command(&mut self, cmd: &Command, req: &Request, _now: u64) {
        // Interference accounting: servicing `req` (thread i) delays every
        // other thread waiting on the same bank; column commands also hold
        // the shared data bus.
        let latency = self.command_latency(cmd.kind);
        let bus = if cmd.kind.is_column() { self.timing.t_burst as f64 } else { 0.0 };
        let victims: Vec<(ThreadId, u32)> = self
            .active_threads
            .iter()
            .filter(|&&t| t != req.thread)
            .filter_map(|&t| self.threads.get(t).map(|s| (t, s.bank_parallelism.max(1))))
            .collect();
        let same_bank = self.bank_threads.get(cmd.bank).cloned().unwrap_or_default();
        for (t, gamma) in victims {
            if same_bank.contains(&t) {
                self.thread_mut(t).t_interference += latency / f64::from(gamma);
            } else if bus > 0.0 {
                self.thread_mut(t).t_interference += bus / f64::from(gamma);
            }
        }
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        // Fairness-mode thread first, then row hits, then oldest-first.
        let boosted = self.prioritized == Some(req.thread);
        (u128::from(boosted) << 65)
            | (u128::from(view.is_row_hit(req)) << 64)
            | u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        if let Some(p) = self.prioritized {
            // Fairness mode: the most-slowed thread's requests first
            // (row hits first within it), then FR-FCFS among the rest.
            let pa = a.thread == p;
            let pb = b.thread == p;
            if pa != pb {
                return pb.cmp(&pa);
            }
        }
        let hit_a = view.is_row_hit(a);
        let hit_b = view.is_row_hit(b);
        hit_b.cmp(&hit_a).then(a.id.cmp(&b.id))
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&STFM_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // Fairness mode: a thread whose slowdown crosses alpha is boosted
        // over all row hits. In the abstract model the slowdown estimate is
        // a saturating went-unserved counter; crossing the threshold is the
        // unfairness trip point.
        Some(LivenessContract {
            scheduler: "STFM",
            policy: LivenessPolicy::FairnessThreshold { threshold: 3 },
            claim: StarvationClaim::Bounded,
        })
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.threads);
        w.put(&self.prioritized);
        w.put(&self.bank_threads);
        w.put(&self.active_threads);
        w.u64(self.last_aging);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        self.threads = r.get()?;
        self.prioritized = r.get()?;
        self.bank_threads = r.get()?;
        self.active_threads = r.get()?;
        self.last_aging = r.u64()?;
        Ok(())
    }
}

impl parbs_snap::Snap for ThreadState {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.f64(self.t_shared);
        w.f64(self.t_interference);
        w.f64(self.weight);
        w.bool(self.active);
        w.u32(self.bank_parallelism);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(ThreadState {
            t_shared: r.f64()?,
            t_interference: r.f64()?,
            weight: r.f64()?,
            active: r.bool()?,
            bank_parallelism: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{Channel, LineAddr, RequestKind};

    fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            0,
        )
    }

    fn view(ch: &Channel) -> SchedView<'_> {
        SchedView { channel: ch, now: 0 }
    }

    #[test]
    fn starts_in_frfcfs_mode() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch));
        assert!(s.fairness_mode_thread().is_none());
        assert_eq!(s.compare(&q[0], &q[1], &view(&ch)), Ordering::Less);
    }

    #[test]
    fn unfairness_triggers_fairness_mode() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        // Thread 1 stalls a lot and is heavily interfered with.
        s.on_stall_cycles(&[1_000, 100_000], 0);
        s.thread_mut(ThreadId(1)).t_interference = 60_000.0;
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch));
        assert_eq!(s.fairness_mode_thread(), Some(ThreadId(1)));
        // Thread 1's request now outranks thread 0's older request.
        assert_eq!(s.compare(&q[1], &q[0], &view(&ch)), Ordering::Less);
    }

    #[test]
    fn slowdown_estimate_grows_with_interference() {
        let mut s = StfmScheduler::new();
        s.on_stall_cycles(&[10_000], 0);
        assert!((s.slowdown_estimate(ThreadId(0)) - 1.0).abs() < 1e-9);
        s.thread_mut(ThreadId(0)).t_interference = 5_000.0;
        assert!((s.slowdown_estimate(ThreadId(0)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interference_charged_to_same_bank_victims() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 3, 1), req(1, 1, 3, 2)];
        s.pre_schedule(&mut q, &view(&ch));
        let cmd = Command {
            kind: CommandKind::Activate,
            rank: 0,
            bank: 3,
            row: 1,
            col: 0,
            request: q[0].id,
        };
        s.on_command(&cmd, &q[0], 0);
        let interference =
            |s: &StfmScheduler, t: usize| s.threads.get(ThreadId(t)).unwrap().t_interference;
        assert!(interference(&s, 1) > 0.0, "thread 1 waits on bank 3");
        assert_eq!(interference(&s, 0), 0.0, "no self-interference");
    }

    #[test]
    fn high_blp_threads_accrue_less_interference_per_event() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        // Thread 1 waits on 4 banks (high BLP), thread 2 on one bank.
        let mut q = vec![
            req(0, 0, 0, 1),
            req(1, 1, 0, 2),
            req(2, 1, 1, 2),
            req(3, 1, 2, 2),
            req(4, 1, 3, 2),
            req(5, 2, 0, 3),
        ];
        s.pre_schedule(&mut q, &view(&ch));
        let cmd = Command {
            kind: CommandKind::Activate,
            rank: 0,
            bank: 0,
            row: 1,
            col: 0,
            request: q[0].id,
        };
        s.on_command(&cmd, &q[0], 0);
        let interference =
            |s: &StfmScheduler, t: usize| s.threads.get(ThreadId(t)).unwrap().t_interference;
        assert!(
            interference(&s, 1) < interference(&s, 2),
            "gamma scaling: high-BLP thread is charged less per event"
        );
    }

    #[test]
    fn aging_halves_counters() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        s.on_stall_cycles(&[8_000], 0);
        s.thread_mut(ThreadId(0)).t_interference = 4_000.0;
        let mut q = vec![req(0, 0, 0, 1)];
        let v = SchedView { channel: &ch, now: 1 << 24 };
        s.pre_schedule(&mut q, &v);
        let t0 = s.threads.get(ThreadId(0)).unwrap();
        assert!((t0.t_shared - 4_000.0).abs() < 1e-9);
        assert!((t0.t_interference - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_active_threads_report_unit_unfairness() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        s.on_stall_cycles(&[50_000, 1_000], 0);
        s.thread_mut(ThreadId(0)).t_interference = 40_000.0;
        // Empty queue: no thread is active, so there is no unfairness.
        let mut q: Vec<Request> = vec![];
        assert!(!s.pre_schedule(&mut q, &view(&ch)));
        assert!((s.estimated_unfairness() - 1.0).abs() < 1e-12);
        assert!(s.fairness_mode_thread().is_none());
    }

    #[test]
    fn a_single_active_thread_cannot_trigger_fairness_mode() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        s.on_stall_cycles(&[50_000], 0);
        s.thread_mut(ThreadId(0)).t_interference = 40_000.0; // slowdown 5.0
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch));
        assert!((s.estimated_unfairness() - 1.0).abs() < 1e-12, "nobody to be unfair to");
        assert!(s.fairness_mode_thread().is_none());
    }

    #[test]
    fn zero_service_threads_are_skipped_by_the_scan() {
        let mut s = StfmScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        // Thread 0 is genuinely slowed; thread 1 is active but has reported
        // no stall time yet. Its vacuous slowdown of 1.0 must not anchor
        // the minimum and fake an unfairness of 5.0.
        s.on_stall_cycles(&[50_000, 0], 0);
        s.thread_mut(ThreadId(0)).t_interference = 40_000.0;
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch));
        assert!((s.estimated_unfairness() - 1.0).abs() < 1e-12);
        assert!(s.fairness_mode_thread().is_none());
    }

    #[test]
    fn weights_scale_slowdown() {
        let mut s = StfmScheduler::new();
        s.set_thread_weight(ThreadId(0), 8.0);
        s.on_stall_cycles(&[10_000], 0);
        s.thread_mut(ThreadId(0)).t_interference = 5_000.0;
        // Raw slowdown 2.0, importance weight 8 → treated as 16x slowed.
        assert!((s.slowdown_estimate(ThreadId(0)) - 16.0).abs() < 1e-9);
    }
}
