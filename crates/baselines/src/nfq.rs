//! NFQ: the network-fair-queueing memory scheduler of Nesbit et al.
//! (MICRO 2006), in its best variant FQ-VFTF (fair queueing based on virtual
//! finish times, with priority-inversion prevention).

use std::cmp::Ordering;
use std::collections::HashMap;

use parbs_dram::{
    f64_total_order_bits, FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy,
    MemoryScheduler, Request, RequestId, SchedView, StarvationClaim, ThreadId, ThreadTable,
    TimingParams,
};

/// Which virtual timestamp orders requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VirtualTimePolicy {
    /// Earliest virtual **finish** time first — Nesbit et al.'s FQ-VFTF,
    /// the paper's NFQ baseline.
    #[default]
    FinishTime,
    /// Earliest virtual **start** time first — the STFQ improvement of
    /// Rafique et al. (PACT 2007), referenced in the paper's §9: start-time
    /// fair queueing is less sensitive to the idleness problem because a
    /// backlogged thread's pending request carries its (small) start tag
    /// rather than an inflated finish tag.
    StartTime,
}

/// NFQ parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfqConfig {
    /// Virtual cost of servicing one request (the fair-queueing quantum),
    /// in cycles. The default is the uncontended row-closed access latency.
    pub service_quantum: f64,
    /// Priority-inversion prevention threshold: a row-hit request is allowed
    /// to jump ahead of an earlier virtual deadline only while its bank's
    /// row has been open for less than this many cycles (the paper's "tRAS
    /// threshold").
    pub tras_threshold: u64,
    /// Start-time vs. finish-time ordering.
    pub policy: VirtualTimePolicy,
}

impl Default for NfqConfig {
    fn default() -> Self {
        let t = TimingParams::ddr2_800();
        NfqConfig {
            service_quantum: t.row_closed_latency() as f64,
            tras_threshold: t.t_ras,
            policy: VirtualTimePolicy::default(),
        }
    }
}

/// Fair-queueing scheduler: each thread owns a share of the memory system;
/// each request receives a **virtual finish time** (VFT) from its thread's
/// per-bank virtual clock, and the earliest VFT wins.
///
/// Behavioural notes the PAR-BS paper relies on (§8.1.1):
///
/// * the per-(thread, bank) virtual clocks are **uncoordinated across
///   banks**, so a thread's concurrent accesses to different banks can be
///   serviced out of sync — NFQ destroys intra-thread bank-parallelism;
/// * an *idle* thread's virtual clock lags real time, so when a bursty
///   thread wakes up its requests get early deadlines and jump ahead (the
///   "idleness problem").
///
/// Both effects emerge naturally from this implementation.
#[derive(Debug, Clone)]
pub struct NfqScheduler {
    cfg: NfqConfig,
    /// Virtual clock per (thread, bank).
    clocks: HashMap<(ThreadId, usize), f64>,
    /// Virtual finish time assigned to each queued request.
    deadlines: HashMap<RequestId, f64>,
    /// Per-thread share weights; unregistered threads get the default 1.0,
    /// so only explicitly weighted threads occupy state.
    weights: ThreadTable<f64>,
    /// Bitmask of banks whose open row is still inside its capture window
    /// (`now - last_activate < tras_threshold`), as of the last
    /// `pre_schedule`. A capture window *expiring* changes priorities with
    /// no command being issued, so `pre_schedule` recomputes this mask and
    /// reports the change to the controller's key cache.
    recent_banks: u64,
}

impl NfqScheduler {
    /// Creates an NFQ scheduler with default parameters and equal shares.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(NfqConfig::default())
    }

    /// Creates the start-time fair queueing variant (Rafique et al.).
    #[must_use]
    pub fn stfq() -> Self {
        Self::with_config(NfqConfig {
            policy: VirtualTimePolicy::StartTime,
            ..NfqConfig::default()
        })
    }

    /// Creates an NFQ scheduler with explicit parameters.
    #[must_use]
    pub fn with_config(cfg: NfqConfig) -> Self {
        NfqScheduler {
            cfg,
            clocks: HashMap::new(),
            deadlines: HashMap::new(),
            weights: ThreadTable::new(),
            recent_banks: 0,
        }
    }

    /// True if `r` is a row hit whose bank is still inside the capture
    /// window (priority-inversion prevention).
    fn recent_hit(&self, r: &Request, view: &SchedView<'_>) -> bool {
        view.is_row_hit(r)
            && view.now.saturating_sub(view.channel.bank(r.addr.bank).last_activate_at())
                < self.cfg.tras_threshold
    }

    /// The share weight of a thread (1.0 unless overridden).
    #[must_use]
    pub fn thread_weight(&self, thread: ThreadId) -> f64 {
        self.weights.get(thread).copied().unwrap_or(1.0)
    }

    fn weight(&self, thread: ThreadId) -> f64 {
        self.thread_weight(thread)
    }

    /// The virtual finish time assigned to a queued request (for tests).
    #[must_use]
    pub fn deadline_of(&self, id: RequestId) -> Option<f64> {
        self.deadlines.get(&id).copied()
    }

    /// Installs an arbitrary deadline, bypassing the virtual clocks — test
    /// hook for exercising the key encoding on values the clock arithmetic
    /// cannot produce (subnormals, exact ties, extremes).
    #[cfg(test)]
    fn set_deadline_for_tests(&mut self, id: RequestId, dl: f64) {
        self.deadlines.insert(id, dl);
    }
}

impl Default for NfqScheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// NFQ's key: capture-window row hit, then the inverted total-order
/// embedding of the virtual deadline (earlier deadlines pack larger), then
/// inverted request id. Request ids are bounded by the 63-bit age field
/// (asserted in `priority_key`).
pub(crate) const NFQ_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "NFQ",
    fields: &[
        KeyField { name: "recent_hit", semantic: FieldSemantic::RecentRowHit, lo: 127, width: 1 },
        KeyField { name: "deadline", semantic: FieldSemantic::Deadline, lo: 63, width: 64 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 63 },
    ],
};

impl MemoryScheduler for NfqScheduler {
    fn name(&self) -> &str {
        match self.cfg.policy {
            VirtualTimePolicy::FinishTime => "NFQ",
            VirtualTimePolicy::StartTime => "STFQ",
        }
    }

    fn set_thread_weight(&mut self, thread: ThreadId, weight: f64) {
        self.weights.insert(thread, weight.max(1e-6));
    }

    fn on_arrival(&mut self, req: &Request, now: u64) {
        // Virtual start = max(thread's bank clock, real arrival time); the
        // max() with real time is what lets idle threads re-enter with
        // competitive deadlines.
        let key = (req.thread, req.addr.bank);
        let clock = self.clocks.get(&key).copied().unwrap_or(0.0);
        let start = clock.max(now as f64);
        let finish = start + self.cfg.service_quantum / self.weight(req.thread);
        self.clocks.insert(key, finish);
        let tag = match self.cfg.policy {
            VirtualTimePolicy::FinishTime => finish,
            VirtualTimePolicy::StartTime => start,
        };
        self.deadlines.insert(req.id, tag);
    }

    fn on_complete(&mut self, req: &Request, _now: u64) {
        self.deadlines.remove(&req.id);
    }

    fn pre_schedule(&mut self, _queue: &mut [Request], view: &SchedView<'_>) -> bool {
        // Row-capture windows expire by the mere passage of time; the
        // controller cannot see that, so detect it here per the key-caching
        // contract. (Windows *opening* coincide with an activate, which the
        // controller observes itself, but recomputing the whole mask is
        // simplest and equally correct.)
        let mut mask = 0u64;
        for bank in 0..view.channel.bank_count() {
            let b = view.channel.bank(bank);
            if b.open_row().is_some()
                && view.now.saturating_sub(b.last_activate_at()) < self.cfg.tras_threshold
            {
                mask |= 1 << bank;
            }
        }
        std::mem::replace(&mut self.recent_banks, mask) != mask
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        // Capture-window row hits first, then the earliest virtual deadline,
        // then oldest-first. The deadline field inverts the sign-magnitude
        // total-order embedding, so smaller (earlier) deadlines pack larger
        // for *every* f64 — ties, subnormals, negatives and infinities all
        // order exactly as `total_cmp` in `compare` does.
        let dl = self.deadlines.get(&req.id).copied().unwrap_or(f64::MAX);
        debug_assert!(req.id.0 < 1 << 63, "request id fits 63 key bits");
        (u128::from(self.recent_hit(req, view)) << 127)
            | (u128::from(!f64_total_order_bits(dl)) << 63)
            | u128::from(((1u64 << 63) - 1) - req.id.0)
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&NFQ_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // Earliest virtual deadline first: a starved thread's virtual clock
        // falls ever further behind, so its requests eventually outrank any
        // hammer stream — the least-attained-service mechanism with the
        // clock read as attained service.
        Some(LivenessContract {
            scheduler: "NFQ",
            policy: LivenessPolicy::LeastAttained { saturation: 3 },
            claim: StarvationClaim::Bounded,
        })
    }

    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        // Priority-inversion prevention: row hits go first, but a row may
        // only be "captured" for tras_threshold cycles after its activate.
        let hit_a = self.recent_hit(a, view);
        let hit_b = self.recent_hit(b, view);
        let dl = |r: &Request| self.deadlines.get(&r.id).copied().unwrap_or(f64::MAX);
        hit_b.cmp(&hit_a).then_with(|| dl(a).total_cmp(&dl(b))).then_with(|| a.id.cmp(&b.id))
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        // HashMap iteration order is nondeterministic; write both maps in
        // ascending key order so the byte stream is canonical.
        let mut clocks: Vec<((ThreadId, usize), f64)> =
            self.clocks.iter().map(|(&k, &v)| (k, v)).collect();
        clocks.sort_by_key(|&(k, _)| k);
        w.seq(clocks.len());
        for ((thread, bank), clock) in clocks {
            w.usize(thread.0);
            w.usize(bank);
            w.f64(clock);
        }
        let mut deadlines: Vec<(RequestId, f64)> =
            self.deadlines.iter().map(|(&k, &v)| (k, v)).collect();
        deadlines.sort_by_key(|&(k, _)| k);
        w.seq(deadlines.len());
        for (id, dl) in deadlines {
            w.u64(id.0);
            w.f64(dl);
        }
        w.put(&self.weights);
        w.u64(self.recent_banks);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let n = r.seq()?;
        let mut clocks = HashMap::with_capacity(n);
        for _ in 0..n {
            let thread = ThreadId(r.usize()?);
            let bank = r.usize()?;
            clocks.insert((thread, bank), r.f64()?);
        }
        let n = r.seq()?;
        let mut deadlines = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = RequestId(r.u64()?);
            deadlines.insert(id, r.f64()?);
        }
        self.clocks = clocks;
        self.deadlines = deadlines;
        self.weights = r.get()?;
        self.recent_banks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{Channel, LineAddr, RequestKind};

    fn req(id: u64, thread: usize, bank: usize, row: u64, at: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            at,
        )
    }

    #[test]
    fn deadlines_accumulate_per_thread_bank() {
        let mut s = NfqScheduler::new();
        let r0 = req(0, 0, 0, 1, 0);
        let r1 = req(1, 0, 0, 2, 0);
        s.on_arrival(&r0, 0);
        s.on_arrival(&r1, 0);
        let d0 = s.deadline_of(r0.id).unwrap();
        let d1 = s.deadline_of(r1.id).unwrap();
        assert!(d1 > d0, "same (thread,bank): second request has later VFT");
        assert!((d1 - 2.0 * d0).abs() < 1e-9, "quantum accumulates linearly");
    }

    #[test]
    fn idle_thread_gets_competitive_deadline() {
        let mut s = NfqScheduler::new();
        // Thread 0 is intensive: many requests pile up its virtual clock.
        for i in 0..50 {
            s.on_arrival(&req(i, 0, 0, 1, 0), 0);
        }
        // Thread 1 wakes up late: its clock restarts from real time.
        let late = req(100, 1, 0, 7, 1_000);
        s.on_arrival(&late, 1_000);
        let d_busy_tail = s.deadline_of(RequestId(parbs_dram::RequestId(49).0)).unwrap();
        let d_late = s.deadline_of(late.id).unwrap();
        assert!(
            d_late < d_busy_tail,
            "bursty thread jumps ahead (idleness problem): {d_late} vs {d_busy_tail}"
        );
    }

    #[test]
    fn higher_weight_gets_earlier_deadlines() {
        let mut s = NfqScheduler::new();
        s.set_thread_weight(ThreadId(0), 1.0);
        s.set_thread_weight(ThreadId(1), 8.0);
        let a = req(0, 0, 0, 1, 0);
        let b = req(1, 1, 1, 1, 0);
        s.on_arrival(&a, 0);
        s.on_arrival(&b, 0);
        assert!(s.deadline_of(b.id).unwrap() < s.deadline_of(a.id).unwrap());
    }

    #[test]
    fn earliest_deadline_wins_without_hits() {
        let mut s = NfqScheduler::new();
        let ch = Channel::new(8, TimingParams::ddr2_800());
        let a = req(0, 0, 0, 1, 0);
        s.on_arrival(&a, 0);
        let b = req(1, 0, 0, 2, 0); // same thread+bank → later VFT
        s.on_arrival(&b, 0);
        let view = SchedView { channel: &ch, now: 0 };
        assert_eq!(s.compare(&a, &b, &view), Ordering::Less);
    }

    #[test]
    fn stfq_uses_start_tags() {
        let mut nfq = NfqScheduler::new();
        let mut stfq = NfqScheduler::stfq();
        assert_eq!(stfq.name(), "STFQ");
        let r = req(0, 0, 0, 1, 0);
        nfq.on_arrival(&r, 0);
        stfq.on_arrival(&r, 0);
        // First request: start tag 0, finish tag = one quantum.
        assert_eq!(stfq.deadline_of(r.id).unwrap(), 0.0);
        assert!(nfq.deadline_of(r.id).unwrap() > 0.0);
    }

    #[test]
    fn stfq_is_less_punishing_to_backlogged_threads() {
        // Thread 0 has a deep backlog; thread 1 arrives fresh. Under
        // finish-time tags, thread 0's next request carries k+1 quanta;
        // under start tags it carries k quanta — one quantum friendlier.
        let mut nfq = NfqScheduler::new();
        let mut stfq = NfqScheduler::stfq();
        for i in 0..10 {
            nfq.on_arrival(&req(i, 0, 0, 1, 0), 0);
            stfq.on_arrival(&req(i, 0, 0, 1, 0), 0);
        }
        let d_nfq = nfq.deadline_of(RequestId(9)).unwrap();
        let d_stfq = stfq.deadline_of(RequestId(9)).unwrap();
        assert!(d_stfq < d_nfq);
    }

    #[test]
    fn deadline_key_orders_like_total_cmp_on_hard_values() {
        // The satellite fix: the key's deadline field must order like
        // `total_cmp` even for ties, subnormals and huge deadlines (the old
        // raw-bits inversion was only correct for non-negative values and
        // is now replaced by the sign-magnitude total-order embedding).
        let ch = Channel::new(8, TimingParams::ddr2_800());
        let view = SchedView { channel: &ch, now: 0 };
        let mut s = NfqScheduler::new();
        let deadlines: &[f64] = &[
            0.0,
            f64::from_bits(1), // smallest positive subnormal
            f64::MIN_POSITIVE,
            1.0,
            1.0, // tie with the previous — age must break it
            1.5e18,
            9.9e307,
            f64::MAX,
        ];
        let reqs: Vec<Request> = (0..deadlines.len()).map(|i| req(i as u64, 0, 0, 1, 0)).collect();
        for (r, &dl) in reqs.iter().zip(deadlines) {
            s.set_deadline_for_tests(r.id, dl);
        }
        for a in &reqs {
            for b in &reqs {
                let by_key = s.priority_key(b, &view).cmp(&s.priority_key(a, &view));
                assert_eq!(
                    by_key,
                    s.compare(a, b, &view),
                    "key vs comparator mismatch for deadlines {:?} vs {:?}",
                    s.deadline_of(a.id),
                    s.deadline_of(b.id)
                );
            }
        }
    }

    #[test]
    fn completion_clears_deadline() {
        let mut s = NfqScheduler::new();
        let a = req(0, 0, 0, 1, 0);
        s.on_arrival(&a, 0);
        s.on_complete(&a, 100);
        assert!(s.deadline_of(a.id).is_none());
    }
}
