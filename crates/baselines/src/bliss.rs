//! BLISS: the Blacklisting memory scheduler of Subramanian et al.
//! (ICCD 2014 / TPDS 2016) — most of the fairness of application-aware
//! ranking schemes at a fraction of the hardware cost.
//!
//! The observation: interference-causing threads are exactly the ones that
//! get *streaks* of consecutive service (high row locality and high
//! intensity keep winning FR-FCFS arbitration). BLISS therefore tracks only
//! the last-serviced thread and a streak counter; a thread whose streak
//! reaches the blacklisting threshold is demoted below every non-blacklisted
//! thread until the periodic clearing interval wipes the blacklist. No
//! per-thread ranking, no slowdown estimation.

use std::cmp::Ordering;

use parbs_dram::{
    Command, FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy, MemoryScheduler,
    Request, SchedView, StarvationClaim, ThreadId, ThreadTable,
};
use parbs_obs::Event;

/// BLISS's key: non-blacklisted threads first, then row hits, then the
/// inverted request id.
pub(crate) const BLISS_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "BLISS",
    fields: &[
        KeyField {
            name: "not_blacklisted",
            semantic: FieldSemantic::NotBlacklisted,
            lo: 65,
            width: 1,
        },
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
    ],
};

/// BLISS parameters (the paper's defaults, scaled to this simulator's
/// cycle counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlissConfig {
    /// Blacklisting threshold: a thread is blacklisted once this many of its
    /// requests are serviced consecutively (the paper's N = 4).
    pub blacklist_threshold: u32,
    /// Clearing interval in cycles: the whole blacklist is emptied every
    /// interval, giving blacklisted threads a fresh start.
    pub clear_interval: u64,
}

impl Default for BlissConfig {
    fn default() -> Self {
        BlissConfig { blacklist_threshold: 4, clear_interval: 10_000 }
    }
}

/// The Blacklisting scheduler.
///
/// [`MemoryScheduler::on_command`] counts consecutive column commands per
/// thread and blacklists streak offenders; because the controller's key
/// cache is *not* invalidated by column commands, every blacklist mutation
/// sets a dirty flag that the next [`MemoryScheduler::pre_schedule`] reports
/// (the key-caching contract). The periodic clear is time-based and is
/// likewise detected — and reported — in `pre_schedule`.
#[derive(Debug, Clone)]
pub struct BlissScheduler {
    cfg: BlissConfig,
    /// Blacklist membership as a sparse presence set: a registered thread is
    /// blacklisted. The periodic clear retires every entry at once, so the
    /// table never outlives one clearing interval's offenders — O(active
    /// blacklisted threads), independent of the id space.
    blacklisted: ThreadTable<()>,
    /// Thread whose request was serviced by the most recent column command.
    last_serviced: Option<ThreadId>,
    /// Length of the current consecutive-service streak.
    streak: u32,
    /// Cycle the blacklist was last cleared at.
    last_clear: u64,
    /// Set when `on_command` changed blacklist membership since the last
    /// `pre_schedule` — the keys are stale and must be recomputed.
    dirty: bool,
    observing: bool,
    obs_events: Vec<Event>,
}

impl BlissScheduler {
    /// Creates a BLISS scheduler with the paper's parameters
    /// (threshold 4, clearing interval 10 000 cycles).
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(BlissConfig::default())
    }

    /// Creates a BLISS scheduler with explicit parameters.
    #[must_use]
    pub fn with_config(cfg: BlissConfig) -> Self {
        BlissScheduler {
            cfg,
            blacklisted: ThreadTable::new(),
            last_serviced: None,
            streak: 0,
            last_clear: 0,
            dirty: false,
            observing: false,
            obs_events: Vec::new(),
        }
    }

    /// Whether a thread is currently blacklisted (for tests/telemetry).
    #[must_use]
    pub fn is_blacklisted(&self, t: ThreadId) -> bool {
        self.blacklisted.contains(t)
    }

    /// Number of currently blacklisted threads.
    #[must_use]
    pub fn blacklist_len(&self) -> usize {
        self.blacklisted.len()
    }
}

impl Default for BlissScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryScheduler for BlissScheduler {
    fn name(&self) -> &str {
        "BLISS"
    }

    fn pre_schedule(&mut self, _queue: &mut [Request], view: &SchedView<'_>) -> bool {
        let mut changed = std::mem::take(&mut self.dirty);
        if view.now.saturating_sub(self.last_clear) >= self.cfg.clear_interval {
            self.last_clear = view.now;
            let cleared = u32::try_from(self.blacklist_len()).expect("thread count fits in u32");
            if cleared > 0 {
                self.blacklisted.clear();
                changed = true;
                if self.observing {
                    self.obs_events.push(Event::BlacklistCleared { at: view.now, cleared });
                }
            }
        }
        changed
    }

    fn on_command(&mut self, cmd: &Command, req: &Request, now: u64) {
        // Only column commands represent actual service (data movement);
        // activates/precharges are preparation and don't extend a streak.
        if !cmd.kind.is_column() {
            return;
        }
        if self.last_serviced == Some(req.thread) {
            self.streak += 1;
        } else {
            self.last_serviced = Some(req.thread);
            self.streak = 1;
        }
        if self.streak >= self.cfg.blacklist_threshold
            && self.blacklisted.insert(req.thread, ()).is_none()
        {
            // Column commands don't invalidate the controller's key
            // cache; flag the change for the next pre_schedule.
            self.dirty = true;
            if self.observing {
                self.obs_events.push(Event::BlacklistSet {
                    at: now,
                    thread: req.thread.0,
                    consecutive: self.streak,
                });
            }
        }
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        (u128::from(!self.is_blacklisted(req.thread)) << 65)
            | (u128::from(view.is_row_hit(req)) << 64)
            | u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        let ok_a = !self.is_blacklisted(a.thread);
        let ok_b = !self.is_blacklisted(b.thread);
        let hit_a = view.is_row_hit(a);
        let hit_b = view.is_row_hit(b);
        ok_b.cmp(&ok_a).then(hit_b.cmp(&hit_a)).then(a.id.cmp(&b.id))
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&BLISS_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // A hammering thread is blacklisted after `blacklist_threshold`
        // consecutive services, at which point any non-blacklisted request
        // outranks its row hits. (The periodic clearing interval is not
        // modeled; see [`LivenessPolicy::Blacklist`].)
        Some(LivenessContract {
            scheduler: "BLISS",
            policy: LivenessPolicy::Blacklist { threshold: self.cfg.blacklist_threshold },
            claim: StarvationClaim::Bounded,
        })
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.blacklisted);
        w.put(&self.last_serviced);
        w.u32(self.streak);
        w.u64(self.last_clear);
        w.bool(self.dirty);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        self.blacklisted = r.get()?;
        self.last_serviced = r.get()?;
        self.streak = r.u32()?;
        self.last_clear = r.u64()?;
        self.dirty = r.bool()?;
        Ok(())
    }

    fn set_observing(&mut self, enabled: bool) {
        self.observing = enabled;
        if !enabled {
            self.obs_events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.obs_events);
    }

    fn debug_summary(&self) -> String {
        format!(
            "BLISS: {} blacklisted, streak {} (thread {:?})",
            self.blacklist_len(),
            self.streak,
            self.last_serviced
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{Channel, CommandKind, LineAddr, RequestId, RequestKind, TimingParams};

    fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            0,
        )
    }

    fn col_cmd(r: &Request) -> Command {
        Command {
            kind: CommandKind::Read,
            rank: 0,
            bank: r.addr.bank,
            row: r.addr.row,
            col: 0,
            request: r.id,
        }
    }

    fn view(ch: &Channel) -> SchedView<'_> {
        SchedView { channel: ch, now: 0 }
    }

    #[test]
    fn streak_of_threshold_column_commands_blacklists_the_thread() {
        let mut s = BlissScheduler::new();
        let r = req(0, 1, 0, 5);
        for _ in 0..3 {
            s.on_command(&col_cmd(&r), &r, 10);
            assert!(!s.is_blacklisted(ThreadId(1)));
        }
        s.on_command(&col_cmd(&r), &r, 10);
        assert!(s.is_blacklisted(ThreadId(1)), "4th consecutive service blacklists");
    }

    #[test]
    fn an_interleaved_thread_resets_the_streak() {
        let mut s = BlissScheduler::new();
        let a = req(0, 0, 0, 5);
        let b = req(1, 1, 1, 5);
        for _ in 0..3 {
            s.on_command(&col_cmd(&a), &a, 0);
        }
        s.on_command(&col_cmd(&b), &b, 0);
        s.on_command(&col_cmd(&a), &a, 0);
        assert!(!s.is_blacklisted(ThreadId(0)), "streak was broken by thread 1");
        assert!(!s.is_blacklisted(ThreadId(1)));
    }

    #[test]
    fn activates_do_not_count_as_service() {
        let mut s = BlissScheduler::new();
        let r = req(0, 0, 0, 5);
        let act = Command {
            kind: CommandKind::Activate,
            rank: 0,
            bank: 0,
            row: 5,
            col: 0,
            request: RequestId(0),
        };
        for _ in 0..10 {
            s.on_command(&act, &r, 0);
        }
        assert!(!s.is_blacklisted(ThreadId(0)));
    }

    #[test]
    fn blacklist_mutation_is_reported_by_the_next_pre_schedule() {
        let mut s = BlissScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1)];
        assert!(!s.pre_schedule(&mut q, &view(&ch)), "nothing changed yet");
        let r = req(0, 0, 0, 5);
        for _ in 0..4 {
            s.on_command(&col_cmd(&r), &r, 0);
        }
        assert!(s.pre_schedule(&mut q, &view(&ch)), "blacklisting dirtied the keys");
        assert!(!s.pre_schedule(&mut q, &view(&ch)), "reported exactly once");
    }

    #[test]
    fn clearing_interval_empties_the_blacklist_and_reports_a_change() {
        let mut s = BlissScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let r = req(0, 0, 0, 5);
        for _ in 0..4 {
            s.on_command(&col_cmd(&r), &r, 0);
        }
        let mut q = vec![req(1, 1, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch));
        assert!(s.is_blacklisted(ThreadId(0)));
        let late = SchedView { channel: &ch, now: 10_000 };
        assert!(s.pre_schedule(&mut q, &late), "the clear changes priorities");
        assert!(!s.is_blacklisted(ThreadId(0)));
    }

    #[test]
    fn blacklisted_thread_loses_to_younger_non_blacklisted_requests() {
        let mut s = BlissScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let old = req(0, 0, 0, 5);
        let young = req(7, 1, 1, 5);
        assert_eq!(s.compare(&old, &young, &view(&ch)), Ordering::Less, "older wins normally");
        for _ in 0..4 {
            s.on_command(&col_cmd(&old), &old, 0);
        }
        assert_eq!(
            s.compare(&old, &young, &view(&ch)),
            Ordering::Greater,
            "blacklisted thread is demoted"
        );
        let v = view(&ch);
        assert!(s.priority_key(&young, &v) > s.priority_key(&old, &v), "key order matches compare");
    }

    #[test]
    fn events_are_emitted_only_while_observing() {
        let mut s = BlissScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let r = req(0, 0, 0, 5);
        for _ in 0..4 {
            s.on_command(&col_cmd(&r), &r, 0);
        }
        let mut out = Vec::new();
        s.drain_events(&mut out);
        assert!(out.is_empty(), "not observing: no events buffered");

        s.set_observing(true);
        let r2 = req(1, 1, 1, 5);
        for _ in 0..4 {
            s.on_command(&col_cmd(&r2), &r2, 42);
        }
        let mut q = vec![req(2, 0, 0, 1)];
        let late = SchedView { channel: &ch, now: 10_000 };
        s.pre_schedule(&mut q, &late);
        s.drain_events(&mut out);
        assert!(
            out.iter()
                .any(|e| matches!(e, Event::BlacklistSet { at: 42, thread: 1, consecutive: 4 })),
            "{out:?}"
        );
        assert!(
            out.iter().any(|e| matches!(e, Event::BlacklistCleared { cleared: 2, .. })),
            "{out:?}"
        );
    }
}
