//! ATLAS: the Adaptive per-Thread Least-Attained-Service memory scheduler
//! of Kim et al. (HPCA 2010) — long-term attained-service ranking over
//! scheduling quanta, optimizing system throughput by favoring threads the
//! memory system has served least.
//!
//! Time is divided into fixed quanta. During a quantum each thread
//! accumulates *attained service* — DRAM time spent on its commands. At
//! every quantum boundary the long-term totals are aged with an exponential
//! moving average (`total ← (1 − 1/8)·total + quantum_service`, the paper's
//! α = 0.875 as pure integer arithmetic) and threads are ranked ascending by
//! total: the least-served thread gets rank 0 and strict priority for the
//! whole next quantum. Within a rank level, row hits first, then oldest
//! first.

use std::cmp::Ordering;

use parbs_dram::{
    Command, CommandKind, FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy,
    MemoryScheduler, Request, SchedView, StarvationClaim, ThreadId, ThreadTable, TimingParams,
};
use parbs_obs::Event;

/// ATLAS's key: the inverted least-attained-service rank first (rank 0
/// packs largest), then row hits, then the inverted request id.
pub(crate) const ATLAS_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "ATLAS",
    fields: &[
        KeyField { name: "las_rank", semantic: FieldSemantic::Rank, lo: 65, width: 16 },
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
    ],
};

/// Widest representable rank — also the key value packed for rank 0 after
/// inversion.
const RANK_MAX: u64 = (1 << 16) - 1;

/// ATLAS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtlasConfig {
    /// Quantum length in cycles. The paper uses very long quanta (10M
    /// cycles); the default here is scaled down to this simulator's run
    /// lengths so rankings actually roll over within a run.
    pub quantum: u64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig { quantum: 10_000 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ThreadService {
    /// EWMA of per-quantum attained service (updated at quantum boundaries).
    total: u64,
    /// Attained service accumulated during the current quantum.
    in_quantum: u64,
    /// Rank assigned at the last recomputation (0 = least attained service).
    rank: u64,
}

/// The ATLAS scheduler.
///
/// Attained service accrues in [`MemoryScheduler::on_command`] (command
/// latencies attributed to the owning thread), but ranks only change at
/// quantum boundaries or when a new thread appears — both detected in
/// [`MemoryScheduler::pre_schedule`], which reports `true` exactly when the
/// rank assignment changed (the key-caching contract: quantum rollover is
/// time-based, so the controller cannot see it through arrival/bank events).
#[derive(Debug, Clone)]
pub struct AtlasScheduler {
    cfg: AtlasConfig,
    timing: TimingParams,
    /// Per-thread service state, sparse: only threads that have actually
    /// appeared (arrival, queue presence, or command) hold an entry, so the
    /// per-slot cost is O(active threads) however large the id space.
    threads: ThreadTable<ThreadService>,
    /// Scratch: sorted thread ids of the current queue, for the
    /// retire-on-idle sweep at quantum boundaries.
    queued_scratch: Vec<usize>,
    /// Cycle the current quantum started at.
    quantum_start: u64,
    /// 1-based count of completed quanta.
    quanta_rolled: u64,
    observing: bool,
    obs_events: Vec<Event>,
}

impl AtlasScheduler {
    /// Creates an ATLAS scheduler with the default (simulator-scaled)
    /// quantum.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(AtlasConfig::default())
    }

    /// Creates an ATLAS scheduler with an explicit quantum length.
    #[must_use]
    pub fn with_config(cfg: AtlasConfig) -> Self {
        AtlasScheduler {
            cfg,
            timing: TimingParams::ddr2_800(),
            threads: ThreadTable::new(),
            queued_scratch: Vec::new(),
            quantum_start: 0,
            quanta_rolled: 0,
            observing: false,
            obs_events: Vec::new(),
        }
    }

    /// The rank currently assigned to a thread (0 = highest priority;
    /// threads never seen rank below any seen thread only by id order).
    #[must_use]
    pub fn rank_of(&self, t: ThreadId) -> u64 {
        self.threads.get(t).map_or_else(|| (t.0 as u64).min(RANK_MAX), |s| s.rank)
    }

    /// The long-term attained-service total of a thread (for tests).
    #[must_use]
    pub fn attained_service(&self, t: ThreadId) -> u64 {
        self.threads.get(t).map_or(0, |s| s.total)
    }

    fn ensure_thread(&mut self, t: ThreadId) -> bool {
        if self.threads.contains(t) {
            return false;
        }
        self.threads.insert(t, ThreadService::default());
        true
    }

    fn command_latency(&self, kind: CommandKind) -> u64 {
        match kind {
            CommandKind::Activate => self.timing.t_rcd,
            CommandKind::Precharge => self.timing.t_rp,
            CommandKind::Read | CommandKind::Write => self.timing.t_cl + self.timing.t_burst,
            CommandKind::Refresh => self.timing.t_rfc,
        }
    }

    /// Re-ranks all registered threads ascending by `(total, thread id)`;
    /// returns whether any rank changed. O(registered log registered), run
    /// only at quantum boundaries and registrations — never per decision.
    fn recompute_ranks(&mut self) -> bool {
        let mut order: Vec<(u64, usize)> =
            self.threads.iter_active().map(|(t, s)| (s.total, t.0)).collect();
        order.sort_unstable();
        let mut changed = false;
        for (rank, &(_, id)) in order.iter().enumerate() {
            let rank = (rank as u64).min(RANK_MAX);
            let s = self.threads.get_mut(ThreadId(id)).expect("just iterated");
            if s.rank != rank {
                s.rank = rank;
                changed = true;
            }
        }
        changed
    }
}

impl Default for AtlasScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryScheduler for AtlasScheduler {
    fn name(&self) -> &str {
        "ATLAS"
    }

    fn on_arrival(&mut self, req: &Request, _now: u64) {
        self.ensure_thread(req.thread);
    }

    fn pre_schedule(&mut self, queue: &mut [Request], view: &SchedView<'_>) -> bool {
        let mut grew = false;
        for r in queue.iter() {
            grew |= self.ensure_thread(r.thread);
        }
        let mut changed = false;
        if view.now.saturating_sub(self.quantum_start) >= self.cfg.quantum {
            self.quantum_start = view.now;
            self.quanta_rolled += 1;
            self.threads.for_each_mut(|_, t| {
                // α = 0.875 EWMA in integer arithmetic.
                t.total = t.total - t.total / 8 + std::mem::take(&mut t.in_quantum);
            });
            // Retire-on-idle: a thread with no long-term service, nothing
            // accrued this quantum, and no queued request holds exactly the
            // default state, so dropping it is unobservable — it re-registers
            // with that same state if it ever returns. This keeps the table
            // bounded by the recently-active set under open-loop flows.
            let mut queued = std::mem::take(&mut self.queued_scratch);
            queued.clear();
            queued.extend(queue.iter().map(|r| r.thread.0));
            queued.sort_unstable();
            self.threads.retain(|t, s| {
                s.total > 0 || s.in_quantum > 0 || queued.binary_search(&t.0).is_ok()
            });
            self.queued_scratch = queued;
            changed = self.recompute_ranks();
            if self.observing {
                let mut ranking: Vec<(usize, u32, u64)> = self
                    .threads
                    .iter_active()
                    .map(|(t, s)| (t.0, u32::try_from(s.rank).unwrap_or(u32::MAX), s.total))
                    .collect();
                ranking.sort_by_key(|&(_, rank, _)| rank);
                self.obs_events.push(Event::QuantumRolled {
                    at: view.now,
                    quantum: self.quanta_rolled,
                    ranking,
                });
            }
        } else if grew {
            // A thread appeared mid-quantum: give it a rank now (zero
            // attained service ranks it ahead of every served thread).
            changed = self.recompute_ranks();
        }
        changed
    }

    fn on_command(&mut self, cmd: &Command, req: &Request, _now: u64) {
        let latency = self.command_latency(cmd.kind);
        self.threads.get_or_default(req.thread).in_quantum += latency;
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        let inv_rank = RANK_MAX - self.rank_of(req.thread).min(RANK_MAX);
        (u128::from(inv_rank) << 65)
            | (u128::from(view.is_row_hit(req)) << 64)
            | u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        let rank_a = self.rank_of(a.thread);
        let rank_b = self.rank_of(b.thread);
        let hit_a = view.is_row_hit(a);
        let hit_b = view.is_row_hit(b);
        rank_a.cmp(&rank_b).then(hit_b.cmp(&hit_a)).then(a.id.cmp(&b.id))
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&ATLAS_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // Least-attained-service ranking: a starved thread has the least
        // attained service by construction, so it holds the top rank until
        // serviced.
        Some(LivenessContract {
            scheduler: "ATLAS",
            policy: LivenessPolicy::LeastAttained { saturation: 3 },
            claim: StarvationClaim::Bounded,
        })
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.threads);
        w.u64(self.quantum_start);
        w.u64(self.quanta_rolled);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        self.threads = r.get()?;
        self.quantum_start = r.u64()?;
        self.quanta_rolled = r.u64()?;
        Ok(())
    }

    fn set_observing(&mut self, enabled: bool) {
        self.observing = enabled;
        if !enabled {
            self.obs_events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.obs_events);
    }

    fn debug_summary(&self) -> String {
        let ranks: Vec<String> = self
            .threads
            .iter_active()
            .map(|(t, s)| format!("t{}:r{} as={}", t.0, s.rank, s.total))
            .collect();
        format!("ATLAS: quantum {} [{}]", self.quanta_rolled, ranks.join(" "))
    }
}

impl parbs_snap::Snap for ThreadService {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.total);
        w.u64(self.in_quantum);
        w.u64(self.rank);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(ThreadService { total: r.u64()?, in_quantum: r.u64()?, rank: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{Channel, LineAddr, RequestKind};

    fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            0,
        )
    }

    fn col_cmd(r: &Request) -> Command {
        Command {
            kind: CommandKind::Read,
            rank: 0,
            bank: r.addr.bank,
            row: r.addr.row,
            col: 0,
            request: r.id,
        }
    }

    #[test]
    fn fresh_threads_rank_by_id() {
        let mut s = AtlasScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 1, 0, 1), req(1, 0, 1, 1)];
        assert!(s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 }));
        assert_eq!(s.rank_of(ThreadId(0)), 0);
        assert_eq!(s.rank_of(ThreadId(1)), 1);
    }

    #[test]
    fn served_thread_sinks_in_rank_at_the_quantum_boundary() {
        let mut s = AtlasScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
        // Only thread 0 gets serviced this quantum.
        let r = req(0, 0, 0, 1);
        for _ in 0..10 {
            s.on_command(&col_cmd(&r), &r, 100);
        }
        assert_eq!(s.rank_of(ThreadId(0)), 0, "ranks hold mid-quantum");
        let rolled = SchedView { channel: &ch, now: 10_000 };
        assert!(s.pre_schedule(&mut q, &rolled), "rank change is reported");
        assert_eq!(s.rank_of(ThreadId(0)), 1, "served thread loses priority");
        assert_eq!(s.rank_of(ThreadId(1)), 0, "starved thread is promoted");
        assert!(s.attained_service(ThreadId(0)) > 0);
    }

    #[test]
    fn ewma_ages_old_service() {
        let mut s = AtlasScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
        let r = req(0, 0, 0, 1);
        s.on_command(&col_cmd(&r), &r, 0);
        let first = {
            s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 10_000 });
            s.attained_service(ThreadId(0))
        };
        assert!(first > 0);
        // Two idle quanta: the total decays by 1/8 each rollover.
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 20_000 });
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 30_000 });
        let aged = s.attained_service(ThreadId(0));
        assert!(aged < first, "EWMA decays without new service: {aged} < {first}");
    }

    #[test]
    fn rank_dominates_row_hits_and_age() {
        let mut s = AtlasScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1), req(5, 1, 1, 1)];
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
        // Service thread 0 heavily, roll the quantum: thread 1 outranks it.
        let r = req(0, 0, 0, 1);
        for _ in 0..10 {
            s.on_command(&col_cmd(&r), &r, 100);
        }
        let rolled = SchedView { channel: &ch, now: 10_000 };
        s.pre_schedule(&mut q, &rolled);
        assert_eq!(
            s.compare(&q[1], &q[0], &rolled),
            Ordering::Less,
            "higher-ranked thread's younger request wins"
        );
        assert!(s.priority_key(&q[1], &rolled) > s.priority_key(&q[0], &rolled));
    }

    #[test]
    fn stable_ranks_do_not_report_changes() {
        let mut s = AtlasScheduler::new();
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
        assert!(
            !s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 100 }),
            "mid-quantum, same threads: keys are not stale"
        );
        assert!(
            !s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 10_000 }),
            "rollover with identical totals keeps the same ranks"
        );
    }

    #[test]
    fn quantum_rollover_emits_a_ranking_event_when_observing() {
        let mut s = AtlasScheduler::new();
        s.set_observing(true);
        let ch = Channel::new(4, TimingParams::ddr2_800());
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
        let r = req(0, 0, 0, 1);
        s.on_command(&col_cmd(&r), &r, 5);
        s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 10_000 });
        let mut out = Vec::new();
        s.drain_events(&mut out);
        let rolled = out
            .iter()
            .find_map(|e| match e {
                Event::QuantumRolled { at, quantum, ranking } => Some((at, quantum, ranking)),
                _ => None,
            })
            .expect("rollover event emitted");
        assert_eq!(*rolled.0, 10_000);
        assert_eq!(*rolled.1, 1);
        assert_eq!(rolled.2[0], (1, 0, 0), "starved thread 1 ranks first");
        assert_eq!(rolled.2[1].0, 0, "served thread 0 ranks last");
        assert!(rolled.2[1].2 > 0, "event carries the attained-service total");
    }
}
