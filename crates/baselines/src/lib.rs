//! The four baseline DRAM schedulers PAR-BS is evaluated against
//! (Mutlu & Moscibroda, ISCA 2008, §8):
//!
//! * **FCFS** — strict arrival order (re-exported from `parbs-dram`);
//! * **FR-FCFS** — first-ready, first-come-first-serve: row hits first, then
//!   oldest first (Rixner et al., Zuravleff & Robinson). Maximizes DRAM data
//!   throughput, but unfairly favors threads with high row-buffer locality
//!   and high memory intensity;
//! * **NFQ** — network-fair-queueing scheduler (Nesbit et al., MICRO 2006):
//!   earliest virtual-finish-time first (FQ-VFTF) with the priority-inversion
//!   prevention optimization;
//! * **STFM** — stall-time fair memory scheduler (Mutlu & Moscibroda,
//!   MICRO 2007): estimates per-thread slowdown online and switches to a
//!   fairness-oriented policy when estimated unfairness exceeds α.
//!
//! All implement [`parbs_dram::MemoryScheduler`]; none of them preserve
//! intra-thread bank-level parallelism, which is the gap PAR-BS fills.

mod frfcfs;
mod nfq;
mod stfm;

pub use frfcfs::FrFcfsScheduler;
pub use nfq::{NfqConfig, NfqScheduler, VirtualTimePolicy};
pub use parbs_dram::FcfsScheduler;
pub use stfm::{StfmConfig, StfmScheduler};
