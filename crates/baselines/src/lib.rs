//! The four baseline DRAM schedulers PAR-BS is evaluated against
//! (Mutlu & Moscibroda, ISCA 2008, §8):
//!
//! * **FCFS** — strict arrival order (re-exported from `parbs-dram`);
//! * **FR-FCFS** — first-ready, first-come-first-serve: row hits first, then
//!   oldest first (Rixner et al., Zuravleff & Robinson). Maximizes DRAM data
//!   throughput, but unfairly favors threads with high row-buffer locality
//!   and high memory intensity;
//! * **NFQ** — network-fair-queueing scheduler (Nesbit et al., MICRO 2006):
//!   earliest virtual-finish-time first (FQ-VFTF) with the priority-inversion
//!   prevention optimization;
//! * **STFM** — stall-time fair memory scheduler (Mutlu & Moscibroda,
//!   MICRO 2007): estimates per-thread slowdown online and switches to a
//!   fairness-oriented policy when estimated unfairness exceeds α.
//!
//! Plus two post-PAR-BS "scheduler zoo" members that bracket it from the
//! other side of history:
//!
//! * **BLISS** — the blacklisting scheduler (Subramanian et al., ICCD
//!   2014): demotes threads that get long streaks of consecutive service,
//!   clearing the blacklist periodically. Most of the fairness of ranking
//!   schemes at a fraction of the hardware cost;
//! * **ATLAS** — adaptive per-thread least-attained-service scheduling
//!   (Kim et al., HPCA 2010): ranks threads each quantum by long-term
//!   attained memory service, favoring the least-served.
//!
//! All implement [`parbs_dram::MemoryScheduler`]; none of the four paper
//! baselines preserve intra-thread bank-level parallelism, which is the gap
//! PAR-BS fills.

mod atlas;
mod bliss;
mod frfcfs;
mod nfq;
mod stfm;

pub use atlas::{AtlasConfig, AtlasScheduler};
pub use bliss::{BlissConfig, BlissScheduler};
pub use frfcfs::FrFcfsScheduler;
pub use nfq::{NfqConfig, NfqScheduler, VirtualTimePolicy};
pub use parbs_dram::FcfsScheduler;
pub use stfm::{StfmConfig, StfmScheduler};
