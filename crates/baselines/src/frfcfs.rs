//! FR-FCFS: the throughput-oriented industry-standard baseline.

use std::cmp::Ordering;

use parbs_dram::{
    FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy, MemoryScheduler, Request,
    SchedView, StarvationClaim,
};

/// First-Ready First-Come-First-Serve (Rixner et al., ISCA 2000; Zuravleff
/// & Robinson, US patent 5,630,096): among ready commands, prioritize (1) row-hit requests
/// over others and (2) older requests over younger ones.
///
/// For single-threaded systems FR-FCFS maximizes DRAM throughput; with
/// multiple threads it unfairly favors high-row-locality and
/// memory-intensive threads and can starve others for long periods
/// (Section 3 of the PAR-BS paper).
///
/// # Examples
///
/// ```
/// use parbs_baselines::FrFcfsScheduler;
/// use parbs_dram::{Controller, DramConfig};
///
/// let ctrl = Controller::new(DramConfig::default(), Box::new(FrFcfsScheduler::new()));
/// assert_eq!(ctrl.scheduler_name(), "FR-FCFS");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfsScheduler(());

impl FrFcfsScheduler {
    /// Creates an FR-FCFS scheduler.
    #[must_use]
    pub fn new() -> Self {
        FrFcfsScheduler(())
    }
}

/// FR-FCFS packs row-hit first (the "first-ready" criterion), then the
/// inverted request id (oldest first).
pub(crate) const FRFCFS_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "FR-FCFS",
    fields: &[
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
    ],
};

impl MemoryScheduler for FrFcfsScheduler {
    fn name(&self) -> &str {
        "FR-FCFS"
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        // Row hit in the high bit, then oldest-first via the inverted id.
        (u128::from(view.is_row_hit(req)) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        let hit_a = view.is_row_hit(a);
        let hit_b = view.is_row_hit(b);
        hit_b.cmp(&hit_a).then(a.id.cmp(&b.id))
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&FRFCFS_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // The textbook starvation case (Section 3): a stream of row hits
        // outranks an older row-conflict request indefinitely, so FR-FCFS
        // honestly claims unbounded starvation and the model checker must
        // find the hammering lasso.
        Some(LivenessContract {
            scheduler: "FR-FCFS",
            policy: LivenessPolicy::FrFcfs,
            claim: StarvationClaim::Unbounded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{
        Channel, Command, CommandKind, LineAddr, RequestId, RequestKind, ThreadId, TimingParams,
    };

    fn req(id: u64, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(0),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            0,
        )
    }

    #[test]
    fn row_hits_beat_older_conflicts() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        ch.issue(
            &Command {
                kind: CommandKind::Activate,
                rank: 0,
                bank: 0,
                row: 5,
                col: 0,
                request: RequestId(9),
            },
            ThreadId(0),
            0,
        );
        let view = SchedView { channel: &ch, now: 100 };
        let s = FrFcfsScheduler::new();
        let old_conflict = req(1, 0, 6);
        let young_hit = req(2, 0, 5);
        assert_eq!(s.compare(&young_hit, &old_conflict, &view), Ordering::Less);
    }

    #[test]
    fn age_breaks_ties_between_equal_hit_status() {
        let ch = Channel::new(8, TimingParams::ddr2_800());
        let view = SchedView { channel: &ch, now: 0 };
        let s = FrFcfsScheduler::new();
        let a = req(1, 0, 5);
        let b = req(2, 1, 5);
        assert_eq!(s.compare(&a, &b, &view), Ordering::Less);
        assert_eq!(s.compare(&b, &a, &view), Ordering::Greater);
    }
}
