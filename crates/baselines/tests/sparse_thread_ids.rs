//! The baseline schedulers must tolerate sparse thread ids — the open-loop
//! flow frontend hands them ids like 40_000 with only a handful of threads
//! actually active, and per-decision cost/state has to track the *active*
//! set, not the largest id ever seen.

use parbs_baselines::{AtlasScheduler, BlissConfig, BlissScheduler, NfqScheduler, StfmScheduler};
use parbs_dram::{
    Channel, Command, CommandKind, LineAddr, MemoryScheduler, Request, RequestKind, SchedView,
    ThreadId, TimingParams,
};

/// Threads far apart in id space but all genuinely active.
const SPARSE_THREADS: [usize; 3] = [0, 7, 40_000];

fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
    Request::new(
        id,
        ThreadId(thread),
        LineAddr { channel: 0, bank, row, col: 0 },
        RequestKind::Read,
        0,
    )
}

fn column_cmd(r: &Request) -> Command {
    Command {
        kind: CommandKind::Read,
        rank: 0,
        bank: r.addr.bank,
        row: r.addr.row,
        col: r.addr.col,
        request: r.id,
    }
}

#[test]
fn atlas_ranks_sparse_threads_by_attained_service() {
    let mut s = AtlasScheduler::new();
    let ch = Channel::new(8, TimingParams::ddr2_800());
    let mut q: Vec<Request> =
        SPARSE_THREADS.iter().enumerate().map(|(i, &t)| req(i as u64, t, i, 1)).collect();
    s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
    // Service thread 40_000 heavily during the quantum.
    for _ in 0..20 {
        s.on_command(&column_cmd(&q[2]), &q[2], 0);
    }
    // Quantum rollover re-ranks: the heavily served thread drops to the
    // bottom, the untouched sparse ids rank by id among themselves.
    s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 1_000_000 });
    let r0 = s.rank_of(ThreadId(0));
    let r7 = s.rank_of(ThreadId(7));
    let r_big = s.rank_of(ThreadId(40_000));
    assert!(r0 < r_big && r7 < r_big, "least-attained-service first: {r0},{r7} vs {r_big}");
    // A never-seen id between the active ones stays unregistered.
    assert_eq!(s.attained_service(ThreadId(39_999)), 0);
}

#[test]
fn bliss_blacklists_and_clears_sparse_ids() {
    let mut s =
        BlissScheduler::with_config(BlissConfig { blacklist_threshold: 4, clear_interval: 10_000 });
    let ch = Channel::new(8, TimingParams::ddr2_800());
    let r = req(0, 40_000, 0, 1);
    for _ in 0..4 {
        s.on_command(&column_cmd(&r), &r, 0);
    }
    assert!(s.is_blacklisted(ThreadId(40_000)));
    assert!(!s.is_blacklisted(ThreadId(39_999)), "neighbors of a sparse id stay clean");
    assert_eq!(s.blacklist_len(), 1, "blacklist size tracks offenders, not the id space");
    // The periodic clear retires the single entry.
    let mut q = vec![r];
    assert!(s.pre_schedule(&mut q, &SchedView { channel: &ch, now: 20_000 }));
    assert!(!s.is_blacklisted(ThreadId(40_000)));
    assert_eq!(s.blacklist_len(), 0);
}

#[test]
fn nfq_weights_sparse_ids_without_dense_growth() {
    let mut s = NfqScheduler::new();
    s.set_thread_weight(ThreadId(40_000), 8.0);
    let fast = req(0, 40_000, 0, 1);
    let slow = req(1, 7, 1, 1);
    s.on_arrival(&fast, 0);
    s.on_arrival(&slow, 0);
    assert!(
        s.deadline_of(fast.id).unwrap() < s.deadline_of(slow.id).unwrap(),
        "the weighted sparse thread earns the earlier virtual deadline"
    );
}

#[test]
fn stfm_fairness_mode_targets_a_sparse_thread() {
    let mut s = StfmScheduler::new();
    let ch = Channel::new(8, TimingParams::ddr2_800());
    // Stall reports arrive as a dense slice from the cores; the sparse
    // victim's slowdown is injected via interference accounting instead.
    let mut stalls = vec![0u64; 8];
    stalls[7] = 1_000;
    s.on_stall_cycles(&stalls, 0);
    s.set_thread_weight(ThreadId(40_000), 1.0);
    let mut q = vec![req(0, 7, 0, 1), req(1, 40_000, 1, 1)];
    let view = SchedView { channel: &ch, now: 0 };
    s.pre_schedule(&mut q, &view);
    // Thread 40_000 is repeatedly delayed by thread 7's bank-1 traffic...
    let aggressor = req(2, 7, 1, 9);
    for _ in 0..5_000 {
        s.on_command(&column_cmd(&aggressor), &aggressor, 0);
    }
    // ...and reports stall time through the (sparse-index) position in a
    // long dense slice, most of it attributed to interference.
    let mut stalls = vec![0u64; 40_001];
    stalls[40_000] = 5_000;
    s.on_stall_cycles(&stalls, 0);
    s.pre_schedule(&mut q, &view);
    assert_eq!(s.fairness_mode_thread(), Some(ThreadId(40_000)));
    assert!(s.slowdown_estimate(ThreadId(40_000)) > s.slowdown_estimate(ThreadId(7)));
    assert!(
        (s.slowdown_estimate(ThreadId(39_999)) - 1.0).abs() < 1e-12,
        "untouched neighbor id carries no state"
    );
}

#[test]
fn per_thread_accessors_reconstruct_dense_views() {
    let mut atlas = AtlasScheduler::new();
    let ch = Channel::new(8, TimingParams::ddr2_800());
    let mut q = vec![req(0, 2, 0, 1)];
    atlas.pre_schedule(&mut q, &SchedView { channel: &ch, now: 0 });
    atlas.on_command(&column_cmd(&q[0]), &q[0], 0);
    // Long-term totals fold in the current quantum's service at rollover.
    atlas.pre_schedule(&mut q, &SchedView { channel: &ch, now: 1_000_000 });
    let totals: Vec<u64> = (0..4).map(|t| atlas.attained_service(ThreadId(t))).collect();
    assert_eq!(totals.len(), 4);
    assert!(totals[2] > 0 && totals[3] == 0);

    let mut bliss = BlissScheduler::new();
    let r = req(0, 1, 0, 1);
    for _ in 0..4 {
        bliss.on_command(&column_cmd(&r), &r, 0);
    }
    let blacklist: Vec<bool> = (0..3).map(|t| bliss.is_blacklisted(ThreadId(t))).collect();
    assert_eq!(blacklist, vec![false, true, false]);

    let mut nfq = NfqScheduler::new();
    nfq.set_thread_weight(ThreadId(1), 4.0);
    let weights: Vec<f64> = (0..3).map(|t| nfq.thread_weight(ThreadId(t))).collect();
    assert_eq!(weights, vec![1.0, 4.0, 1.0]);

    let stfm = StfmScheduler::new();
    let slowdowns: Vec<f64> = (0..2).map(|t| stfm.slowdown_estimate(ThreadId(t))).collect();
    assert_eq!(slowdowns, vec![1.0, 1.0]);
}
