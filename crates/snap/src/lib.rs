//! Binary snapshot codec for simulator checkpointing.
//!
//! The build environment has no crates.io access, so instead of serde this
//! crate provides a small, explicit little-endian codec: a [`SnapWriter`]
//! appends primitive values to a byte buffer, a [`SnapReader`] consumes them
//! back in the same order, and the [`Snap`] trait ties the two together for
//! composite values (`Option`, `Vec`, tuples, fixed arrays). Every decode
//! error is a typed [`SnapError`] — truncated input, an impossible tag, an
//! unsupported state — never a panic, so malformed checkpoint files are
//! rejected cleanly at the CLI layer.
//!
//! Layout rules (the "wire format"):
//!
//! * all integers are **little-endian**, `usize` travels as `u64`;
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so round-trips
//!   are exact for every value including NaNs and negative zero;
//! * `bool` is one byte, `0` or `1` (anything else is a [`SnapError::BadTag`]);
//! * `Option<T>` is a one-byte presence tag followed by the payload;
//! * sequences are a `u64` length followed by the elements;
//! * maps are serialized by the *caller* in ascending key order, so the byte
//!   stream is deterministic regardless of hash-map iteration order.

#![forbid(unsafe_code)]

use std::fmt;

/// Decoding (and occasionally encoding) failure, with enough context to
/// produce an actionable CLI error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a value could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// A tag byte (bool, enum discriminant, presence marker) held a value
    /// outside its legal set.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// A decoded length or index is inconsistent with the restoring
    /// structure (e.g. a checkpoint for a different core count).
    Mismatch {
        /// What was being restored.
        what: &'static str,
        /// The value the structure expected.
        expected: u64,
        /// The value found in the snapshot.
        found: u64,
    },
    /// The state cannot be snapshotted or restored in its current
    /// configuration (e.g. an observability sink is attached).
    Unsupported(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {remaining} left")
            }
            SnapError::BadTag { what, value } => {
                write!(f, "snapshot corrupt: invalid {what} tag {value}")
            }
            SnapError::Mismatch { what, expected, found } => {
                write!(f, "snapshot mismatch: {what} expected {expected}, found {found}")
            }
            SnapError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Appends snapshot values to a growable byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one tag byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends any [`Snap`] value.
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.save(self);
    }

    /// Appends a sequence length (callers then append the elements).
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Consumes snapshot values from a byte slice, tracking the read position.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — the final integrity
    /// check after restoring a snapshot.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Mismatch {
                what: "trailing bytes",
                expected: 0,
                found: self.remaining() as u64,
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::BadTag { what: "usize", value: v })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` tag byte.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapError::BadTag { what: "bool", value: u64::from(v) }),
        }
    }

    /// Reads any [`Snap`] value.
    pub fn get<T: Snap>(&mut self) -> Result<T, SnapError> {
        T::load(self)
    }

    /// Reads a sequence length, sanity-capped so a corrupt length cannot
    /// trigger a huge allocation: each element needs at least one byte, so
    /// a length exceeding the remaining input is provably corrupt.
    pub fn seq(&mut self) -> Result<usize, SnapError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(SnapError::Truncated { needed: len, remaining: self.remaining() });
        }
        Ok(len)
    }
}

/// Values with a canonical snapshot encoding.
pub trait Snap: Sized {
    /// Appends this value to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Reads a value of this type from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the input is truncated or holds an
    /// invalid encoding.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! impl_snap_prim {
    ($($t:ident),*) => {$(
        impl Snap for $t {
            fn save(&self, w: &mut SnapWriter) {
                w.$t(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$t()
            }
        }
    )*};
}
impl_snap_prim!(u8, u32, u64, u128, usize, f64, bool);

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        if r.bool()? {
            Ok(Some(T::load(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.seq(self.len());
        for v in self {
            v.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.seq()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for std::collections::VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.seq(self.len());
        for v in self {
            v.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.seq()?;
        let mut out = std::collections::VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Snap + Default + Copy, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::load(r)?;
        }
        Ok(out)
    }
}

impl Snap for () {
    fn save(&self, _w: &mut SnapWriter) {}
    fn load(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

/// Incremental 64-bit FNV-1a hasher for config fingerprints: cheap, stable
/// across platforms and runs, and entirely dependency-free. Not
/// collision-resistant — it detects *accidental* mismatches (resuming a
/// checkpoint under a different configuration), not adversarial ones.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds bytes into the fingerprint.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a string into the fingerprint.
    pub fn update_str(&mut self, s: &str) {
        self.update(s.as_bytes());
    }

    /// The current 64-bit digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.u128(1 << 100);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn composites_round_trip() {
        let v: Vec<Option<(u64, f64)>> = vec![None, Some((3, 1.5)), Some((u64::MAX, -2.0))];
        let arr: [u64; 4] = [1, 2, 3, 4];
        let mut w = SnapWriter::new();
        w.put(&v);
        w.put(&arr);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get::<Vec<Option<(u64, f64)>>>().unwrap(), v);
        assert_eq!(r.get::<[u64; 4]>().unwrap(), arr);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut w = SnapWriter::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(SnapError::Truncated { needed: 8, remaining: 4 }));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let bytes = [2u8];
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.bool(), Err(SnapError::BadTag { what: "bool", value: 2 }));
    }

    #[test]
    fn corrupt_length_cannot_demand_huge_allocation() {
        let mut w = SnapWriter::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get::<Vec<u8>>(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = r.u8().unwrap();
        assert!(matches!(r.expect_end(), Err(SnapError::Mismatch { .. })));
    }

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        let mut a = Fingerprint::new();
        a.update_str("parbs");
        let mut b = Fingerprint::new();
        b.update_str("parbs");
        assert_eq!(a.digest(), b.digest());
        let mut c = Fingerprint::new();
        c.update_str("sbrap");
        assert_ne!(a.digest(), c.digest());
    }
}
