//! Criterion microbenchmarks: per-component costs of the simulator and the
//! scheduling policies. The paper argues PAR-BS is *simple to implement*
//! (priority comparisons, no division); `scheduler_decision` quantifies the
//! software-model analogue: the cost of one controller scheduling slot per
//! policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parbs::{AbstractBatch, AbstractPolicy, ParBsConfig, ParBsScheduler};
use parbs_cpu::InstructionStream;
use parbs_dram::{AddressMapper, Controller, DramConfig, LineAddr, Request, RequestKind, ThreadId};
use parbs_sim::{SchedulerKind, SimConfig, System};
use parbs_workloads::{by_name, case_study_1, StreamGeometry, SyntheticStream};

/// A controller preloaded with `n` requests spread over threads and banks.
fn loaded_controller(kind: &SchedulerKind, n: u64) -> Controller {
    let cfg = SimConfig::for_cores(4);
    let mut ctrl = Controller::new(DramConfig::default(), kind.build(&cfg));
    for i in 0..n {
        let addr = LineAddr { channel: 0, bank: (i % 8) as usize, row: (i * 7 % 13), col: i % 32 };
        ctrl.try_enqueue(Request::new(i, ThreadId((i % 4) as usize), addr, RequestKind::Read, 0))
            .unwrap();
    }
    ctrl
}

fn scheduler_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_decision_64req");
    for kind in SchedulerKind::paper_five() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, kind| {
            b.iter_batched(
                || loaded_controller(kind, 64),
                |mut ctrl| {
                    let mut out = Vec::new();
                    // 16 DRAM-cycle decision slots.
                    for now in (0..160).step_by(10) {
                        ctrl.tick(now, &mut out);
                    }
                    black_box(out.len())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The tentpole comparison: one scheduling decision over an n-entry queue
/// via the retired full-queue comparator sort vs. a single-pass scan of
/// cached priority keys, for every shipped policy at 32/64/128 entries.
fn sched_hotpath(c: &mut Criterion) {
    use parbs_bench::hotpath;
    use parbs_dram::SchedView;
    for n in [32u64, 64, 128] {
        let mut group = c.benchmark_group(format!("sched_hotpath_{n}req"));
        for kind in hotpath::all_schedulers() {
            let (sched, queue, channel) = hotpath::warmed(&kind, n);
            let view = SchedView { channel: &channel, now: 100 };
            group.bench_function(BenchmarkId::new("sort", kind.name()), |b| {
                b.iter(|| black_box(hotpath::decide_by_sort(&*sched, &queue, &view)));
            });
            let mut keys = Vec::new();
            hotpath::compute_keys(&*sched, &queue, &view, &mut keys);
            group.bench_function(BenchmarkId::new("keyed", kind.name()), |b| {
                b.iter(|| black_box(hotpath::decide_by_key_scan(black_box(&keys))));
            });
            group.bench_function(BenchmarkId::new("key_refresh", kind.name()), |b| {
                b.iter(|| {
                    hotpath::compute_keys(&*sched, &queue, &view, &mut keys);
                    black_box(keys.len())
                });
            });
        }
        group.finish();
    }
}

fn batch_formation(c: &mut Criterion) {
    use parbs_dram::{Channel, MemoryScheduler, SchedView, TimingParams};
    c.bench_function("parbs_batch_formation_128req", |b| {
        let channel = Channel::new(8, TimingParams::ddr2_800());
        b.iter_batched(
            || {
                let sched = ParBsScheduler::new(ParBsConfig::default());
                let queue: Vec<Request> = (0..128)
                    .map(|i| {
                        Request::new(
                            i,
                            ThreadId((i % 8) as usize),
                            LineAddr { channel: 0, bank: (i % 8) as usize, row: i / 8, col: 0 },
                            RequestKind::Read,
                            0,
                        )
                    })
                    .collect();
                (sched, queue)
            },
            |(mut sched, mut queue)| {
                let view = SchedView { channel: &channel, now: 0 };
                sched.pre_schedule(&mut queue, &view);
                black_box(queue.iter().filter(|r| r.marked).count())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn abstract_fig3(c: &mut Criterion) {
    let batch = AbstractBatch::figure3_example();
    c.bench_function("abstract_fig3_parbs", |b| {
        b.iter(|| black_box(batch.completion_times(AbstractPolicy::ParBs)));
    });
}

fn address_mapping(c: &mut Criterion) {
    let mapper = AddressMapper::canonical(4, 8, 32).unwrap();
    c.bench_function("address_decode_encode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for line in 0..1_000u64 {
                acc ^= mapper.encode(mapper.decode(black_box(line * 97)));
            }
            black_box(acc)
        });
    });
}

fn stream_generation(c: &mut Criterion) {
    c.bench_function("synthetic_stream_10k_instrs", |b| {
        b.iter_batched(
            || {
                SyntheticStream::new(
                    by_name("mcf").unwrap(),
                    StreamGeometry::baseline_4core(),
                    7,
                    0,
                )
            },
            |mut s| {
                let mut loads = 0u32;
                for _ in 0..10_000 {
                    if !matches!(s.next_instr(), parbs_cpu::Instr::Compute) {
                        loads += 1;
                    }
                }
                black_box(loads)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_cs1_1k_instr");
    group.sample_size(10);
    for kind in [SchedulerKind::FrFcfs, SchedulerKind::ParBs(ParBsConfig::default())] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, kind| {
            b.iter(|| {
                let cfg = SimConfig { target_instructions: 1_000, ..SimConfig::for_cores(4) };
                let mix = case_study_1();
                let streams: Vec<Box<dyn InstructionStream>> = mix
                    .benchmarks
                    .iter()
                    .enumerate()
                    .map(|(i, bench)| {
                        Box::new(SyntheticStream::new(bench, cfg.geometry(), cfg.seed, i as u64))
                            as Box<dyn InstructionStream>
                    })
                    .collect();
                let mut sys = System::new(cfg, streams, kind);
                black_box(sys.run().cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    scheduler_decision,
    sched_hotpath,
    batch_formation,
    abstract_fig3,
    address_mapping,
    stream_generation,
    end_to_end
);
criterion_main!(benches);
