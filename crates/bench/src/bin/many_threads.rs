//! Scaling benchmark for the sparse per-thread state (`ThreadTable`)
//! migration: the cost of one steady-state scheduling decision as the
//! **registered requester population** grows 16 → 1 000 → 10 000 while the
//! live working set stays capped (≤ 1 024 threads with real per-thread
//! state, 128-entry decision queue).
//!
//! With the old dense `Vec`-per-thread state this curve was linear in the
//! largest thread id; with `ThreadTable` it must be flat. The trailing
//! assert gates exactly that: the worst per-scheduler ratio of
//! 10k-population decision cost to 16-population decision cost stays
//! within 2x. Emits `BENCH_many_threads.json` in the working directory.
//!
//! Run with: `cargo run --release -p parbs-bench --bin many_threads`
//! (`--quick` shrinks the sample count for CI).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use parbs_bench::hotpath;
use parbs_dram::SchedView;

/// Registered-population scales: the baseline and the two sparse extremes.
const POPULATIONS: [usize; 3] = [16, 1_000, 10_000];
/// Cap on threads carrying live scheduler state at any population.
const ACTIVE_CAP: usize = 1_024;
/// Decision-queue length for every measurement.
const QUEUE_LEN: u64 = 128;

/// Median nanoseconds per call of `f`, over `samples` samples of `iters`
/// timed iterations each.
fn median_ns(samples: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[per_call.len() / 2]
}

struct Row {
    scheduler: &'static str,
    population: usize,
    active: usize,
    decision_ns: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, iters) = if quick { (15, 100) } else { (50, 1_000) };
    let mut rows: Vec<Row> = Vec::new();
    for kind in hotpath::all_schedulers() {
        for population in POPULATIONS {
            let active = population.min(ACTIVE_CAP);
            let (mut sched, mut q, channel) =
                hotpath::warmed_sparse(&kind, QUEUE_LEN, population, active);
            let view = SchedView { channel: &channel, now: 100 };
            let mut keys = Vec::new();
            // One steady-state decision slot: the event-driven
            // `pre_schedule` pass, a full key refresh, and the max-scan.
            let decision_ns = median_ns(samples, iters, || {
                sched.pre_schedule(black_box(&mut q), &view);
                hotpath::compute_keys(&*sched, &q, &view, &mut keys);
                black_box(hotpath::decide_by_key_scan(&keys));
            });
            println!(
                "{:8} population={population:<6} active={active:<5} decision {decision_ns:>9.1} ns",
                kind.name()
            );
            rows.push(Row { scheduler: kind.name(), population, active, decision_ns });
        }
    }

    let mut json = String::from(
        "{\n  \"benchmark\": \"many_threads\",\n  \"unit\": \"ns_per_decision\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheduler\": \"{}\", \"population\": {}, \"active\": {}, \
             \"decision_ns\": {:.1}}}{}",
            r.scheduler,
            r.population,
            r.active,
            r.decision_ns,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    // Per scheduler: decision cost at the 10k population relative to the
    // 16-thread baseline. Flat (≈1.0) is the sparse-state promise.
    let mut worst_ratio = 0.0f64;
    let mut worst_name = "";
    for kind in hotpath::all_schedulers() {
        let at = |pop: usize| {
            rows.iter()
                .find(|r| r.scheduler == kind.name() && r.population == pop)
                .map(|r| r.decision_ns)
                .expect("row exists")
        };
        let ratio = at(10_000) / at(16);
        if ratio > worst_ratio {
            worst_ratio = ratio;
            worst_name = kind.name();
        }
    }
    let _ = write!(json, "  ],\n  \"worst_ratio_10k_vs_16\": {worst_ratio:.2}\n}}\n");
    std::fs::write("BENCH_many_threads.json", &json).expect("write BENCH_many_threads.json");
    println!(
        "\nwrote BENCH_many_threads.json (worst 10k/16 decision-cost ratio {worst_ratio:.2}x, \
         {worst_name})"
    );
    assert!(
        worst_ratio <= 2.0,
        "sparse-state regression: {worst_name}'s decision cost at a 10k-requester population \
         is {worst_ratio:.2}x its 16-thread baseline (must stay within 2x)"
    );
}
