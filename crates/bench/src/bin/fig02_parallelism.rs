//! Figure 2: a conventional (parallelism-unaware) scheduler serializes each
//! thread's concurrent requests (both cores stall ~2 bank latencies); a
//! parallelism-aware schedule lets one core stall only once (~1.5 average).

fn main() {
    let (conv, parbs) = parbs_sim::experiments::micro::fig2_stall_times();
    let avg = |s: [u64; 2]| (s[0] + s[1]) as f64 / 2.0;
    println!("## Figure 2 — parallelism-aware vs conventional scheduling (2 cores, 2 banks)");
    println!("stall time until a core's last request completes (cycles):");
    println!(
        "  conventional (FCFS):      core0 {:>5}  core1 {:>5}  avg {:>7.1}",
        conv[0],
        conv[1],
        avg(conv)
    );
    println!(
        "  parallelism-aware (PAR-BS): core0 {:>3}  core1 {:>5}  avg {:>7.1}",
        parbs[0],
        parbs[1],
        avg(parbs)
    );
    println!("  saved cycles: {:.1}% of average stall", 100.0 * (1.0 - avg(parbs) / avg(conv)));
}
