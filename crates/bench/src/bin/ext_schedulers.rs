//! Extension: the paper's five schedulers plus STFQ (start-time fair
//! queueing, Rafique et al. — §9 related work) and PAR-BS with the adaptive
//! Marking-Cap the paper proposes as future work (§8.3.1).

use parbs::{AdaptiveCap, ParBsConfig};
use parbs_bench::{print_summaries, Scale};
use parbs_sim::experiments::sweep_plan;
use parbs_sim::{EvalOverrides, SchedulerKind};
use parbs_workloads::random_mixes;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let mut kinds = parbs_sim::experiments::paper_five_labeled();
    kinds.insert(3, ("STFQ".to_owned(), SchedulerKind::Stfq));
    kinds.push((
        "PAR-BS(adaptive)".to_owned(),
        SchedulerKind::ParBs(ParBsConfig {
            adaptive_cap: Some(AdaptiveCap::default()),
            ..ParBsConfig::default()
        }),
    ));
    let rows = sweep_plan(&mixes, &kinds).run(&harness, scale.jobs);
    print_summaries("Extension — seven schedulers, 4-core averages", &rows);
    println!(
        "note: with equal shares STFQ's start tags are NFQ's finish tags shifted by one\n\
         quantum per thread, so the two produce identical schedules; they diverge under\n\
         unequal shares:"
    );
    // Weighted demonstration: 4 x lbm with shares 8-1-1-1.
    let mix = parbs_workloads::MixSpec::from_names("lbm-w8111", &["lbm", "lbm", "lbm", "lbm"]);
    println!("\n4 x lbm with shares 8-1-1-1 (slowdowns per thread):");
    let shares = EvalOverrides::weighted(vec![8.0, 1.0, 1.0, 1.0]);
    for kind in [SchedulerKind::Nfq, SchedulerKind::Stfq] {
        let e = harness.evaluate_mix_with(&mix, &kind, &shares);
        println!(
            "  {:5} {:?}",
            e.scheduler,
            e.metrics.slowdowns.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }
}
