//! Table 1: additional hardware state required by PAR-BS beyond FR-FCFS.

fn main() {
    println!("## Table 1 — PAR-BS hardware cost (bits beyond FR-FCFS)");
    println!(
        "{:>6} {:>8} {:>6} | {:>11} {:>16} {:>10} {:>10} {:>8}",
        "cores",
        "buffer",
        "banks",
        "per-request",
        "per-thread-bank",
        "per-thread",
        "individual",
        "total"
    );
    for (threads, buffer, banks) in [(4u64, 128u64, 8u64), (8, 128, 8), (16, 128, 8), (8, 256, 16)]
    {
        let c = parbs::parbs_extra_state_bits(threads, buffer, banks);
        println!(
            "{threads:>6} {buffer:>8} {banks:>6} | {:>11} {:>16} {:>10} {:>10} {:>8}",
            c.per_request_bits,
            c.per_thread_per_bank_bits,
            c.per_thread_bits,
            c.individual_bits,
            c.total()
        );
    }
    println!("\npaper's example (8 cores, 128-entry buffer, 8 banks): 1412 bits");
}
