//! Snapshot benchmark of the execution backends: one fixed batch of
//! independent systems run to completion under [`Scalar`], [`Lanes<2>`] and
//! [`Lanes<4>`] on a single worker thread, wall clocks compared, outputs
//! asserted byte-identical. Emits `BENCH_lane_sweep.json` in the working
//! directory.
//!
//! Run with: `cargo run --release -p parbs-bench --bin lane_sweep`
//! (`--quick` shrinks the per-thread instruction target for CI).
//!
//! The lane kernel interleaves N systems cycle by cycle, so its win comes
//! from overlapping per-system stalls, not SIMD; on hosts where the
//! interleaved working set falls out of cache the honest (possibly <1x)
//! numbers are recorded rather than asserted, as with the other
//! snapshot benchmarks.

use std::fmt::Write as _;
use std::time::Instant;

use parbs_cpu::InstructionStream;
use parbs_sim::{ExecBackend, Lanes, RunResult, Scalar, SchedulerKind, SimConfig, System};
use parbs_workloads::{random_mixes, MixSpec};

/// Builds the benchmark batch: `copies` independent 4-core systems cycling
/// through a fixed set of random mixes, all sharing one DRAM shape (the
/// lane-batchable case).
fn batch(mixes: &[MixSpec], kind: &SchedulerKind, target: u64, copies: usize) -> Vec<System> {
    (0..copies)
        .map(|i| {
            let mix = &mixes[i % mixes.len()];
            let cfg =
                SimConfig { target_instructions: target, ..SimConfig::for_cores(mix.cores()) };
            let streams: Vec<Box<dyn InstructionStream>> = mix
                .benchmarks
                .iter()
                .enumerate()
                .map(|(core, b)| {
                    Box::new(parbs_workloads::SyntheticStream::new(
                        b,
                        cfg.geometry(),
                        cfg.seed,
                        core as u64,
                    )) as Box<dyn InstructionStream>
                })
                .collect();
            System::new(cfg, streams, kind)
        })
        .collect()
}

struct Timed {
    backend: &'static str,
    wall_ms: f64,
    rows_per_s: f64,
    results: Vec<RunResult>,
}

fn timed(
    name: &'static str,
    backend: &dyn ExecBackend,
    mixes: &[MixSpec],
    kind: &SchedulerKind,
    target: u64,
    copies: usize,
) -> Timed {
    let systems = batch(mixes, kind, target, copies);
    let start = Instant::now();
    let results = backend.run_batch(systems);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    Timed { backend: name, wall_ms, rows_per_s: copies as f64 / (wall_ms / 1_000.0), results }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick { 4_000 } else { 30_000 };
    let copies = 12;
    let mixes = random_mixes(4, 4, 42);
    let kinds = [
        SchedulerKind::FrFcfs,
        SchedulerKind::ParBs(Default::default()),
        SchedulerKind::Atlas(Default::default()),
    ];

    let mut json =
        String::from("{\n  \"benchmark\": \"lane_sweep\",\n  \"unit\": \"rows_per_s\",\n");
    let _ = write!(
        json,
        "  \"batch\": \"{copies} systems, 4 mixes cycled (random_mixes(4, 4, 42), \
         target {target})\",\n  \"jobs\": 1,\n  \"rows\": [\n"
    );
    let mut worst_lanes4_speedup = f64::INFINITY;
    for (ki, kind) in kinds.iter().enumerate() {
        let scalar = timed("scalar", &Scalar, &mixes, kind, target, copies);
        let lanes2 = timed("lanes2", &Lanes::<2>, &mixes, kind, target, copies);
        let lanes4 = timed("lanes4", &Lanes::<4>, &mixes, kind, target, copies);
        for t in [&lanes2, &lanes4] {
            assert_eq!(scalar.results, t.results, "{} diverged from scalar", t.backend);
        }
        let s2 = scalar.wall_ms / lanes2.wall_ms;
        let s4 = scalar.wall_ms / lanes4.wall_ms;
        worst_lanes4_speedup = worst_lanes4_speedup.min(s4);
        for (i, (t, sp)) in [(&scalar, 1.0), (&lanes2, s2), (&lanes4, s4)].into_iter().enumerate() {
            println!(
                "{:8} {:7}: {:>8.1} ms, {:>7.2} rows/s, {:.2}x",
                kind.name(),
                t.backend,
                t.wall_ms,
                t.rows_per_s,
                sp
            );
            let last = ki + 1 == kinds.len() && i == 2;
            let _ = write!(
                json,
                "    {{\"scheduler\": \"{}\", \"backend\": \"{}\", \"wall_ms\": {:.1}, \
                 \"rows_per_s\": {:.2}, \"speedup\": {:.2}}}{}",
                kind.name(),
                t.backend,
                t.wall_ms,
                t.rows_per_s,
                sp,
                if last { "\n" } else { ",\n" }
            );
        }
    }
    let target_met = worst_lanes4_speedup >= 1.5;
    let _ = write!(
        json,
        "  ],\n  \"identical_output\": true,\n  \"worst_lanes4_speedup\": {worst_lanes4_speedup:.2},\n  \
         \"lanes4_target\": 1.5,\n  \"lanes4_target_met\": {target_met}\n}}\n"
    );
    std::fs::write("BENCH_lane_sweep.json", &json).expect("write BENCH_lane_sweep.json");
    println!("wrote BENCH_lane_sweep.json (worst Lanes<4> speedup {worst_lanes4_speedup:.2}x)");
    if !target_met {
        println!(
            "note: Lanes<4> below the 1.5x target on this host — recorded honestly; \
             the byte-identity assertions above did run"
        );
    }
}
