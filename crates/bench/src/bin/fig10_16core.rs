//! Figure 10: 16-core system — five sample workloads plus the geometric
//! mean over the random 16-core workload suite.

use parbs_bench::{print_summaries, print_unfairness_by_workload, Scale};
use parbs_sim::experiments::{paper_five_labeled, sweep_plan};
use parbs_workloads::{fig10_named, random_mixes};

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(16);
    let mut mixes = fig10_named();
    mixes.extend(random_mixes(16, scale.mixes16, scale.seed));
    let rows = sweep_plan(&mixes, &paper_five_labeled()).run(&harness, scale.jobs);
    print_unfairness_by_workload(
        "Figure 10 (left) — unfairness, named + random 16-core workloads",
        &rows,
        5,
    );
    print_summaries("Figure 10 (right) — average system throughput (16-core)", &rows);
}
