//! Snapshot benchmark of the controller's scheduling hot path: the retired
//! full-queue comparator sort vs. the cached-priority-key max-scan, per
//! scheduler, at 32/64/128-entry queues. Emits `BENCH_sched_hotpath.json`
//! in the working directory.
//!
//! Run with: `cargo run --release -p parbs-bench --bin sched_hotpath`
//! (`--quick` shrinks the sample count for CI).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use parbs_bench::hotpath;
use parbs_dram::SchedView;

/// Median nanoseconds per call of `f`, over `samples` samples of `iters`
/// timed iterations each.
fn median_ns(samples: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..iters {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[per_call.len() / 2]
}

struct Row {
    scheduler: &'static str,
    queue_len: u64,
    sort_ns: f64,
    keyed_ns: f64,
    refresh_ns: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (samples, iters) = if quick { (15, 200) } else { (50, 2_000) };
    let mut rows: Vec<Row> = Vec::new();
    for kind in hotpath::all_schedulers() {
        for n in [32u64, 64, 128] {
            let (sched, queue, channel) = hotpath::warmed(&kind, n);
            let view = SchedView { channel: &channel, now: 100 };
            let sort_ns = median_ns(samples, iters, || {
                black_box(hotpath::decide_by_sort(&*sched, black_box(&queue), &view));
            });
            let mut keys = Vec::new();
            hotpath::compute_keys(&*sched, &queue, &view, &mut keys);
            let keyed_ns = median_ns(samples, iters, || {
                black_box(hotpath::decide_by_key_scan(black_box(&keys)));
            });
            let refresh_ns = median_ns(samples, iters, || {
                hotpath::compute_keys(&*sched, black_box(&queue), &view, &mut keys);
                black_box(keys.len());
            });
            println!(
                "{:8} n={n:<4} sort {sort_ns:>9.1} ns  keyed {keyed_ns:>7.1} ns  \
                 refresh {refresh_ns:>8.1} ns  speedup {:>5.1}x",
                kind.name(),
                sort_ns / keyed_ns
            );
            rows.push(Row { scheduler: kind.name(), queue_len: n, sort_ns, keyed_ns, refresh_ns });
        }
    }

    let mut json = String::from(
        "{\n  \"benchmark\": \"sched_hotpath\",\n  \"unit\": \"ns_per_decision\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scheduler\": \"{}\", \"queue_len\": {}, \"sort_ns\": {:.1}, \
             \"keyed_ns\": {:.1}, \"key_refresh_ns\": {:.1}, \"speedup\": {:.2}}}{}",
            r.scheduler,
            r.queue_len,
            r.sort_ns,
            r.keyed_ns,
            r.refresh_ns,
            r.sort_ns / r.keyed_ns,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    let worst_128 = rows
        .iter()
        .filter(|r| r.queue_len == 128)
        .map(|r| r.sort_ns / r.keyed_ns)
        .fold(f64::INFINITY, f64::min);
    let _ = write!(json, "  ],\n  \"min_speedup_128\": {worst_128:.2}\n}}\n");
    std::fs::write("BENCH_sched_hotpath.json", &json).expect("write BENCH_sched_hotpath.json");
    println!("\nwrote BENCH_sched_hotpath.json (min 128-entry speedup {worst_128:.1}x)");
    assert!(
        worst_128 >= 2.0,
        "hot-path regression: 128-entry keyed decision must be >= 2x faster than the sort \
         (got {worst_128:.2}x)"
    );
}
