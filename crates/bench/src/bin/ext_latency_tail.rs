//! Extension: read-latency distribution per scheduler. The paper reports
//! only worst-case latency (Table 4); the full tail shows how batching
//! bounds high percentiles while stall-time fairness (STFM) trades tail
//! latency for mean slowdown equality.

use parbs_bench::Scale;
use parbs_sim::{EvalOverrides, Harness, SchedulerKind, SimConfig};
use parbs_workloads::{case_study_1, random_mixes};

fn main() {
    let scale = Scale::from_args();
    println!("## Extension — read-latency distribution (cycles)\n");
    for (name, mixes) in [
        ("Case Study I".to_owned(), vec![case_study_1()]),
        (
            format!("{} random 4-core workloads", scale.mixes4.min(10)),
            random_mixes(4, scale.mixes4.min(10), scale.seed),
        ),
    ] {
        println!("{name}:");
        println!(
            "{:10} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "scheduler", "mean", "p50", "p95", "p99", "max"
        );
        for kind in SchedulerKind::paper_five() {
            let harness = Harness::new(SimConfig {
                target_instructions: scale.target,
                ..SimConfig::for_cores(4)
            });
            let mut h = parbs_metrics::LatencyHistogram::new();
            for mix in &mixes {
                let r = harness.run_shared(mix, &kind, &EvalOverrides::none());
                h.merge(&r.read_latency);
            }
            println!(
                "{:10} {:>8.0} {:>8} {:>8} {:>8} {:>8}",
                kind.name(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.max()
            );
        }
        println!();
    }
}
