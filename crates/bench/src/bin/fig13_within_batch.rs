//! Figure 13: effect of the within-batch scheduling policy — Max-Total vs
//! Total-Max vs random vs round-robin ranking vs no ranking (FR-FCFS/FCFS
//! within batch), with STFM for reference; plus the uniform 4 x lbm and
//! 4 x matlab mixes that isolate the parallelism component.

use parbs_bench::{print_summaries, Scale};
use parbs_sim::experiments::{ranking_kinds, ranking_plan, sweep_plan};
use parbs_workloads::{random_mixes, MixSpec};

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let rows = ranking_plan(&mixes).run(&harness, scale.jobs);
    print_summaries("Figure 13 (left) — within-batch policy, averages", &rows);
    for (names, title) in [
        (["lbm"; 4], "Figure 13 (middle) — 4 x lbm"),
        (["matlab"; 4], "Figure 13 (right) — 4 x matlab"),
    ] {
        let mix = MixSpec::from_names(names[0], &names);
        let rows =
            sweep_plan(std::slice::from_ref(&mix), &ranking_kinds()).run(&harness, scale.jobs);
        print_summaries(title, &rows);
    }
}
