//! Figure 13: effect of the within-batch scheduling policy — Max-Total vs
//! Total-Max vs random vs round-robin ranking vs no ranking (FR-FCFS/FCFS
//! within batch), with STFM for reference; plus the uniform 4 x lbm and
//! 4 x matlab mixes that isolate the parallelism component.

use parbs_bench::{print_summaries, Scale};
use parbs_sim::experiments::{ranking_sweep, sweep};
use parbs_workloads::{random_mixes, MixSpec};

fn main() {
    let scale = Scale::from_args();
    let mut session = scale.session(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let rows = ranking_sweep(&mut session, &mixes);
    print_summaries("Figure 13 (left) — within-batch policy, averages", &rows);
    for (names, title) in [
        (["lbm"; 4], "Figure 13 (middle) — 4 x lbm"),
        (["matlab"; 4], "Figure 13 (right) — 4 x matlab"),
    ] {
        let mix = MixSpec::from_names(names[0], &names);
        let kinds = parbs_sim::experiments::ranking_kinds();
        let rows = sweep(&mut session, std::slice::from_ref(&mix), &kinds);
        print_summaries(title, &rows);
    }
}
