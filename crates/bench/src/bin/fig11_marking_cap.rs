//! Figure 11: effect of Marking-Cap on unfairness and throughput, plus the
//! per-thread slowdowns of Case Studies I and II.

use parbs_bench::{print_case_study, print_summaries, Scale};
use parbs_sim::experiments::{marking_cap_kinds, marking_cap_plan};
use parbs_sim::{EvalJob, EvalPlan};
use parbs_workloads::{case_study_1, case_study_2, random_mixes};

fn main() {
    let scale = Scale::from_args();
    let caps: Vec<Option<u32>> = (1..=10).map(Some).chain([Some(20), None]).collect();
    let harness = scale.harness(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let rows = marking_cap_plan(&mixes, &caps).run(&harness, scale.jobs);
    print_summaries("Figure 11 (left) — Marking-Cap sweep, averages", &rows);
    let labeled = marking_cap_kinds(&caps);
    for (mix, title) in [
        (case_study_1(), "Figure 11 (middle) — Case Study I slowdowns"),
        (case_study_2(), "Figure 11 (right) — Case Study II slowdowns"),
    ] {
        let plan: EvalPlan =
            labeled.iter().map(|(_, kind)| EvalJob::new(mix.clone(), kind.clone())).collect();
        let mut evals = harness.run_plan(&plan, scale.jobs);
        for (e, (label, _)) in evals.iter_mut().zip(&labeled) {
            e.scheduler = label.clone();
        }
        print_case_study(title, &evals);
    }
}
