//! Figure 11: effect of Marking-Cap on unfairness and throughput, plus the
//! per-thread slowdowns of Case Studies I and II.

use parbs::ParBsConfig;
use parbs_bench::{print_case_study, print_summaries, Scale};
use parbs_sim::experiments::marking_cap_sweep;
use parbs_sim::SchedulerKind;
use parbs_workloads::{case_study_1, case_study_2, random_mixes};

fn main() {
    let scale = Scale::from_args();
    let caps: Vec<Option<u32>> = (1..=10).map(Some).chain([Some(20), None]).collect();
    let mut session = scale.session(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let rows = marking_cap_sweep(&mut session, &mixes, &caps);
    print_summaries("Figure 11 (left) — Marking-Cap sweep, averages", &rows);
    for (mix, title) in [
        (case_study_1(), "Figure 11 (middle) — Case Study I slowdowns"),
        (case_study_2(), "Figure 11 (right) — Case Study II slowdowns"),
    ] {
        let evals: Vec<_> = caps
            .iter()
            .map(|cap| {
                let kind = SchedulerKind::ParBs(ParBsConfig {
                    marking_cap: *cap,
                    ..ParBsConfig::default()
                });
                let mut e = session.evaluate_mix(&mix, &kind);
                e.scheduler = match cap {
                    Some(c) => format!("c={c}"),
                    None => "no-c".to_owned(),
                };
                e
            })
            .collect();
        print_case_study(title, &evals);
    }
}
