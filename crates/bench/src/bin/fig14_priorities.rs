//! Figure 14: support for system-level thread priorities — weighted lbm
//! copies (left) and purely opportunistic service (right).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::{priority_opportunistic_plan, priority_weighted_plan};

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let left = harness.run_plan(&priority_weighted_plan(), scale.jobs);
    print_case_study(
        "Figure 14 (left) — 4 x lbm, priorities 1-1-2-8 (NFQ/STFM weights 8-8-4-1)",
        &left,
    );
    let right = harness.run_plan(&priority_opportunistic_plan(), scale.jobs);
    print_case_study(
        "Figure 14 (right) — omnetpp important, others opportunistic (weights 1-1-8192-1)",
        &right,
    );
}
