//! Extension: the scheduler zoo (the paper's five plus BLISS and ATLAS)
//! over mixed CPU/accelerator workloads — a streaming-accelerator agent
//! (GPU-like: very high MPKI, very high row-buffer locality) shares the
//! memory system with three CPU threads per mix.
//!
//! The interesting columns are the per-class ones: under FR-FCFS the
//! streamer's open-row bursts win every row-hit arbitration, so the CPUs
//! absorb nearly all the slowdown while the streamer is barely perturbed.
//! BLISS (blacklisting the streamer's consecutive-service streaks) and
//! PAR-BS (batch-capped service) pull the worst CPU slowdown back down;
//! ATLAS (least-attained-service) goes furthest, at the price of slowing
//! the bandwidth-hungry streamer the most.

use parbs_bench::Scale;
use parbs_sim::experiments::{zoo_rows, zoo_sweep_plan};
use parbs_workloads::{accel_case_study, cpu_accel_mixes};

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let mut mixes = vec![accel_case_study()];
    mixes.extend(cpu_accel_mixes(4, scale.mixes4.min(30), scale.seed));
    let sweep = zoo_sweep_plan(&mixes);
    let rows = zoo_rows(sweep.run(&harness, scale.jobs), &mixes);
    println!("## Extension — scheduler zoo over {} mixed CPU/accelerator workload(s)", mixes.len());
    println!(
        "{:10} {:>10} {:>12} {:>9} {:>11} {:>8} {:>8}",
        "scheduler", "unfairness", "cpu-unfair", "cpu-max", "accel-max", "wspeed", "hspeed"
    );
    for zr in &rows {
        let s = zr.row.summary();
        println!(
            "{:10} {:>10.3} {:>12.3} {:>9.2} {:>11.2} {:>8.3} {:>8.3}",
            s.name,
            s.unfairness,
            zr.cpu_unfairness,
            zr.cpu_max_slowdown,
            zr.accel_max_slowdown,
            s.weighted_speedup,
            s.hmean_speedup
        );
    }
    println!(
        "\nexpected shape: FR-FCFS worst CPU fairness (the streamer rides row hits),\n\
         BLISS/PAR-BS contain it, ATLAS flattens CPU slowdowns hardest while the\n\
         accelerator pays the largest slowdown of any scheduler."
    );
}
