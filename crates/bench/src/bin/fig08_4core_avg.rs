//! Figure 8: unfairness for sample 4-core workloads plus the geometric mean
//! over the full workload suite; average system throughput.

use parbs_bench::{print_summaries, print_unfairness_by_workload, Scale};
use parbs_sim::experiments::{paper_five_labeled, sweep_plan};
use parbs_workloads::random_mixes;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let mixes = random_mixes(4, scale.mixes4, scale.seed);
    let rows = sweep_plan(&mixes, &paper_five_labeled()).run(&harness, scale.jobs);
    print_unfairness_by_workload(
        &format!("Figure 8 (left) — unfairness, {} 4-core workloads", mixes.len()),
        &rows,
        10,
    );
    print_summaries("Figure 8 (right) — average system throughput (4-core)", &rows);
}
