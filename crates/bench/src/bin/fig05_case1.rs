//! Figure 5 — Case Study I: a memory-intensive 4-core workload
//! (libquantum, mcf, GemsFDTD, xalancbmk).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_schedulers;
use parbs_workloads::case_study_1;

fn main() {
    let scale = Scale::from_args();
    let mut session = scale.session(4);
    let evals = compare_schedulers(&mut session, &case_study_1());
    print_case_study("Figure 5 — Case Study I (memory-intensive workload)", &evals);
}
