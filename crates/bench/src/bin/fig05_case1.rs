//! Figure 5 — Case Study I: a memory-intensive 4-core workload
//! (libquantum, mcf, GemsFDTD, xalancbmk).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_plan;
use parbs_workloads::case_study_1;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let evals = harness.run_plan(&compare_plan(&case_study_1()), scale.jobs);
    print_case_study("Figure 5 — Case Study I (memory-intensive workload)", &evals);
}
