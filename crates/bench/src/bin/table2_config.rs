//! Table 2: the simulated baseline CMP and memory system configuration.

use parbs_cpu::CoreConfig;
use parbs_dram::DramConfig;

fn main() {
    let core = CoreConfig::table2();
    println!("## Table 2 — baseline configuration");
    println!("processor: 4 GHz, {}-entry window, {}-wide fetch/commit (1 mem op/cycle), {} MSHRs, {}-entry store queue",
        core.window_size, core.fetch_width, core.mshrs, core.store_queue);
    for cores in [4usize, 8, 16] {
        let d = DramConfig::for_cores(cores);
        let t = d.timing;
        println!(
            "{cores:>2} cores: {} channel(s) x {} banks, {} KB rows, {}-entry request buffer, {}-entry write buffer",
            d.channels(), d.banks_per_channel(), d.cols_per_row() * 64 / 1024,
            d.request_buffer_cap, d.write_buffer_cap
        );
        if cores == 4 {
            println!(
                "  DDR2-800 timing (processor cycles): tRCD {} tCL {} tRP {} tRAS {} tRC {} BL/2 {} tCCD {} tRRD {} tWR {} tRTP {} tWTR {}",
                t.t_rcd, t.t_cl, t.t_rp, t.t_ras, t.t_rc, t.t_burst, t.t_ccd, t.t_rrd, t.t_wr, t.t_rtp, t.t_wtr
            );
            println!(
                "  round-trip (uncontended): row hit {} cycles, closed {}, conflict {}",
                t.row_hit_latency() + t.front_latency,
                t.row_closed_latency() + t.front_latency,
                t.row_conflict_latency() + t.front_latency
            );
        }
    }
}
