//! Extension: system-parameter sensitivity (the paper's extended technical
//! report varies system parameters) plus an ablation of this model's
//! open-row grace policy. Reports PAR-BS vs FR-FCFS under each variation.

use parbs_bench::Scale;
use parbs_sim::{experiments, Harness, SimConfig};
use parbs_workloads::random_mixes;

fn run_point(label: &str, cfg: SimConfig, mixes_n: usize, seed: u64, jobs: usize) {
    let harness = Harness::new(cfg);
    let mixes = random_mixes(4, mixes_n, seed);
    let kinds = experiments::paper_five_labeled();
    let rows = experiments::sweep_plan(&mixes, &kinds).run(&harness, jobs);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.label == name)
            .map(parbs_sim::experiments::SweepRow::summary)
            .expect("scheduler present")
    };
    let fr = get("FR-FCFS");
    let pb = get("PAR-BS");
    println!(
        "{label:24} FR-FCFS unf {:>5.2} ws {:>5.3} | PAR-BS unf {:>5.2} ws {:>5.3} | PAR-BS ws gain {:>+5.1}%",
        fr.unfairness,
        fr.weighted_speedup,
        pb.unfairness,
        pb.weighted_speedup,
        100.0 * (pb.weighted_speedup / fr.weighted_speedup - 1.0)
    );
}

fn main() {
    let scale = Scale::from_args();
    let n = scale.mixes4.min(15);
    let base = || SimConfig { target_instructions: scale.target, ..SimConfig::for_cores(4) };
    println!("## Extension — system-parameter sensitivity ({n} workloads per point)\n");

    println!("banks per channel:");
    for banks in [4usize, 8, 16] {
        let mut cfg = base();
        cfg.dram.geometry.banks_per_rank = banks;
        run_point(&format!("  {banks} banks"), cfg, n, scale.seed, scale.jobs);
    }
    println!("\nchannels (4 cores):");
    for channels in [1usize, 2, 4] {
        let mut cfg = base();
        cfg.dram.geometry.channels = channels;
        run_point(&format!("  {channels} channel(s)"), cfg, n, scale.seed, scale.jobs);
    }
    println!("\nrow-buffer size (lines per row):");
    for cols in [16u64, 32, 64] {
        let mut cfg = base();
        cfg.dram.geometry.cols_per_row = cols;
        run_point(&format!("  {} B rows", cols * 64), cfg, n, scale.seed, scale.jobs);
    }
    println!("\nopen-row grace ablation (controller policy of this model):");
    for grace in [0u64, 100, 200, 400] {
        let mut cfg = base();
        cfg.dram.timing.t_row_grace = grace;
        run_point(&format!("  grace {grace}"), cfg, n, scale.seed, scale.jobs);
    }
    println!("\nrequest-buffer size:");
    for cap in [32usize, 64, 128] {
        let mut cfg = base();
        cfg.dram.request_buffer_cap = cap;
        run_point(&format!("  {cap} entries"), cfg, n, scale.seed, scale.jobs);
    }
}
