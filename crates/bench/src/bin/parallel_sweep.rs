//! Snapshot benchmark of the parallel sweep engine: one 4-mix x 5-scheduler
//! evaluation plan executed on a fresh harness at jobs=1 and jobs=4, wall
//! clocks compared, outputs asserted byte-identical. Emits
//! `BENCH_parallel_sweep.json` in the working directory.
//!
//! Run with: `cargo run --release -p parbs-bench --bin parallel_sweep`
//! (`--quick` shrinks the per-thread instruction target for CI).
//!
//! The >=2x speedup assertion only fires on hosts with at least 4 available
//! cores — on smaller machines (or under CPU quotas) the run still checks
//! determinism and records the honest numbers.

use std::fmt::Write as _;
use std::time::Instant;

use parbs_sim::experiments::{paper_five_labeled, sweep_plan};
use parbs_sim::{Harness, MixEvaluation, SimConfig};
use parbs_workloads::random_mixes;

struct Run {
    jobs: usize,
    wall_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    evals: Vec<MixEvaluation>,
}

fn timed_run(target: u64, jobs: usize) -> Run {
    // Fresh harness per level: both runs pay the full alone-baseline cost,
    // so the comparison measures the executor, not a warm cache.
    let harness =
        Harness::new(SimConfig { target_instructions: target, ..SimConfig::for_cores(4) });
    let mixes = random_mixes(4, 4, 42);
    let sweep = sweep_plan(&mixes, &paper_five_labeled());
    let start = Instant::now();
    let evals = harness.run_plan(sweep.plan(), jobs);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let stats = harness.cache_stats();
    Run { jobs, wall_ms, cache_hits: stats.hits, cache_misses: stats.misses, evals }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick { 4_000 } else { 30_000 };
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let serial = timed_run(target, 1);
    let parallel = timed_run(target, 4);

    let identical = serial.evals == parallel.evals
        && format!("{:?}", serial.evals) == format!("{:?}", parallel.evals);
    assert!(identical, "jobs=4 output diverged from jobs=1 on the same plan");

    let speedup = serial.wall_ms / parallel.wall_ms;
    for r in [&serial, &parallel] {
        println!(
            "jobs={}: {} evaluations in {:>8.1} ms (alone-cache {} hits / {} misses)",
            r.jobs,
            r.evals.len(),
            r.wall_ms,
            r.cache_hits,
            r.cache_misses
        );
    }
    println!("speedup {speedup:.2}x on a host with {host_parallelism} available core(s)");

    let mut json = String::from("{\n  \"benchmark\": \"parallel_sweep\",\n");
    let _ = write!(
        json,
        "  \"plan\": \"4 mixes x 5 schedulers (random_mixes(4, 4, 42), target {target})\",\n  \
         \"host_parallelism\": {host_parallelism},\n  \"runs\": [\n"
    );
    for (i, r) in [&serial, &parallel].iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"jobs\": {}, \"wall_ms\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            r.jobs,
            r.wall_ms,
            r.cache_hits,
            r.cache_misses,
            if i == 1 { "\n" } else { ",\n" }
        );
    }
    let _ = write!(json, "  ],\n  \"speedup\": {speedup:.2},\n  \"identical_output\": true\n}}\n");
    std::fs::write("BENCH_parallel_sweep.json", &json).expect("write BENCH_parallel_sweep.json");
    println!("wrote BENCH_parallel_sweep.json");

    if host_parallelism >= 4 {
        assert!(
            speedup >= 2.0,
            "parallel-sweep regression: jobs=4 must be >= 2x faster than jobs=1 on a \
             >=4-core host (got {speedup:.2}x)"
        );
    } else {
        println!(
            "note: skipping the >=2x speedup assertion — only {host_parallelism} core(s) \
             available"
        );
    }
}
