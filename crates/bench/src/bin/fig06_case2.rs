//! Figure 6 — Case Study II: a non-intensive 4-core workload
//! (matlab, h264ref, omnetpp, hmmer).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_plan;
use parbs_workloads::case_study_2;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let evals = harness.run_plan(&compare_plan(&case_study_2()), scale.jobs);
    print_case_study("Figure 6 — Case Study II (non-intensive workload)", &evals);
}
