//! Figure 6 — Case Study II: a non-intensive 4-core workload
//! (matlab, h264ref, omnetpp, hmmer).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_schedulers;
use parbs_workloads::case_study_2;

fn main() {
    let scale = Scale::from_args();
    let mut session = scale.session(4);
    let evals = compare_schedulers(&mut session, &case_study_2());
    print_case_study("Figure 6 — Case Study II (non-intensive workload)", &evals);
}
