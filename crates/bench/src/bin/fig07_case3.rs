//! Figure 7 — Case Study III: four copies of lbm (high bank-parallelism,
//! uniform mix; fairness is not a problem, parallelism still matters).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_schedulers;
use parbs_workloads::case_study_3;

fn main() {
    let scale = Scale::from_args();
    let mut session = scale.session(4);
    let evals = compare_schedulers(&mut session, &case_study_3());
    print_case_study("Figure 7 — Case Study III (4 x lbm)", &evals);
}
