//! Figure 7 — Case Study III: four copies of lbm (high bank-parallelism,
//! uniform mix; fairness is not a problem, parallelism still matters).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_plan;
use parbs_workloads::case_study_3;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let evals = harness.run_plan(&compare_plan(&case_study_3()), scale.jobs);
    print_case_study("Figure 7 — Case Study III (4 x lbm)", &evals);
}
