//! Figure 3: the abstract within-batch scheduling example. Reproduces the
//! paper's per-thread batch-completion times exactly:
//! FCFS (4, 4, 5, 7; avg 5), FR-FCFS (5.5, 3, 4.5, 4.5; avg 4.375),
//! PAR-BS (1, 2, 4, 5.5; avg 3.125).

use parbs::{AbstractBatch, AbstractPolicy};

fn main() {
    let batch = AbstractBatch::figure3_example();
    println!("## Figure 3 — within-batch scheduling abstraction");
    println!("{:10} {:>8} {:>8} {:>8} {:>8} {:>8}", "policy", "T1", "T2", "T3", "T4", "AVG");
    for (name, policy) in [
        ("FCFS", AbstractPolicy::Fcfs),
        ("FR-FCFS", AbstractPolicy::FrFcfs),
        ("PAR-BS", AbstractPolicy::ParBs),
    ] {
        let t = batch.completion_times(policy);
        println!(
            "{:10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            t[0],
            t[1],
            t[2],
            t[3],
            batch.average_completion(policy)
        );
    }
    println!("\nMax-Total thread loads (max-bank-load, total):");
    for l in batch.thread_loads() {
        println!("  thread {}: ({}, {})", l.thread + 1, l.max_bank_load, l.total_load);
    }
}
