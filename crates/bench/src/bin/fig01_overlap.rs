//! Figure 1: two DRAM requests of one thread to different banks overlap,
//! exposing roughly one bank-access latency to the core — while two requests
//! to different rows of the same bank serialize.

fn main() {
    let (overlapped, serialized) = parbs_sim::experiments::micro::fig1_overlap();
    println!("## Figure 1 — intra-thread bank-level parallelism (single core)");
    println!("second request completes at (processor cycles from issue):");
    println!("  different banks (overlapped):  {overlapped:>6}");
    println!("  same bank, different rows:     {serialized:>6}");
    println!(
        "  overlap hides {:.0}% of the second access",
        100.0 * (1.0 - overlapped as f64 / serialized as f64)
    );
}
