//! Figure 12: batching-choice comparison — static time-based batching
//! (400..25600 cycles), empty-slot batching, and full batching.

use parbs::{BatchingMode, ParBsConfig};
use parbs_bench::{print_case_study, print_summaries, Scale};
use parbs_sim::experiments::batching_sweep;
use parbs_sim::SchedulerKind;
use parbs_workloads::{case_study_1, case_study_2, random_mixes};

fn main() {
    let scale = Scale::from_args();
    let mut session = scale.session(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let rows = batching_sweep(&mut session, &mixes);
    print_summaries("Figure 12 (left) — batching choice, averages", &rows);
    let variants: Vec<(String, ParBsConfig)> = [400u64, 800, 1_600, 3_200, 6_400, 12_800, 25_600]
        .iter()
        .map(|&d| {
            (
                format!("st-{d}"),
                ParBsConfig {
                    batching: BatchingMode::Static { duration: d },
                    ..ParBsConfig::default()
                },
            )
        })
        .chain([
            (
                "eslot".to_owned(),
                ParBsConfig { batching: BatchingMode::EmptySlot, ..ParBsConfig::default() },
            ),
            ("full".to_owned(), ParBsConfig::default()),
        ])
        .collect();
    for (mix, title) in [
        (case_study_1(), "Figure 12 (middle) — Case Study I slowdowns"),
        (case_study_2(), "Figure 12 (right) — Case Study II slowdowns"),
    ] {
        let evals: Vec<_> = variants
            .iter()
            .map(|(label, cfg)| {
                let mut e = session.evaluate_mix(&mix, &SchedulerKind::ParBs(*cfg));
                e.scheduler = label.clone();
                e
            })
            .collect();
        print_case_study(title, &evals);
    }
}
