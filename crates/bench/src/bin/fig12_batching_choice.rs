//! Figure 12: batching-choice comparison — static time-based batching
//! (400..25600 cycles), empty-slot batching, and full batching.

use parbs_bench::{print_case_study, print_summaries, Scale};
use parbs_sim::experiments::{batching_kinds, batching_plan};
use parbs_sim::{EvalJob, EvalPlan};
use parbs_workloads::{case_study_1, case_study_2, random_mixes};

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    let mixes = random_mixes(4, scale.mixes4.min(30), scale.seed);
    let rows = batching_plan(&mixes).run(&harness, scale.jobs);
    print_summaries("Figure 12 (left) — batching choice, averages", &rows);
    let variants = batching_kinds();
    for (mix, title) in [
        (case_study_1(), "Figure 12 (middle) — Case Study I slowdowns"),
        (case_study_2(), "Figure 12 (right) — Case Study II slowdowns"),
    ] {
        let plan: EvalPlan =
            variants.iter().map(|(_, kind)| EvalJob::new(mix.clone(), kind.clone())).collect();
        let mut evals = harness.run_plan(&plan, scale.jobs);
        for (e, (label, _)) in evals.iter_mut().zip(&variants) {
            e.scheduler = label.clone();
        }
        print_case_study(title, &evals);
    }
}
