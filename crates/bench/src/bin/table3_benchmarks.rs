//! Table 3: benchmark characteristics, measured by running each synthetic
//! benchmark alone on one core of the baseline 4-core system (FR-FCFS).

use parbs_bench::Scale;
use parbs_sim::experiments::table3_rows;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(4);
    println!("## Table 3 — benchmark characteristics (measured | paper)");
    println!(
        "{:>2} {:12} {:>13} {:>13} {:>11} {:>11} {:>11} {:>9}",
        "#", "name", "MCPI", "L2 MPKI", "RB hit", "BLP", "AST/req", "category"
    );
    for row in table3_rows(&harness, scale.jobs) {
        let b = row.bench;
        println!(
            "{:>2} {:12} {:>6.2}|{:<6.2} {:>6.2}|{:<6.2} {:>5.2}|{:<5.2} {:>5.2}|{:<5.2} {:>5.0}|{:<5.0} {:>4}|{:<4}",
            b.number, b.name,
            row.mcpi, b.paper.mcpi,
            row.mpki, b.paper.mpki,
            row.rb_hit, b.paper.rb_hit,
            row.blp, b.paper.blp,
            row.ast_per_req, b.paper.ast_per_req,
            row.measured_category, b.category
        );
    }
}
