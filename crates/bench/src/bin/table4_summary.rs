//! Table 4: summary comparison across 4-, 8- and 16-core systems —
//! unfairness, weighted/hmean speedup, AST/req, and worst-case latency.

use parbs_bench::{print_summaries, Scale};
use parbs_sim::experiments::{paper_five_labeled, sweep_plan};
use parbs_workloads::random_mixes;

fn main() {
    let scale = Scale::from_args();
    for (cores, n) in [(4usize, scale.mixes4), (8, scale.mixes8), (16, scale.mixes16)] {
        let harness = scale.harness(cores);
        let mixes = random_mixes(cores, n, scale.seed);
        let rows = sweep_plan(&mixes, &paper_five_labeled()).run(&harness, scale.jobs);
        print_summaries(&format!("Table 4 — {cores}-core system ({n} workloads)"), &rows);
    }
}
