//! Figure 9: the mixed 8-core workload (3 intensive + 5 non-intensive
//! applications; mcf has the only very high bank-parallelism).

use parbs_bench::{print_case_study, Scale};
use parbs_sim::experiments::compare_plan;
use parbs_workloads::fig9_8core;

fn main() {
    let scale = Scale::from_args();
    let harness = scale.harness(8);
    let evals = harness.run_plan(&compare_plan(&fig9_8core()), scale.jobs);
    print_case_study("Figure 9 — mixed 8-core workload", &evals);
}
