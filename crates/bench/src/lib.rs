//! Shared harness for the per-figure/table regeneration binaries and the
//! Criterion microbenchmarks.
//!
//! Every binary accepts:
//!
//! * `--quick` — a fast smoke-test scale (short runs, few workloads);
//! * `--target <N>` — instructions per thread before snapshot;
//! * `--mixes <N>` — number of random 4-core workloads (where applicable);
//! * `--jobs <N>` — worker threads fanning the evaluation plan (default:
//!   all available cores; results are identical at any jobs level).
//!
//! The default scale (30 000 instructions per thread; 100/16/12 workloads
//! for 4/8/16 cores) regenerates every figure in a few minutes on a laptop.
//! Absolute numbers are not expected to match the paper — the substrate is a
//! scaled-down simulator — but the *shape* (ordering of schedulers,
//! direction of gaps, sweet spots) is; see `EXPERIMENTS.md`.

use parbs_sim::experiments::SweepRow;
use parbs_sim::{Harness, MixEvaluation, Session, SimConfig};

/// Run scale parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Instructions each thread commits before its snapshot.
    pub target: u64,
    /// Random 4-core workloads for the averaged experiments.
    pub mixes4: usize,
    /// Random 8-core workloads.
    pub mixes8: usize,
    /// Random 16-core workloads.
    pub mixes16: usize,
    /// Seed for workload-mix construction.
    pub seed: u64,
    /// Worker threads the evaluation plan fans across.
    pub jobs: usize,
}

impl Scale {
    /// The paper-shaped default scale.
    #[must_use]
    pub fn paper() -> Self {
        Scale {
            target: 30_000,
            mixes4: 100,
            mixes8: 16,
            mixes16: 12,
            seed: 42,
            jobs: parbs_sim::default_jobs(),
        }
    }

    /// A smoke-test scale for CI and quick looks.
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            target: 6_000,
            mixes4: 10,
            mixes8: 4,
            mixes16: 3,
            seed: 42,
            jobs: parbs_sim::default_jobs(),
        }
    }

    /// Parses `--quick`, `--target N`, `--mixes N`, `--seed N`, `--jobs N`
    /// from argv.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_arg_slice(&args)
    }

    /// Parses the flags from an explicit argument slice (testable core of
    /// [`Scale::from_args`]).
    #[must_use]
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut scale =
            if args.iter().any(|a| a == "--quick") { Self::quick() } else { Self::paper() };
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
        };
        if let Some(t) = value_of("--target") {
            scale.target = t.max(100);
        }
        if let Some(m) = value_of("--mixes") {
            scale.mixes4 = m as usize;
        }
        if let Some(s) = value_of("--seed") {
            scale.seed = s;
        }
        if let Some(j) = value_of("--jobs") {
            scale.jobs = (j as usize).max(1);
        }
        scale
    }

    /// A measurement harness for a `cores`-core system at this scale. Fan
    /// plans across workers with [`Harness::run_plan`] and `self.jobs`.
    #[must_use]
    pub fn harness(&self, cores: usize) -> Harness {
        Harness::new(SimConfig { target_instructions: self.target, ..SimConfig::for_cores(cores) })
    }

    /// A measurement session for an `cores`-core system at this scale.
    #[deprecated(note = "use `Scale::harness` and the plan-based API")]
    #[must_use]
    pub fn session(&self, cores: usize) -> Session {
        Session::new(SimConfig { target_instructions: self.target, ..SimConfig::for_cores(cores) })
    }
}

/// Prints a case-study block (Figs. 5, 6, 7, 9, 14): per-thread memory
/// slowdowns, the unfairness line, and the system-throughput bars.
pub fn print_case_study(title: &str, evals: &[MixEvaluation]) {
    println!("## {title}");
    if let Some(first) = evals.first() {
        print!("{:22}", "scheduler");
        for name in &first.thread_names {
            print!(" {name:>11}");
        }
        println!(
            " {:>10} {:>8} {:>8} {:>8} {:>8}",
            "unfairness", "wspeed", "hspeed", "ast", "wc-lat"
        );
    }
    for e in evals {
        print!("{:22}", e.scheduler);
        for s in &e.metrics.slowdowns {
            print!(" {s:>11.2}");
        }
        println!(
            " {:>10.2} {:>8.3} {:>8.3} {:>8.1} {:>8}",
            e.metrics.unfairness,
            e.metrics.weighted_speedup,
            e.metrics.hmean_speedup,
            e.metrics.ast_per_req,
            e.worst_case_latency
        );
    }
    println!();
}

/// Prints the aggregate block of a sweep (Figs. 8, 10-13; Table 4 rows).
pub fn print_summaries(title: &str, rows: &[SweepRow]) {
    println!("## {title}");
    println!(
        "{:22} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "scheduler", "unfairness", "wspeed", "hspeed", "ast", "wc-lat"
    );
    for row in rows {
        let s = row.summary();
        println!(
            "{:22} {:>10.3} {:>8.3} {:>8.3} {:>8.1} {:>8}",
            s.name,
            s.unfairness,
            s.weighted_speedup,
            s.hmean_speedup,
            s.ast_per_req,
            s.worst_case_latency
        );
    }
    println!();
}

/// Prints per-workload unfairness for a set of sample workloads plus the
/// whole-suite geometric mean (the shape of Fig. 8 left / Fig. 10 left).
pub fn print_unfairness_by_workload(title: &str, rows: &[SweepRow], samples: usize) {
    println!("## {title}");
    let Some(first) = rows.first() else {
        return;
    };
    print!("{:22}", "workload");
    for row in rows {
        print!(" {:>18}", row.label);
    }
    println!();
    for (i, eval) in first.evaluations.iter().enumerate().take(samples) {
        print!("{:22}", eval.mix);
        for row in rows {
            print!(" {:>18.2}", row.evaluations[i].metrics.unfairness);
        }
        println!();
    }
    print!("{:22}", "GMEAN(all)");
    for row in rows {
        print!(" {:>18.3}", row.summary().unfairness);
    }
    println!("\n");
}

/// Harness for the scheduling hot-path comparison: the cost of one
/// controller decision slot over an n-entry read queue, measured as the
/// retired full-queue comparator sort versus a single-pass scan of cached
/// priority keys (what `Controller::try_issue` now does).
pub mod hotpath {
    use parbs_dram::{
        Channel, LineAddr, MemoryScheduler, Request, RequestKind, SchedView, ThreadId, TimingParams,
    };
    use parbs_sim::{SchedulerKind, SimConfig};

    /// The scheduler kinds covered by the hot-path benchmarks: the full
    /// seven-scheduler zoo plus STFQ — every policy shipped with the
    /// repository.
    #[must_use]
    pub fn all_schedulers() -> Vec<SchedulerKind> {
        let mut kinds = SchedulerKind::zoo_seven();
        kinds.push(SchedulerKind::Stfq);
        kinds
    }

    /// An `n`-request read queue spread over 4 threads and 8 banks with a
    /// mix of row-hit and row-conflict addresses.
    #[must_use]
    pub fn queue(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                let addr =
                    LineAddr { channel: 0, bank: (i % 8) as usize, row: i * 7 % 13, col: i % 32 };
                Request::new(i, ThreadId((i % 4) as usize), addr, RequestKind::Read, i / 4)
            })
            .collect()
    }

    /// A warmed scheduler over `queue(n)`: arrivals announced and one
    /// `pre_schedule` pass applied (forms the PAR-BS batch, assigns NFQ
    /// deadlines), so a decision measured afterwards is a steady-state slot.
    #[must_use]
    pub fn warmed(
        kind: &SchedulerKind,
        n: u64,
    ) -> (Box<dyn MemoryScheduler>, Vec<Request>, Channel) {
        let channel = Channel::new(8, TimingParams::ddr2_800());
        let mut sched = kind.build(&SimConfig::for_cores(4));
        let mut q = queue(n);
        for r in &q {
            sched.on_arrival(r, r.arrival);
        }
        sched.pre_schedule(&mut q, &SchedView { channel: &channel, now: 100 });
        (sched, q, channel)
    }

    /// One decision via the retired path: sort the whole queue with the
    /// scheduler's comparator and take the head.
    #[must_use]
    pub fn decide_by_sort(
        sched: &dyn MemoryScheduler,
        q: &[Request],
        view: &SchedView<'_>,
    ) -> usize {
        let mut order: Vec<usize> = (0..q.len()).collect();
        order.sort_by(|&i, &j| sched.compare(&q[i], &q[j], view));
        order[0]
    }

    /// Fills `keys` with the packed priority key of each queued request —
    /// the cache-refresh cost, paid only on priority-changing events.
    pub fn compute_keys(
        sched: &dyn MemoryScheduler,
        q: &[Request],
        view: &SchedView<'_>,
        keys: &mut Vec<u128>,
    ) {
        keys.clear();
        keys.extend(q.iter().map(|r| sched.priority_key(r, view)));
    }

    /// One decision via the hot path: a single max-scan over cached keys.
    #[must_use]
    pub fn decide_by_key_scan(keys: &[u128]) -> usize {
        let mut best = 0;
        for (i, &k) in keys.iter().enumerate() {
            if k > keys[best] {
                best = i;
            }
        }
        best
    }

    /// The `active` thread ids used by the sparse-population benchmarks:
    /// strided evenly across the id space `0..population`, so the largest
    /// id grows with `population` while the count stays fixed.
    #[must_use]
    pub fn strided_ids(population: usize, active: usize) -> Vec<usize> {
        let active = active.min(population).max(1);
        let stride = (population / active).max(1);
        (0..active).map(|k| k * stride).collect()
    }

    /// A `queue_len`-entry read queue round-robining over exactly 16
    /// distinct thread ids subsampled from `strided_ids(population,
    /// active)`. Keeping the *distinct-thread count* of the queue constant
    /// across populations is what makes decision costs comparable: several
    /// schedulers legitimately pay O(distinct queued threads) per decision
    /// (STFM's fairness scan, ATLAS's ranking), and the benchmark's
    /// question is whether cost grows with the *registered population*,
    /// not with queue composition.
    #[must_use]
    pub fn sparse_queue(queue_len: u64, population: usize, active: usize) -> Vec<Request> {
        let ids = strided_ids(population, active);
        let queue_ids: Vec<usize> =
            ids.iter().copied().step_by((ids.len() / 16).max(1)).take(16).collect();
        (0..queue_len)
            .map(|i| {
                let addr =
                    LineAddr { channel: 0, bank: (i % 8) as usize, row: i * 7 % 13, col: i % 32 };
                let t = queue_ids[(i as usize) % queue_ids.len()];
                Request::new(i, ThreadId(t), addr, RequestKind::Read, i / 4)
            })
            .collect()
    }

    /// A scheduler carrying live per-thread state for every id in
    /// `strided_ids(population, active)`, warmed over a
    /// [`sparse_queue`] measurement queue.
    ///
    /// Registration gives each active thread the full footprint a long run
    /// would: a share weight (NFQ/STFM), attained service and a blacklist
    /// entry (ATLAS/BLISS, via four consecutive column commands), and a
    /// ranking pass over a queue naming every id (ATLAS/PAR-BS). A
    /// decision measured afterwards therefore pays whatever per-thread
    /// state the scheduler keeps — the point of the benchmark is that this
    /// cost tracks `active`, never `population`.
    #[must_use]
    pub fn warmed_sparse(
        kind: &SchedulerKind,
        queue_len: u64,
        population: usize,
        active: usize,
    ) -> (Box<dyn MemoryScheduler>, Vec<Request>, Channel) {
        use parbs_dram::{Command, CommandKind};
        let channel = Channel::new(8, TimingParams::ddr2_800());
        let mut sched = kind.build(&SimConfig::for_cores(4));
        let ids = strided_ids(population, active);
        let mut reg: Vec<Request> = Vec::with_capacity(ids.len());
        for (k, &t) in ids.iter().enumerate() {
            sched.set_thread_weight(ThreadId(t), 1.0);
            let addr =
                LineAddr { channel: 0, bank: k % 8, row: (k % 13) as u64 + 1, col: k as u64 % 32 };
            let r = Request::new(k as u64, ThreadId(t), addr, RequestKind::Read, 0);
            let cmd = Command {
                kind: CommandKind::Read,
                rank: 0,
                bank: addr.bank,
                row: addr.row,
                col: addr.col,
                request: r.id,
            };
            for _ in 0..4 {
                sched.on_command(&cmd, &r, 0);
            }
            reg.push(r);
        }
        sched.pre_schedule(&mut reg, &SchedView { channel: &channel, now: 50 });
        let mut q = sparse_queue(queue_len, population, active);
        for r in &q {
            sched.on_arrival(r, r.arrival);
        }
        sched.pre_schedule(&mut q, &SchedView { channel: &channel, now: 100 });
        (sched, q, channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn hotpath_sort_and_key_scan_pick_the_same_request() {
        for kind in hotpath::all_schedulers() {
            let (sched, q, channel) = hotpath::warmed(&kind, 64);
            let view = parbs_dram::SchedView { channel: &channel, now: 100 };
            let mut keys = Vec::new();
            hotpath::compute_keys(&*sched, &q, &view, &mut keys);
            assert_eq!(
                hotpath::decide_by_sort(&*sched, &q, &view),
                hotpath::decide_by_key_scan(&keys),
                "{}: both paths must pick the same head request",
                kind.name()
            );
        }
    }

    #[test]
    fn default_scale_is_paper() {
        assert_eq!(Scale::from_arg_slice(&[]), Scale::paper());
    }

    #[test]
    fn quick_flag_switches_base() {
        let s = Scale::from_arg_slice(&args(&["--quick"]));
        assert_eq!(s, Scale::quick());
    }

    #[test]
    fn explicit_flags_override() {
        let s = Scale::from_arg_slice(&args(&[
            "--quick", "--target", "9000", "--mixes", "7", "--seed", "3",
        ]));
        assert_eq!(s.target, 9_000);
        assert_eq!(s.mixes4, 7);
        assert_eq!(s.seed, 3);
        assert_eq!(s.mixes8, Scale::quick().mixes8, "unset fields keep the base");
    }

    #[test]
    fn jobs_flag_overrides_and_is_clamped() {
        let s = Scale::from_arg_slice(&args(&["--jobs", "6"]));
        assert_eq!(s.jobs, 6);
        let s = Scale::from_arg_slice(&args(&["--jobs", "0"]));
        assert_eq!(s.jobs, 1, "jobs=0 clamps to one worker");
        let s = Scale::from_arg_slice(&[]);
        assert_eq!(s.jobs, parbs_sim::default_jobs());
    }

    #[test]
    fn tiny_target_is_clamped() {
        let s = Scale::from_arg_slice(&args(&["--target", "1"]));
        assert_eq!(s.target, 100);
    }

    #[test]
    fn malformed_values_are_ignored() {
        let s = Scale::from_arg_slice(&args(&["--target", "abc"]));
        assert_eq!(s.target, Scale::paper().target);
    }
}
