//! Small statistics helpers used when aggregating over many workloads.

/// Arithmetic mean. Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(parbs_metrics::mean(&[1.0, 3.0]), 2.0);
/// ```
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean, used by the paper to average unfairness and speedups over
/// workload suites ("averaged (using geometric mean) over all 100 workloads").
///
/// Returns 0.0 for an empty slice or if any value is non-positive.
///
/// # Examples
///
/// ```
/// assert!((parbs_metrics::geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Harmonic mean. Returns 0.0 for an empty slice or if any value is ≤ 0
/// (a starved thread pins the harmonic mean to zero).
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_single_value() {
        assert!((geometric_mean(&[7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -2.0]), 0.0);
    }

    #[test]
    fn harmonic_classic_example() {
        // harmonic mean of 40 and 60 is 48
        assert!((harmonic_mean(&[40.0, 60.0]) - 48.0).abs() < 1e-12);
    }

    #[test]
    fn means_ordering_am_gm_hm() {
        let v = [2.0, 8.0];
        assert!(harmonic_mean(&v) <= geometric_mean(&v));
        assert!(geometric_mean(&v) <= mean(&v));
    }
}
