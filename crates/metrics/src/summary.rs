//! Result records for a single workload run and aggregation across workloads
//! (the shape of the paper's Table 4 rows), plus the agent-class fairness
//! split used by mixed CPU/accelerator experiments.

use crate::{geometric_mean, mean, unfairness};

/// All Section 7.1 metrics for one (workload, scheduler) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRow {
    /// Per-thread memory slowdowns, in thread order.
    pub slowdowns: Vec<f64>,
    /// Per-thread IPC speedups (`IPC_shared / IPC_alone`), in thread order.
    pub speedups: Vec<f64>,
    /// `max slowdown / min slowdown`.
    pub unfairness: f64,
    /// `Σ speedup_i`.
    pub weighted_speedup: f64,
    /// Harmonic mean of the speedups.
    pub hmean_speedup: f64,
    /// Average stall time per DRAM read request across the mix, in cycles.
    pub ast_per_req: f64,
}

/// Aggregate of many [`MetricsRow`]s plus the worst-case request latency, for
/// one scheduler — one row of the paper's Table 4.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerSummary {
    /// Scheduler display name (e.g. "PAR-BS").
    pub name: String,
    /// Geometric mean of per-workload unfairness.
    pub unfairness: f64,
    /// Geometric mean of per-workload weighted speedup.
    pub weighted_speedup: f64,
    /// Geometric mean of per-workload hmean speedup.
    pub hmean_speedup: f64,
    /// Arithmetic mean of per-workload AST/req (cycles).
    pub ast_per_req: f64,
    /// Maximum request latency observed in any run (cycles).
    pub worst_case_latency: u64,
}

impl SchedulerSummary {
    /// Aggregates per-workload rows for a scheduler as the paper does:
    /// geometric mean for unfairness and the two speedups, arithmetic mean for
    /// AST/req, and the maximum of the per-run worst-case latencies.
    ///
    /// # Examples
    ///
    /// ```
    /// use parbs_metrics::{MetricsRow, SchedulerSummary};
    /// let rows = vec![MetricsRow { unfairness: 1.0, weighted_speedup: 2.0,
    ///     hmean_speedup: 0.5, ast_per_req: 100.0, ..Default::default() }];
    /// let s = SchedulerSummary::aggregate("FR-FCFS", &rows, &[12_345]);
    /// assert_eq!(s.worst_case_latency, 12_345);
    /// ```
    #[must_use]
    pub fn aggregate(name: &str, rows: &[MetricsRow], worst_case_latencies: &[u64]) -> Self {
        let unf: Vec<f64> = rows.iter().map(|r| r.unfairness).collect();
        let ws: Vec<f64> = rows.iter().map(|r| r.weighted_speedup).collect();
        let hs: Vec<f64> = rows.iter().map(|r| r.hmean_speedup).collect();
        let ast: Vec<f64> = rows.iter().map(|r| r.ast_per_req).collect();
        SchedulerSummary {
            name: name.to_owned(),
            unfairness: geometric_mean(&unf),
            weighted_speedup: geometric_mean(&ws),
            hmean_speedup: geometric_mean(&hs),
            ast_per_req: mean(&ast),
            worst_case_latency: worst_case_latencies.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Fairness split between two agent classes sharing the memory system —
/// CPU threads vs streaming accelerators (GPU-like bandwidth-bound
/// requestors). A scheduler can look fair on the whole-mix unfairness index
/// while the accelerator quietly starves every CPU thread; splitting the
/// slowdowns by class makes that visible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassFairness {
    /// Unfairness index (`max/min` slowdown) among CPU threads only.
    pub cpu_unfairness: f64,
    /// Worst memory slowdown suffered by any CPU thread.
    pub cpu_max_slowdown: f64,
    /// Worst memory slowdown suffered by any accelerator agent (1.0 when
    /// the mix has none).
    pub accel_max_slowdown: f64,
}

/// Splits per-thread slowdowns by agent class. `is_accel[i]` says whether
/// thread `i` is an accelerator; a shorter (or empty) mask treats the
/// remaining threads as CPUs.
///
/// # Examples
///
/// ```
/// use parbs_metrics::class_fairness;
/// let f = class_fairness(&[1.0, 3.0, 1.2], &[false, false, true]);
/// assert_eq!(f.cpu_unfairness, 3.0);
/// assert_eq!(f.accel_max_slowdown, 1.2);
/// ```
#[must_use]
pub fn class_fairness(slowdowns: &[f64], is_accel: &[bool]) -> ClassFairness {
    let accel = |i: usize| is_accel.get(i).copied().unwrap_or(false);
    let cpu: Vec<f64> =
        slowdowns.iter().enumerate().filter(|&(i, _)| !accel(i)).map(|(_, &s)| s).collect();
    let accel_max = slowdowns
        .iter()
        .enumerate()
        .filter(|&(i, _)| accel(i))
        .map(|(_, &s)| s)
        .fold(1.0f64, f64::max);
    ClassFairness {
        cpu_unfairness: unfairness(&cpu),
        cpu_max_slowdown: cpu.iter().copied().fold(1.0f64, f64::max),
        accel_max_slowdown: accel_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fairness_splits_by_mask() {
        let f = class_fairness(&[1.0, 4.0, 1.5], &[false, false, true]);
        assert!((f.cpu_unfairness - 4.0).abs() < 1e-12);
        assert!((f.cpu_max_slowdown - 4.0).abs() < 1e-12);
        assert!((f.accel_max_slowdown - 1.5).abs() < 1e-12);
    }

    #[test]
    fn class_fairness_without_accelerators_matches_plain_unfairness() {
        let f = class_fairness(&[1.0, 2.0], &[]);
        assert!((f.cpu_unfairness - 2.0).abs() < 1e-12);
        assert!((f.accel_max_slowdown - 1.0).abs() < 1e-12, "no accel: neutral 1.0");
    }

    fn row(u: f64, ws: f64, hs: f64, ast: f64) -> MetricsRow {
        MetricsRow {
            unfairness: u,
            weighted_speedup: ws,
            hmean_speedup: hs,
            ast_per_req: ast,
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_uses_geometric_mean_for_unfairness() {
        let rows = vec![row(1.0, 1.0, 1.0, 0.0), row(4.0, 1.0, 1.0, 0.0)];
        let s = SchedulerSummary::aggregate("x", &rows, &[10, 20]);
        assert!((s.unfairness - 2.0).abs() < 1e-12);
        assert_eq!(s.worst_case_latency, 20);
    }

    #[test]
    fn aggregate_uses_arithmetic_mean_for_ast() {
        let rows = vec![row(1.0, 1.0, 1.0, 100.0), row(1.0, 1.0, 1.0, 300.0)];
        let s = SchedulerSummary::aggregate("x", &rows, &[]);
        assert!((s.ast_per_req - 200.0).abs() < 1e-12);
        assert_eq!(s.worst_case_latency, 0);
    }

    #[test]
    fn aggregate_empty_rows() {
        let s = SchedulerSummary::aggregate("empty", &[], &[]);
        assert_eq!(s.name, "empty");
        assert_eq!(s.unfairness, 0.0);
    }
}
