//! Result records for a single workload run and aggregation across workloads
//! (the shape of the paper's Table 4 rows).

use crate::{geometric_mean, mean};

/// All Section 7.1 metrics for one (workload, scheduler) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRow {
    /// Per-thread memory slowdowns, in thread order.
    pub slowdowns: Vec<f64>,
    /// Per-thread IPC speedups (`IPC_shared / IPC_alone`), in thread order.
    pub speedups: Vec<f64>,
    /// `max slowdown / min slowdown`.
    pub unfairness: f64,
    /// `Σ speedup_i`.
    pub weighted_speedup: f64,
    /// Harmonic mean of the speedups.
    pub hmean_speedup: f64,
    /// Average stall time per DRAM read request across the mix, in cycles.
    pub ast_per_req: f64,
}

/// Aggregate of many [`MetricsRow`]s plus the worst-case request latency, for
/// one scheduler — one row of the paper's Table 4.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerSummary {
    /// Scheduler display name (e.g. "PAR-BS").
    pub name: String,
    /// Geometric mean of per-workload unfairness.
    pub unfairness: f64,
    /// Geometric mean of per-workload weighted speedup.
    pub weighted_speedup: f64,
    /// Geometric mean of per-workload hmean speedup.
    pub hmean_speedup: f64,
    /// Arithmetic mean of per-workload AST/req (cycles).
    pub ast_per_req: f64,
    /// Maximum request latency observed in any run (cycles).
    pub worst_case_latency: u64,
}

impl SchedulerSummary {
    /// Aggregates per-workload rows for a scheduler as the paper does:
    /// geometric mean for unfairness and the two speedups, arithmetic mean for
    /// AST/req, and the maximum of the per-run worst-case latencies.
    ///
    /// # Examples
    ///
    /// ```
    /// use parbs_metrics::{MetricsRow, SchedulerSummary};
    /// let rows = vec![MetricsRow { unfairness: 1.0, weighted_speedup: 2.0,
    ///     hmean_speedup: 0.5, ast_per_req: 100.0, ..Default::default() }];
    /// let s = SchedulerSummary::aggregate("FR-FCFS", &rows, &[12_345]);
    /// assert_eq!(s.worst_case_latency, 12_345);
    /// ```
    #[must_use]
    pub fn aggregate(name: &str, rows: &[MetricsRow], worst_case_latencies: &[u64]) -> Self {
        let unf: Vec<f64> = rows.iter().map(|r| r.unfairness).collect();
        let ws: Vec<f64> = rows.iter().map(|r| r.weighted_speedup).collect();
        let hs: Vec<f64> = rows.iter().map(|r| r.hmean_speedup).collect();
        let ast: Vec<f64> = rows.iter().map(|r| r.ast_per_req).collect();
        SchedulerSummary {
            name: name.to_owned(),
            unfairness: geometric_mean(&unf),
            weighted_speedup: geometric_mean(&ws),
            hmean_speedup: geometric_mean(&hs),
            ast_per_req: mean(&ast),
            worst_case_latency: worst_case_latencies.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(u: f64, ws: f64, hs: f64, ast: f64) -> MetricsRow {
        MetricsRow {
            unfairness: u,
            weighted_speedup: ws,
            hmean_speedup: hs,
            ast_per_req: ast,
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_uses_geometric_mean_for_unfairness() {
        let rows = vec![row(1.0, 1.0, 1.0, 0.0), row(4.0, 1.0, 1.0, 0.0)];
        let s = SchedulerSummary::aggregate("x", &rows, &[10, 20]);
        assert!((s.unfairness - 2.0).abs() < 1e-12);
        assert_eq!(s.worst_case_latency, 20);
    }

    #[test]
    fn aggregate_uses_arithmetic_mean_for_ast() {
        let rows = vec![row(1.0, 1.0, 1.0, 100.0), row(1.0, 1.0, 1.0, 300.0)];
        let s = SchedulerSummary::aggregate("x", &rows, &[]);
        assert!((s.ast_per_req - 200.0).abs() < 1e-12);
        assert_eq!(s.worst_case_latency, 0);
    }

    #[test]
    fn aggregate_empty_rows() {
        let s = SchedulerSummary::aggregate("empty", &[], &[]);
        assert_eq!(s.name, "empty");
        assert_eq!(s.unfairness, 0.0);
    }
}
