//! A fixed-footprint latency histogram with approximate percentiles.
//!
//! Buckets grow geometrically (powers of two), so the histogram covers the
//! full range of DRAM request latencies — from ~100-cycle row hits to
//! multi-thousand-cycle worst cases under QoS schedulers — in 64 counters
//! with bounded relative error.

/// Histogram over `u64` samples with power-of-two buckets.
///
/// # Examples
///
/// ```
/// let mut h = parbs_metrics::LatencyHistogram::new();
/// for v in [100, 200, 400, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.99) >= 8_192);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` (bucket 0: `[0, 2)`).
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
    /// Exact minimum sample; `u64::MAX` sentinel while empty.
    min: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum: 0, max: 0, min: u64::MAX }
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()).saturating_sub(1).min(63) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate `p`-th percentile (`p` in `[0, 1]`): the upper bound of
    /// the bucket containing the percentile rank, clamped to the observed
    /// maximum.
    ///
    /// The edge cases are defined, not accidental: an **empty histogram
    /// returns 0** for every `p`, and **`p = 0.0` returns the exact
    /// observed minimum** (not a bucket bound) — so `percentile(0.0)` and
    /// `percentile(1.0)` bracket the recorded samples exactly via
    /// [`LatencyHistogram::min`] and [`LatencyHistogram::max`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be within [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if p == 0.0 {
            return self.min;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        // The empty sentinel (u64::MAX) is absorbing-neutral under min.
        self.min = self.min.min(other.min);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl parbs_snap::Snap for LatencyHistogram {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        // Sparse bucket encoding: most of the 64 buckets are empty in any
        // real run, so write only (index, count) pairs.
        let occupied: Vec<(usize, u64)> =
            self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect();
        w.put(&occupied);
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.max);
        w.u64(self.min);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        let occupied: Vec<(usize, u64)> = r.get()?;
        let mut h = LatencyHistogram::new();
        for (i, c) in occupied {
            if i >= h.buckets.len() {
                return Err(parbs_snap::SnapError::BadTag {
                    what: "histogram bucket index",
                    value: i as u64,
                });
            }
            h.buckets[i] = c;
        }
        h.count = r.u64()?;
        h.sum = r.u64()?;
        h.max = r.u64()?;
        h.min = r.u64()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0, "empty min is defined as 0");
        assert_eq!(h.percentile(0.0), 0, "empty histogram: every percentile is 0");
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn p_zero_is_the_exact_observed_minimum() {
        let mut h = LatencyHistogram::new();
        for v in [7u64, 100, 6_000] {
            h.record(v);
        }
        // 7 lives in bucket [4, 8); the bucket upper bound would be 7 too,
        // but 100's bucket is [64, 128) — p=0 must not report a bound.
        assert_eq!(h.percentile(0.0), 7);
        assert_eq!(h.min(), 7);
        h.record(3);
        assert_eq!(h.percentile(0.0), 3, "min tracks new smaller samples");
    }

    #[test]
    fn merge_keeps_the_smaller_minimum() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(500);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.percentile(0.0), 20);
        let empty = LatencyHistogram::new();
        a.merge(&empty);
        assert_eq!(a.min(), 20, "merging an empty histogram keeps the minimum");
        let mut c = LatencyHistogram::new();
        c.merge(&a);
        assert_eq!(c.min(), 20, "merging into an empty histogram adopts the minimum");
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn percentile_bounds_contain_sample() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        // True median 500; bucket upper bound 511.
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(1.0), 1000);
        assert!(h.percentile(0.0) >= 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 10_000);
        assert!(a.percentile(1.0) == 10_000);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn percentile_rejects_out_of_range() {
        let _ = LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn zero_sample_goes_to_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(0.5) <= 1);
    }
}
