//! Flow-level metrics for open-loop experiments: flow completion time
//! (FCT) and slowdown-versus-isolation.
//!
//! Open-loop traffic breaks the closed-loop metrics story — there is no
//! IPC, no weighted speedup, no "run alone and compare" second simulation
//! per flow. The datacenter-standard substitutes are:
//!
//! * **FCT percentiles** — how long flows take end to end, tail included;
//! * **slowdown** — FCT divided by an *isolation estimate* of the same
//!   flow's FCT on an unloaded memory system, and the fraction of flows
//!   whose slowdown exceeds a threshold (`slowdown_rate`).
//!
//! The caller supplies the isolation estimate per flow (this crate stays
//! dependency-free and knows nothing about DRAM timing); the simulator uses
//! a self-calibrating proxy documented in `DESIGN.md`.

use crate::LatencyHistogram;

/// Fixed-point scale for recording slowdowns in a [`LatencyHistogram`]
/// (which holds integers): a slowdown of 1.0 is stored as 1000.
const SLOWDOWN_SCALE: f64 = 1000.0;

/// Accumulates per-flow records into FCT and slowdown distributions.
///
/// Mergeable across worker shards like every other metric in this crate;
/// merging two trackers built with different thresholds is a logic error
/// and panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMetrics {
    /// FCT distribution, in cycles.
    fct: LatencyHistogram,
    /// Slowdown distribution, in milli-slowdowns (×1000).
    slowdown_milli: LatencyHistogram,
    /// Flows whose slowdown exceeded the threshold.
    slowed: u64,
    /// Threshold in milli-slowdowns.
    threshold_milli: u64,
}

impl FlowMetrics {
    /// Creates a tracker counting flows slowed by more than
    /// `slowdown_threshold` (e.g. `2.0` = "took over twice its isolated
    /// FCT").
    #[must_use]
    pub fn new(slowdown_threshold: f64) -> Self {
        FlowMetrics {
            fct: LatencyHistogram::new(),
            slowdown_milli: LatencyHistogram::new(),
            slowed: 0,
            threshold_milli: (slowdown_threshold.max(1.0) * SLOWDOWN_SCALE) as u64,
        }
    }

    /// Records one finished flow: its measured FCT and the estimate of its
    /// FCT on an unloaded system. Slowdown clamps below at 1.0 — an
    /// estimate is allowed to be slightly optimistic or pessimistic.
    pub fn record(&mut self, fct: u64, isolated_fct: u64) {
        self.fct.record(fct);
        let slowdown = (fct as f64 / isolated_fct.max(1) as f64).max(1.0);
        let milli = (slowdown * SLOWDOWN_SCALE) as u64;
        self.slowdown_milli.record(milli);
        if milli > self.threshold_milli {
            self.slowed += 1;
        }
    }

    /// Flows recorded so far.
    #[must_use]
    pub fn flows(&self) -> u64 {
        self.fct.count()
    }

    /// Folds another shard's records into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two trackers were built with different slowdown
    /// thresholds.
    pub fn merge(&mut self, other: &FlowMetrics) {
        assert_eq!(self.threshold_milli, other.threshold_milli, "threshold mismatch in merge");
        self.fct.merge(&other.fct);
        self.slowdown_milli.merge(&other.slowdown_milli);
        self.slowed += other.slowed;
    }

    /// Snapshots the distributions into a report row.
    #[must_use]
    pub fn summary(&self) -> FlowSummary {
        let n = self.flows();
        FlowSummary {
            flows: n,
            fct_p50: self.fct.percentile(0.50),
            fct_p95: self.fct.percentile(0.95),
            fct_p99: self.fct.percentile(0.99),
            fct_mean: self.fct.mean(),
            slowdown_p50: self.slowdown_milli.percentile(0.50) as f64 / SLOWDOWN_SCALE,
            slowdown_p99: self.slowdown_milli.percentile(0.99) as f64 / SLOWDOWN_SCALE,
            slowdown_rate: if n == 0 { 0.0 } else { self.slowed as f64 / n as f64 },
        }
    }
}

impl Default for FlowMetrics {
    /// Threshold 2.0: a flow counts as slowed once it takes more than twice
    /// its isolated FCT.
    fn default() -> Self {
        FlowMetrics::new(2.0)
    }
}

/// One report row of flow-level results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSummary {
    /// Flows measured.
    pub flows: u64,
    /// Median FCT, cycles.
    pub fct_p50: u64,
    /// 95th-percentile FCT, cycles.
    pub fct_p95: u64,
    /// 99th-percentile (tail) FCT, cycles.
    pub fct_p99: u64,
    /// Mean FCT, cycles.
    pub fct_mean: f64,
    /// Median slowdown versus isolation.
    pub slowdown_p50: f64,
    /// Tail slowdown versus isolation.
    pub slowdown_p99: f64,
    /// Fraction of flows slowed past the tracker's threshold.
    pub slowdown_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut m = FlowMetrics::new(2.0);
        // 90 flows at slowdown 1.0, 10 at slowdown 8.0.
        for _ in 0..90 {
            m.record(100, 100);
        }
        for _ in 0..10 {
            m.record(800, 100);
        }
        let s = m.summary();
        assert_eq!(s.flows, 100);
        assert!((s.slowdown_rate - 0.1).abs() < 1e-12);
        assert!(s.fct_p99 >= 512, "tail picks up the slow flows: {}", s.fct_p99);
        assert!(s.slowdown_p50 < 2.0 && s.slowdown_p99 > 2.0);
        assert!(s.fct_mean > 100.0 && s.fct_mean < 800.0);
    }

    #[test]
    fn slowdown_clamps_at_one() {
        let mut m = FlowMetrics::default();
        m.record(50, 100); // faster than "isolated": clamps, doesn't count
        let s = m.summary();
        assert_eq!(s.slowdown_rate, 0.0);
        assert!((s.slowdown_p50 - 1.0).abs() < 0.5, "bucketed near 1.0");
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut a = FlowMetrics::new(2.0);
        let mut b = FlowMetrics::new(2.0);
        let mut whole = FlowMetrics::new(2.0);
        for i in 0..200u64 {
            let (fct, iso) = (50 + i * 7, 60);
            if i % 2 == 0 {
                a.record(fct, iso);
            } else {
                b.record(fct, iso);
            }
            whole.record(fct, iso);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "threshold mismatch")]
    fn merge_rejects_mismatched_thresholds() {
        let mut a = FlowMetrics::new(2.0);
        a.merge(&FlowMetrics::new(3.0));
    }

    #[test]
    fn empty_summary_is_all_zeros() {
        let s = FlowMetrics::default().summary();
        assert_eq!(s.flows, 0);
        assert_eq!(s.slowdown_rate, 0.0);
    }
}
