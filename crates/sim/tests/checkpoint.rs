//! Property tests for the checkpoint format: save → resume → save is a
//! byte-level fixed point, a resumed run finishes exactly like the
//! uninterrupted one, and damaged blobs — truncated at any point, or with
//! any header byte flipped — are rejected with the *typed*
//! [`CheckpointError`] for the damaged field, never accepted silently.

use parbs_sim::{CheckpointError, Harness, SchedulerKind, SimConfig, System};
use parbs_workloads::{all_benchmarks, MixSpec};
use proptest::prelude::*;

fn quick_harness(target: u64) -> Harness {
    Harness::new(SimConfig { target_instructions: target, ..SimConfig::for_cores(4) })
}

/// Derives a 4-thread mix from a seed: four benchmarks picked from the
/// full table by independent bytes of the seed.
fn mix_from(seed: u64) -> MixSpec {
    let all = all_benchmarks();
    let names: Vec<&str> =
        (0..4).map(|i| all[((seed >> (8 * i)) as usize ^ i) % all.len()].name).collect();
    MixSpec::from_names("prop", &names)
}

/// Picks one of the seven zoo schedulers.
fn kind_from(pick: u8) -> SchedulerKind {
    let mut zoo = SchedulerKind::zoo_seven();
    zoo.swap_remove(pick as usize % 7)
}

/// Runs `sys` for up to `cut` cycles and checkpoints it there.
fn checkpoint_at(sys: &mut System, cut: u64, label: &str) -> Vec<u8> {
    let mut progress = sys.begin_run();
    for _ in 0..cut {
        if !sys.step_cycle(&mut progress) {
            break;
        }
    }
    sys.save_checkpoint(&progress, label).expect("plain systems are checkpointable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn save_resume_save_is_a_fixed_point_and_finishes_identically(
        seed in any::<u64>(),
        pick in any::<u8>(),
        cut in 500u64..6_000,
    ) {
        let harness = quick_harness(600);
        let mix = mix_from(seed);
        let kind = kind_from(pick);
        let mut straight = harness.shared_system(&mix, &kind, &Default::default());
        let expected = straight.run();

        let mut sys = harness.shared_system(&mix, &kind, &Default::default());
        let blob = checkpoint_at(&mut sys, cut, "prop");

        // Resume into a freshly built system: re-saving immediately must
        // reproduce the blob byte for byte (the codec is canonical).
        let mut clone = harness.shared_system(&mix, &kind, &Default::default());
        let restored = clone.resume(&blob, "prop").expect("self-resume succeeds");
        let blob2 = clone.save_checkpoint(&restored, "prop").expect("still checkpointable");
        prop_assert_eq!(&blob, &blob2, "save -> resume -> save drifted");

        // ... and running the restored system to completion matches the
        // uninterrupted run exactly.
        let mut progress = restored;
        while clone.step_cycle(&mut progress) {}
        prop_assert_eq!(clone.finish_run(progress), expected);
    }

    #[test]
    fn resume_preserves_priority_keys_for_every_scheduler(
        seed in any::<u64>(),
        cut in 500u64..4_000,
    ) {
        // The scheduler-observable state is the packed priority key of
        // every queued read: if save/resume preserves those bit for bit,
        // the restored scheduler makes exactly the decisions the saved one
        // would have. Checked across the full seven-scheduler zoo.
        let harness = quick_harness(600);
        let mix = mix_from(seed);
        for kind in SchedulerKind::zoo_seven() {
            let mut sys = harness.shared_system(&mix, &kind, &Default::default());
            let mut progress = sys.begin_run();
            for _ in 0..cut {
                if !sys.step_cycle(&mut progress) {
                    break;
                }
            }
            let now = progress.cycles();
            let blob = sys.save_checkpoint(&progress, "keys").expect("checkpointable");
            let expected = sys.priority_keys(now);

            let mut fresh = harness.shared_system(&mix, &kind, &Default::default());
            let restored = fresh.resume(&blob, "keys").expect("self-resume succeeds");
            prop_assert_eq!(restored.cycles(), now);
            let got = fresh.priority_keys(now);
            prop_assert_eq!(
                &expected,
                &got,
                "{} priority keys drifted across save/resume",
                kind.name()
            );
        }
    }

    #[test]
    fn any_strict_prefix_of_a_checkpoint_is_rejected(
        seed in any::<u64>(),
        cut_at in any::<u64>(),
    ) {
        let harness = quick_harness(400);
        let mix = mix_from(seed);
        let kind = kind_from((seed >> 32) as u8);
        let mut sys = harness.shared_system(&mix, &kind, &Default::default());
        let blob = checkpoint_at(&mut sys, 1_500, "prop");

        let truncated = &blob[..(cut_at as usize) % blob.len()];
        let mut fresh = harness.shared_system(&mix, &kind, &Default::default());
        match fresh.resume(truncated, "prop") {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "accepted a {}-of-{} byte prefix", truncated.len(), blob.len()),
        }
    }

    #[test]
    fn header_byte_flips_are_rejected_with_the_typed_error(
        seed in any::<u64>(),
        byte in 0usize..20,
        flip in any::<u8>(),
    ) {
        let harness = quick_harness(400);
        let mix = mix_from(seed);
        let kind = kind_from((seed >> 16) as u8);
        let mut sys = harness.shared_system(&mix, &kind, &Default::default());
        let mut blob = checkpoint_at(&mut sys, 1_500, "prop");
        blob[byte] ^= flip.max(1);

        // Header layout: magic [0, 8), version [8, 12), fingerprint [12, 20).
        let mut fresh = harness.shared_system(&mix, &kind, &Default::default());
        let err = fresh.resume(&blob, "prop").expect_err("corrupt header accepted");
        let typed_ok = matches!(
            (byte, &err),
            (0..=7, CheckpointError::BadMagic)
                | (8..=11, CheckpointError::BadVersion { .. })
                | (12..=19, CheckpointError::FingerprintMismatch { .. })
        );
        prop_assert!(typed_ok, "byte {byte} flip produced the wrong error: {err}");
    }

    #[test]
    fn a_checkpoint_never_restores_under_a_different_label(
        seed in any::<u64>(),
        pick in any::<u8>(),
    ) {
        let harness = quick_harness(400);
        let mix = mix_from(seed);
        let kind = kind_from(pick);
        let mut sys = harness.shared_system(&mix, &kind, &Default::default());
        let blob = checkpoint_at(&mut sys, 1_500, "mix-a");
        let mut fresh = harness.shared_system(&mix, &kind, &Default::default());
        let err = fresh.resume(&blob, "mix-b").expect_err("label mismatch accepted");
        prop_assert!(
            matches!(err, CheckpointError::FingerprintMismatch { .. }),
            "expected a fingerprint mismatch, got: {err}"
        );
    }
}
