//! CLI argument handling of `parbs-sim`: malformed option values must be
//! hard errors naming the offending flag, never silent fallbacks to the
//! default (the bug: `--jobs abc` used to run with the default job count).

use std::process::Command;

fn parbs_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parbs-sim"))
}

fn run_expecting_usage_error(args: &[&str], needle: &str) {
    let out = parbs_sim().args(args).output().expect("parbs-sim runs");
    assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "stderr for {args:?} must name the problem ({needle:?}), got: {stderr}"
    );
}

#[test]
fn malformed_jobs_value_is_a_hard_error() {
    run_expecting_usage_error(&["list", "--jobs", "abc"], "--jobs");
}

#[test]
fn negative_ranks_value_is_a_hard_error() {
    run_expecting_usage_error(&["list", "--ranks", "-1"], "--ranks");
}

#[test]
fn malformed_target_value_is_a_hard_error() {
    run_expecting_usage_error(&["list", "--target", "30k"], "--target");
}

#[test]
fn flag_without_a_value_is_a_hard_error() {
    run_expecting_usage_error(&["list", "--seed"], "--seed");
}

#[test]
fn malformed_sweep_count_is_a_hard_error() {
    run_expecting_usage_error(&["sweep", "lots"], "invalid count");
    run_expecting_usage_error(&["mapping-sweep", "many", "--target", "100"], "invalid count");
    run_expecting_usage_error(&["zoo-sweep", "x"], "invalid count");
}

#[test]
fn zero_checkpoint_interval_is_a_hard_error() {
    // `--checkpoint-every 0` would checkpoint never (or spin forever,
    // depending on the reading) — it must be rejected by name, not
    // silently clamped. The interval check sits behind the
    // requires-`--checkpoint-out` check, so both flags are supplied.
    run_expecting_usage_error(
        &[
            "run",
            "lbm",
            "--checkpoint-out",
            "/tmp/parbs-cli-args-test.ckpt",
            "--checkpoint-every",
            "0",
        ],
        "--checkpoint-every",
    );
}

#[test]
fn checkpoint_interval_without_a_sink_is_a_hard_error() {
    run_expecting_usage_error(&["run", "lbm", "--checkpoint-every", "1000"], "--checkpoint-out");
}

#[test]
fn non_power_of_two_lanes_is_a_hard_error() {
    // Lane kernels are monomorphized for widths 1/2/4; any other width
    // must be a hard error naming --lanes, never a silent scalar fallback.
    run_expecting_usage_error(&["list", "--lanes", "3"], "--lanes");
    run_expecting_usage_error(&["run", "lbm", "--lanes", "8"], "--lanes");
    run_expecting_usage_error(&["zoo-sweep", "0", "--lanes", "0"], "--lanes");
}

#[test]
fn valid_flags_still_parse() {
    let out = parbs_sim()
        .args(["bench", "lbm", "--target", "500", "--seed", "7"])
        .output()
        .expect("parbs-sim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("lbm alone"));
}

#[test]
fn sweep_count_may_be_omitted_before_flags() {
    // `sweep --target N` has no positional count; the flag must not be
    // mistaken for (and rejected as) a count.
    let out = parbs_sim()
        .args(["zoo-sweep", "0", "--target", "400", "--jobs", "2"])
        .output()
        .expect("parbs-sim runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BLISS") && stdout.contains("ATLAS"), "zoo table lists the zoo");
}
