//! Acceptance check for the streaming-accelerator agent class: a GPU-like
//! streamer (very high MPKI, very high row-buffer locality) sharing DRAM
//! with CPU threads must *measurably degrade CPU-thread fairness* under
//! row-hit-first FR-FCFS — the streamer's open-row bursts starve the CPUs
//! while it barely slows down itself — whereas blacklisting (BLISS) and
//! request batching (PAR-BS) contain the damage.

use parbs_metrics::{class_fairness, ClassFairness};
use parbs_sim::{EvalJob, EvalPlan, Harness, MixEvaluation, SchedulerKind, SimConfig};
use parbs_workloads::{accel_case_study, MixSpec};

fn evaluate(mix: &MixSpec, kind: SchedulerKind) -> MixEvaluation {
    let cfg = SimConfig { target_instructions: 10_000, ..SimConfig::for_cores(mix.cores()) };
    let harness = Harness::new(cfg);
    let mut plan = EvalPlan::new();
    plan.push(EvalJob::new(mix.clone(), kind));
    harness.run_plan(&plan, 1).remove(0)
}

fn class_split(mix: &MixSpec, eval: &MixEvaluation) -> ClassFairness {
    class_fairness(&eval.metrics.slowdowns, &mix.accel_mask())
}

#[test]
fn accelerator_degrades_cpu_fairness_under_frfcfs_but_not_bliss_or_parbs() {
    let with_accel = accel_case_study();
    let cpu_names: Vec<&str> = with_accel.benchmarks.iter().take(3).map(|b| b.name).collect();
    let cpus_only = MixSpec::from_names("cpus-only", &cpu_names);

    let baseline = evaluate(&cpus_only, SchedulerKind::FrFcfs);
    let frfcfs = evaluate(&with_accel, SchedulerKind::FrFcfs);
    let bliss = evaluate(&with_accel, SchedulerKind::Bliss(Default::default()));
    let parbs = evaluate(&with_accel, SchedulerKind::ParBs(Default::default()));

    // Adding the streamer must blow up FR-FCFS unfairness: the CPUs pay,
    // the streamer does not.
    assert!(
        frfcfs.metrics.unfairness > 2.0 * baseline.metrics.unfairness,
        "streamer must degrade FR-FCFS fairness: {:.2} with accel vs {:.2} without",
        frfcfs.metrics.unfairness,
        baseline.metrics.unfairness
    );
    let split = class_split(&with_accel, &frfcfs);
    assert!(
        split.cpu_max_slowdown > 3.0 * split.accel_max_slowdown,
        "FR-FCFS serves the streamer's row hits while CPUs starve \
         (cpu max {:.2}, accel {:.2})",
        split.cpu_max_slowdown,
        split.accel_max_slowdown
    );

    // BLISS and PAR-BS contain the streamer: lower system unfairness and a
    // lower worst CPU slowdown than FR-FCFS on the same mix.
    for (name, eval) in [("BLISS", &bliss), ("PAR-BS", &parbs)] {
        assert!(
            eval.metrics.unfairness < frfcfs.metrics.unfairness,
            "{name} must beat FR-FCFS unfairness: {:.2} vs {:.2}",
            eval.metrics.unfairness,
            frfcfs.metrics.unfairness
        );
        let s = class_split(&with_accel, eval);
        assert!(
            s.cpu_max_slowdown < split.cpu_max_slowdown,
            "{name} must shrink the worst CPU slowdown: {:.2} vs FR-FCFS {:.2}",
            s.cpu_max_slowdown,
            split.cpu_max_slowdown
        );
    }
}
