//! Integration tests for the experiment harness itself: labels, row
//! alignment, Table 3 coverage, and the plan/collation plumbing the figure
//! binaries rely on.

use parbs_sim::experiments::{
    batching_plan, marking_cap_plan, paper_five_labeled, ranking_kinds, sweep_plan, table3_rows,
};
use parbs_sim::{Harness, SimConfig};
use parbs_workloads::{all_benchmarks, random_mixes};

fn quick_harness() -> Harness {
    Harness::new(SimConfig { target_instructions: 800, ..SimConfig::for_cores(4) })
}

#[test]
fn sweep_rows_align_with_mixes_and_kinds() {
    let h = quick_harness();
    let mixes = random_mixes(4, 3, 5);
    let kinds = paper_five_labeled();
    let sweep = sweep_plan(&mixes, &kinds);
    assert_eq!(sweep.job_count(), mixes.len() * kinds.len());
    let rows = sweep.run(&h, 4);
    assert_eq!(rows.len(), kinds.len());
    for (row, (label, _)) in rows.iter().zip(&kinds) {
        assert_eq!(&row.label, label);
        assert_eq!(row.evaluations.len(), mixes.len());
        for (eval, mix) in row.evaluations.iter().zip(&mixes) {
            assert_eq!(eval.mix, mix.name);
            assert_eq!(eval.thread_names.len(), 4);
        }
    }
}

#[test]
fn marking_cap_sweep_labels_follow_paper() {
    let h = quick_harness();
    let mixes = random_mixes(4, 1, 5);
    let rows = marking_cap_plan(&mixes, &[Some(1), Some(20), None]).run(&h, 2);
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["c=1", "c=20", "no-c"]);
}

#[test]
fn batching_sweep_has_nine_variants() {
    let h = quick_harness();
    let mixes = random_mixes(4, 1, 5);
    let rows = batching_plan(&mixes).run(&h, 4);
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(
        labels,
        [
            "st-400", "st-800", "st-1600", "st-3200", "st-6400", "st-12800", "st-25600", "eslot",
            "full"
        ]
    );
}

#[test]
fn ranking_kinds_cover_figure13() {
    let labels: Vec<String> = ranking_kinds().into_iter().map(|(l, _)| l).collect();
    assert_eq!(labels.len(), 7);
    assert!(labels.contains(&"max-total(PAR-BS)".to_owned()));
    assert!(labels.contains(&"no-rank(FCFS)".to_owned()));
    assert!(labels.contains(&"STFM".to_owned()));
}

#[test]
fn table3_covers_all_28_benchmarks_in_order() {
    let h = quick_harness();
    let rows = table3_rows(&h, 4);
    assert_eq!(rows.len(), 28);
    for (row, bench) in rows.iter().zip(all_benchmarks()) {
        assert_eq!(row.bench.number, bench.number);
        assert!(row.mpki >= 0.0);
        assert!((0.0..=1.0).contains(&row.rb_hit));
    }
    // The intensity ordering survives measurement at even a tiny scale:
    // mcf must be far more intensive than gromacs.
    let mcf = rows.iter().find(|r| r.bench.name == "mcf").unwrap();
    let gromacs = rows.iter().find(|r| r.bench.name == "gromacs").unwrap();
    assert!(mcf.mpki > 20.0 * gromacs.mpki.max(0.01));
}

#[test]
fn summaries_aggregate_consistently() {
    let h = quick_harness();
    let mixes = random_mixes(4, 2, 5);
    let rows = sweep_plan(&mixes, &paper_five_labeled()).run(&h, 4);
    for row in &rows {
        let summary = row.summary();
        assert_eq!(summary.name, row.label);
        assert!(summary.unfairness >= 1.0);
        let max_wc = row.evaluations.iter().map(|e| e.worst_case_latency).max().unwrap();
        assert_eq!(summary.worst_case_latency, max_wc);
    }
}

#[test]
fn mapping_sweep_labels_span_the_grid() {
    let h = quick_harness();
    let rows = parbs_sim::experiments::mapping_sweep_rows(h.config().dram.geometry);
    assert_eq!(rows.len(), 84, "2 policies x 2 xor x 3 rank counts x 7 schedulers");
    let r1_baseline = rows
        .iter()
        .filter(|(l, _, o)| {
            l.starts_with("row/r1/")
                && o.geometry.unwrap().ranks_per_channel == 1
                && o.mapping.unwrap() == parbs_dram::MappingPolicy::baseline()
        })
        .count();
    assert_eq!(r1_baseline, 7, "the baseline shape appears once per scheduler");
}
