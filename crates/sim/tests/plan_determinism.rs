//! Tier-1 determinism guarantee of the parallel executor: a plan run at
//! any `--jobs` level produces identical output, row for row, because the
//! simulation is deterministic, alone baselines are keyed (not
//! order-dependent), and results are collated in plan order.

use parbs_sim::experiments::{paper_five_labeled, priority_weighted_plan, sweep_plan};
use parbs_sim::{EvalJob, EvalPlan, Harness, SchedulerKind, SimConfig};
use parbs_workloads::{case_study_1, random_mixes};

fn quick_cfg() -> SimConfig {
    SimConfig { target_instructions: 800, ..SimConfig::for_cores(4) }
}

#[test]
fn two_mix_five_scheduler_plan_is_identical_at_jobs_1_and_4() {
    // The ISSUE-mandated grid: 2 mixes x 5 schedulers = 10 jobs. Fresh
    // harness per run so neither path starts with a warm alone cache.
    let mixes = random_mixes(4, 2, 7);
    let sweep = sweep_plan(&mixes, &paper_five_labeled());
    assert_eq!(sweep.job_count(), 10);

    let serial = Harness::new(quick_cfg()).run_plan(sweep.plan(), 1);
    let parallel = Harness::new(quick_cfg()).run_plan(sweep.plan(), 4);

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "row {i} diverged between jobs=1 and jobs=4");
    }
    // Belt and braces: the full vectors compare equal in one shot (same
    // order, `==` rows), and even their Debug renderings are identical.
    assert_eq!(serial, parallel);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

#[test]
fn override_jobs_are_deterministic_across_jobs_levels() {
    // Weight/priority overrides travel inside the job, not via config
    // mutation, so they cannot leak between concurrently running jobs.
    let plan = priority_weighted_plan();
    let serial = Harness::new(quick_cfg()).run_plan(&plan, 1);
    let parallel = Harness::new(quick_cfg()).run_plan(&plan, 4);
    assert_eq!(serial, parallel);
}

#[test]
fn warm_cache_does_not_change_results() {
    // Re-running a plan on the same harness hits the alone cache for every
    // baseline and must return the exact same rows.
    let harness = Harness::new(quick_cfg());
    let mut plan = EvalPlan::new();
    plan.push(EvalJob::new(case_study_1(), SchedulerKind::FrFcfs));
    plan.push(EvalJob::new(case_study_1(), SchedulerKind::Stfm));
    let cold = harness.run_plan(&plan, 2);
    let misses_after_cold = harness.cache_stats().misses;
    let warm = harness.run_plan(&plan, 2);
    assert_eq!(cold, warm);
    assert_eq!(
        harness.cache_stats().misses,
        misses_after_cold,
        "second run must not simulate any new baselines"
    );
}
