//! Tier-1 determinism guarantee of the parallel executor: a plan run at
//! any `--jobs` level produces identical output, row for row, because the
//! simulation is deterministic, alone baselines are keyed (not
//! order-dependent), and results are collated in plan order.

use parbs::{ParBsConfig, ParBsScheduler};
use parbs_dram::{Controller, DramConfig, LineAddr, Request, RequestKind, ThreadId};
use parbs_obs::{downcast_sink, ChromeTraceSink};
use parbs_sim::experiments::{
    paper_five_labeled, priority_weighted_plan, sweep_plan, zoo_sweep_plan,
};
use parbs_sim::{AnyBackend, EvalJob, EvalPlan, Harness, SchedulerKind, SimConfig};
use parbs_workloads::{
    accel_case_study, case_study_1, case_study_2, case_study_3, cpu_accel_mixes, random_mixes,
};

fn quick_cfg() -> SimConfig {
    SimConfig { target_instructions: 800, ..SimConfig::for_cores(4) }
}

#[test]
fn two_mix_five_scheduler_plan_is_identical_at_jobs_1_and_4() {
    // The ISSUE-mandated grid: 2 mixes x 5 schedulers = 10 jobs. Fresh
    // harness per run so neither path starts with a warm alone cache.
    let mixes = random_mixes(4, 2, 7);
    let sweep = sweep_plan(&mixes, &paper_five_labeled());
    assert_eq!(sweep.job_count(), 10);

    let serial = Harness::new(quick_cfg()).run_plan(sweep.plan(), 1);
    let parallel = Harness::new(quick_cfg()).run_plan(sweep.plan(), 4);

    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "row {i} diverged between jobs=1 and jobs=4");
    }
    // Belt and braces: the full vectors compare equal in one shot (same
    // order, `==` rows), and even their Debug renderings are identical.
    assert_eq!(serial, parallel);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

#[test]
fn zoo_sweep_is_identical_at_jobs_1_and_4() {
    // The seven-scheduler zoo (paper five + BLISS + ATLAS) over mixed
    // CPU/accelerator workloads: BLISS's blacklist clearing and ATLAS's
    // quantum rollovers are driven purely by simulated cycles, so the
    // trace — and the collated table — must be byte-identical at any
    // worker count.
    let mut mixes = vec![accel_case_study()];
    mixes.extend(cpu_accel_mixes(4, 1, 7));
    let sweep = zoo_sweep_plan(&mixes);
    assert_eq!(sweep.job_count(), 14);

    let serial = Harness::new(quick_cfg()).run_plan(sweep.plan(), 1);
    let parallel = Harness::new(quick_cfg()).run_plan(sweep.plan(), 4);
    assert_eq!(serial, parallel);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

#[test]
fn override_jobs_are_deterministic_across_jobs_levels() {
    // Weight/priority overrides travel inside the job, not via config
    // mutation, so they cannot leak between concurrently running jobs.
    let plan = priority_weighted_plan();
    let serial = Harness::new(quick_cfg()).run_plan(&plan, 1);
    let parallel = Harness::new(quick_cfg()).run_plan(&plan, 4);
    assert_eq!(serial, parallel);
}

/// The Figure 3 micro-example on the cycle-level controller, traced: a
/// light thread with one request on each of banks 0-2 and a heavy thread
/// with five requests on bank 3, drained under default PAR-BS.
fn fig3_chrome_trace() -> String {
    let mut ctrl = Controller::new(
        DramConfig::default(),
        Box::new(ParBsScheduler::new(ParBsConfig::default())),
    );
    ctrl.set_event_sink(Box::new(ChromeTraceSink::new()));
    let reqs = [
        (1usize, 3usize, 10u64),
        (0, 0, 1),
        (1, 3, 11),
        (0, 1, 1),
        (1, 3, 12),
        (0, 2, 1),
        (1, 3, 13),
        (1, 3, 14),
    ];
    for (i, (thread, bank, row)) in reqs.iter().enumerate() {
        let addr = LineAddr { channel: 0, bank: *bank, row: *row, col: 0 };
        ctrl.try_enqueue(Request::new(i as u64, ThreadId(*thread), addr, RequestKind::Read, 0))
            .unwrap();
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    assert_eq!(done.len(), reqs.len());
    // A straggler after the drain opens batch 2, which closes batch 1 and
    // gets its formation→drain span into the trace.
    let addr = LineAddr { channel: 0, bank: 0, row: 2, col: 0 };
    ctrl.try_enqueue(Request::new(99, ThreadId(0), addr, RequestKind::Read, now)).unwrap();
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    assert_eq!(done.len(), 1);
    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(sink) = downcast_sink::<ChromeTraceSink>(sink) else {
        panic!("the attached sink is a ChromeTraceSink");
    };
    sink.finish()
}

#[test]
fn chrome_trace_of_fig3_micro_example_is_byte_identical_across_jobs_levels() {
    // Generate the golden trace next to a jobs=1 plan run and the candidate
    // next to a jobs=4 run of the same plan: neither parallel plan
    // execution nor harness state may perturb a traced run's bytes.
    let mixes = random_mixes(4, 1, 7);
    let sweep = sweep_plan(&mixes, &paper_five_labeled());
    let golden = {
        let _rows = Harness::new(quick_cfg()).run_plan(sweep.plan(), 1);
        fig3_chrome_trace()
    };
    let candidate = {
        let _rows = Harness::new(quick_cfg()).run_plan(sweep.plan(), 4);
        fig3_chrome_trace()
    };
    assert_eq!(golden, candidate, "trace bytes diverged between jobs=1 and jobs=4 contexts");
    // Golden-shape assertions: Perfetto-loadable JSON with per-bank and
    // per-thread tracks, the batch span, and the ranking instant.
    assert!(golden.starts_with("{\"displayTimeUnit\""));
    assert!(golden.ends_with("]}\n"));
    for needle in
        ["\"bank 3\"", "\"thread 0\"", "\"thread 1\"", "\"batch 1\"", "\"rank\"", "process_name"]
    {
        assert!(golden.contains(needle), "golden trace lacks {needle}");
    }
}

#[test]
fn lane_backends_match_scalar_on_case_studies_under_all_seven_schedulers() {
    // The tentpole guarantee: the many-lane lockstep kernel is an execution
    // strategy, not a semantic change. Every case study under every zoo
    // scheduler must produce the same rows whichever backend runs the plan.
    let mixes = [case_study_1(), case_study_2(), case_study_3()];
    let plan = EvalPlan::product(&mixes, &SchedulerKind::zoo_seven());
    let scalar = Harness::new(quick_cfg()).run_plan(&plan, 2);
    for backend in [AnyBackend::Scalar, AnyBackend::Lanes2, AnyBackend::Lanes4] {
        let lanes = Harness::new(quick_cfg()).run_plan_with(&plan, 2, &backend);
        assert_eq!(scalar, lanes, "{} diverged from run_plan", backend.name());
        assert_eq!(format!("{scalar:?}"), format!("{lanes:?}"));
    }
}

#[test]
fn lane_batched_random_mix_sweep_is_identical_at_every_jobs_level() {
    // Lane batching composes with the worker-thread executor: groups are
    // collated in plan order, so jobs=1 and jobs=4 under Lanes<4> both
    // reproduce the plain scalar run row for row.
    let mixes = random_mixes(4, 3, 11);
    let sweep = sweep_plan(&mixes, &paper_five_labeled());
    let scalar = Harness::new(quick_cfg()).run_plan(sweep.plan(), 1);
    for jobs in [1, 4] {
        let rows = Harness::new(quick_cfg()).run_plan_with(sweep.plan(), jobs, &AnyBackend::Lanes4);
        assert_eq!(scalar, rows, "Lanes<4> at jobs={jobs} diverged from scalar");
    }
}

#[test]
fn checkpoint_resume_matches_uninterrupted_run_through_the_harness_seam() {
    // Save at an arbitrary mid-run cycle, rebuild the system from scratch,
    // resume from the blob, and finish: the result must be byte-identical
    // to the never-interrupted run, for every scheduler in the zoo.
    let harness = Harness::new(quick_cfg());
    let mix = case_study_1();
    for kind in SchedulerKind::zoo_seven() {
        let mut straight = harness.shared_system(&mix, &kind, &Default::default());
        let expected = straight.run();

        let mut first = harness.shared_system(&mix, &kind, &Default::default());
        let mut progress = first.begin_run();
        for _ in 0..3_000 {
            if !first.step_cycle(&mut progress) {
                break;
            }
        }
        let blob = first.save_checkpoint(&progress, &mix.name).expect("checkpointable system");
        drop(first);

        let mut second = harness.shared_system(&mix, &kind, &Default::default());
        let mut progress = second.resume(&blob, &mix.name).expect("fingerprint matches");
        while second.step_cycle(&mut progress) {}
        let resumed = second.finish_run(progress);
        assert_eq!(expected, resumed, "{} diverged after resume", kind.name());
        assert_eq!(format!("{expected:?}"), format!("{resumed:?}"));
    }
}

#[test]
fn warm_cache_does_not_change_results() {
    // Re-running a plan on the same harness hits the alone cache for every
    // baseline and must return the exact same rows.
    let harness = Harness::new(quick_cfg());
    let mut plan = EvalPlan::new();
    plan.push(EvalJob::new(case_study_1(), SchedulerKind::FrFcfs));
    plan.push(EvalJob::new(case_study_1(), SchedulerKind::Stfm));
    let cold = harness.run_plan(&plan, 2);
    let misses_after_cold = harness.cache_stats().misses;
    let warm = harness.run_plan(&plan, 2);
    assert_eq!(cold, warm);
    assert_eq!(
        harness.cache_stats().misses,
        misses_after_cold,
        "second run must not simulate any new baselines"
    );
}
