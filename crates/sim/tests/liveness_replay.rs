//! Cross-validation of the liveness model checker against the simulator's
//! observability stack: the witness traces `parbs-analyze check-liveness`
//! emits are replayed through the obs event bus into the *same*
//! `prelude:invariants` monitor spec that judges real simulated runs. A
//! clean replay means the abstract model's serves speak the exact event
//! protocol the simulator emits (marking, batch formation, completion
//! accounting) — so a bound proved on the model is a statement about the
//! same discipline the simulator implements, not a private re-definition.

use parbs_analyze::{check_scheduler_liveness, LivenessConfig, LivenessVerdict, ALL_SCHEDULERS};
use parbs_monitor::prelude;
use parbs_obs::EventSink;
use parbs_sim::{run_observed, ObserveOptions, SchedulerKind, SimConfig};
use parbs_workloads::case_study_1;

/// Replays `events` through a fresh `prelude:invariants` monitor and
/// returns it for inspection.
fn monitored(events: &[parbs_obs::Event]) -> parbs_monitor::Monitor {
    let mut mon = prelude::invariants().monitor();
    for e in events {
        mon.record(e);
    }
    mon
}

#[test]
fn every_zoo_witness_replays_clean_through_the_invariant_spec() {
    let cfg = LivenessConfig::tiny();
    for name in ALL_SCHEDULERS {
        let report = check_scheduler_liveness(name, &cfg).expect("zoo schedulers have contracts");
        assert!(report.claim_verified(), "{report}");
        let witness = report.witness.as_ref().expect("closed explorations carry a witness");
        let events = witness.to_events(&report.policy, &cfg);
        assert!(!events.is_empty(), "{name} witness must produce events");
        let mon = monitored(&events);
        assert!(
            mon.ok(),
            "{name} witness replay tripped invariants: {} / {:?}",
            mon.summary(),
            mon.alarms()
        );
    }
}

#[test]
fn the_starvation_lasso_is_observable_on_the_event_bus() {
    // The FR-FCFS lasso unrolls into a concrete event stream: the victim
    // is enqueued and never completes, while the hammering adversary's
    // requests complete forever — visible, protocol-clean starvation.
    let cfg = LivenessConfig::tiny();
    let report = check_scheduler_liveness("FR-FCFS", &cfg).unwrap();
    assert!(matches!(report.verdict, LivenessVerdict::Unbounded));
    let witness = report.witness.as_ref().unwrap();
    assert!(!witness.cycle.is_empty(), "a lasso has a cycle");
    let events = witness.to_events(&report.policy, &cfg);
    let mon = monitored(&events);
    assert!(mon.ok(), "{} / {:?}", mon.summary(), mon.alarms());
    // The victim (thread 0) is enqueued but never completed.
    let victim_enqueued =
        events.iter().any(|e| matches!(e, parbs_obs::Event::Enqueued { thread: 0, .. }));
    let victim_completed =
        events.iter().any(|e| matches!(e, parbs_obs::Event::Completed { thread: 0, .. }));
    assert!(victim_enqueued && !victim_completed, "the lasso starves the victim observably");
}

#[test]
fn the_same_spec_judges_model_witnesses_and_simulated_runs() {
    // One spec, two worlds: a real PAR-BS simulation must be clean under
    // `prelude:invariants`, and so must the model checker's PAR-BS
    // witness — the cross-validation that makes the proved bound about
    // the same discipline the simulator implements.
    let mix = case_study_1();
    let sim_cfg = SimConfig { target_instructions: 1_500, ..SimConfig::for_cores(mix.cores()) };
    let opts =
        ObserveOptions { check_invariants: false, trace: None, spec: Some(prelude::invariants()) };
    let obs = run_observed(sim_cfg, &mix, &SchedulerKind::ParBs(Default::default()), &opts);
    assert_eq!(obs.alarm_count, 0, "{:?}", obs.monitors);
    assert!(obs.monitors.iter().all(|m| m.ok));

    let cfg = LivenessConfig::tiny();
    let report = check_scheduler_liveness("PAR-BS", &cfg).unwrap();
    let events = report.witness.as_ref().unwrap().to_events(&report.policy, &cfg);
    let mon = monitored(&events);
    assert!(mon.ok(), "{} / {:?}", mon.summary(), mon.alarms());
}
