//! End-to-end tests of the open-loop flow frontend: determinism across
//! worker counts and a 10k-requester smoke run.

use parbs_sim::{run_flow, run_flow_sweep, SchedulerKind, SimConfig};
use parbs_workloads::{BoundedPareto, FlowConfig};

fn quick_flows() -> FlowConfig {
    FlowConfig {
        requesters: 64,
        arrival_rate: 0.02,
        size: BoundedPareto { alpha: 1.2, min: 2, max: 16 },
        request_gap: 4,
        line_space: 1 << 20,
        seed: 42,
    }
}

#[test]
fn sweep_results_identical_at_any_jobs_level() {
    let cfg = SimConfig::for_cores(4);
    let schedulers = [SchedulerKind::FrFcfs, SchedulerKind::ParBs(Default::default())];
    let scales = [16, 64];
    let flows = quick_flows();
    let serial = run_flow_sweep(&cfg, &schedulers, &scales, &flows, false, None, 1);
    let fanned = run_flow_sweep(&cfg, &schedulers, &scales, &flows, false, None, 4);
    assert_eq!(serial.len(), fanned.len());
    for (a, b) in serial.iter().zip(&fanned) {
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.requesters, b.requesters);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.summary, b.summary, "{} @ {} diverged across jobs", a.scheduler, a.requesters);
        assert_eq!(a.drive.cycles, b.drive.cycles);
        assert_eq!(a.drive.read_latency, b.drive.read_latency);
        assert_eq!(a.drive.peak_backlog, b.drive.peak_backlog);
    }
}

#[test]
fn ten_thousand_requesters_complete() {
    // 16-core DRAM shape (4 channels) so a 10k-flow open-loop run stays
    // under service capacity and drains promptly; sizes kept small — this
    // is a scale smoke test, not a load test.
    let cfg = SimConfig::for_cores(16);
    let flows = FlowConfig {
        requesters: 10_000,
        arrival_rate: 0.05,
        size: BoundedPareto { alpha: 1.2, min: 2, max: 4 },
        request_gap: 2,
        line_space: 1 << 22,
        seed: 7,
    };
    let r = run_flow(&cfg, &SchedulerKind::ParBs(Default::default()), &flows, false, None);
    assert!(!r.drive.timed_out, "10k flows drain in {} cycles", r.drive.cycles);
    assert_eq!(r.completed, 10_000);
    assert_eq!(r.summary.flows, 10_000);
    assert!(r.summary.slowdown_p50 >= 1.0);
}
