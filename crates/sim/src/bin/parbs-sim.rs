//! `parbs-sim` — command-line front end for the PAR-BS reproduction.
//!
//! ```text
//! parbs-sim case-study <1|2|3>          run a paper case study (Figs. 5-7)
//! parbs-sim mix <bench,bench,...>       run a custom mix under all schedulers
//! parbs-sim bench <name>                run one benchmark alone (Table 3 row)
//! parbs-sim list                        list the 28 synthetic benchmarks
//! parbs-sim sweep [n]                   n random 4-core mixes (default 10)
//! parbs-sim trace <file> [file...]      run trace files (one per core)
//!
//! options: --target <instructions>   per-thread run length (default 30000)
//!          --seed <seed>             workload seed (default 42)
//! ```

use parbs_sim::{experiments, SchedulerKind, Session, SimConfig};
use parbs_workloads::{
    all_benchmarks, by_name, case_study_1, case_study_2, case_study_3, random_mixes, MixSpec,
};

fn value_of(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn print_evals(evals: &[parbs_sim::MixEvaluation]) {
    if let Some(first) = evals.first() {
        print!("{:10}", "scheduler");
        for name in &first.thread_names {
            print!(" {name:>11}");
        }
        println!(" {:>10} {:>7} {:>7} {:>7} {:>7}", "unfairness", "wspeed", "hspeed", "ast", "wc");
    }
    for e in evals {
        print!("{:10}", e.scheduler);
        for s in &e.metrics.slowdowns {
            print!(" {s:>11.2}");
        }
        println!(
            " {:>10.2} {:>7.3} {:>7.3} {:>7.1} {:>7}",
            e.metrics.unfairness,
            e.metrics.weighted_speedup,
            e.metrics.hmean_speedup,
            e.metrics.ast_per_req,
            e.worst_case_latency
        );
    }
}

fn session_for(mix: &MixSpec, target: u64) -> Session {
    Session::new(SimConfig { target_instructions: target, ..SimConfig::for_cores(mix.cores()) })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = value_of(&args, "--target").unwrap_or(30_000);
    let seed = value_of(&args, "--seed").unwrap_or(42);
    match args.first().map(String::as_str) {
        Some("case-study") => {
            let mix = match args.get(1).map(String::as_str) {
                Some("1") => case_study_1(),
                Some("2") => case_study_2(),
                Some("3") => case_study_3(),
                other => {
                    eprintln!("unknown case study {other:?}; expected 1, 2 or 3");
                    std::process::exit(2);
                }
            };
            let mut s = session_for(&mix, target);
            println!("case study {} ({} cores):", mix.name, mix.cores());
            print_evals(&experiments::compare_schedulers(&mut s, &mix));
        }
        Some("mix") => {
            let Some(list) = args.get(1) else {
                eprintln!("usage: parbs-sim mix <bench,bench,...>");
                std::process::exit(2);
            };
            let names: Vec<&str> = list.split(',').collect();
            for n in &names {
                if by_name(n).is_none() {
                    eprintln!("unknown benchmark '{n}'; try `parbs-sim list`");
                    std::process::exit(2);
                }
            }
            let mix = MixSpec::from_names("custom", &names);
            let mut s = session_for(&mix, target);
            print_evals(&experiments::compare_schedulers(&mut s, &mix));
        }
        Some("bench") => {
            let Some(bench) = args.get(1).and_then(|n| by_name(n)) else {
                eprintln!("usage: parbs-sim bench <name>  (see `parbs-sim list`)");
                std::process::exit(2);
            };
            let mix = MixSpec { name: bench.name.to_owned(), benchmarks: vec![bench] };
            let mut s = Session::new(SimConfig {
                cores: 1,
                target_instructions: target,
                ..SimConfig::for_cores(4)
            });
            let r = s.run_shared(&mix, &SchedulerKind::FrFcfs);
            let t = r.threads[0];
            println!(
                "{} alone: MCPI {:.2} (paper {:.2})  MPKI {:.1} ({:.1})  RB hit {:.2} ({:.2})  BLP {:.2} ({:.2})  AST/req {:.0} ({:.0})",
                bench.name, t.mcpi(), bench.paper.mcpi, t.mpki(), bench.paper.mpki,
                r.row_hit_rate, bench.paper.rb_hit, t.blp, bench.paper.blp,
                t.ast_per_req(), bench.paper.ast_per_req
            );
        }
        Some("list") => {
            println!(
                "{:>2} {:12} {:>7} {:>7} {:>6} {:>9}",
                "#", "name", "MPKI", "RBhit", "BLP", "category"
            );
            for b in all_benchmarks() {
                println!(
                    "{:>2} {:12} {:>7.2} {:>7.2} {:>6.2} {:>9}",
                    b.number, b.name, b.mpki, b.row_hit, b.blp, b.category
                );
            }
        }
        Some("trace") => {
            let paths: Vec<&String> =
                args.iter().skip(1).take_while(|a| !a.starts_with("--")).collect();
            if paths.is_empty() {
                eprintln!("usage: parbs-sim trace <file> [file...]");
                std::process::exit(2);
            }
            let mut streams: Vec<Box<dyn parbs_cpu::InstructionStream>> = Vec::new();
            for p in &paths {
                match parbs_workloads::load_trace(std::path::Path::new(p)) {
                    Ok(s) => streams.push(Box::new(s)),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            let cores = streams.len();
            let cfg = parbs_sim::SimConfig {
                cores,
                target_instructions: target,
                ..parbs_sim::SimConfig::for_cores(cores.max(4))
            };
            let mut sys =
                parbs_sim::System::new(cfg, streams, &SchedulerKind::ParBs(Default::default()));
            let r = sys.run();
            println!(
                "{:24} {:>7} {:>7} {:>6} {:>8} {:>6}",
                "trace", "MCPI", "MPKI", "BLP", "AST/req", "RBhit"
            );
            for (p, t) in paths.iter().zip(&r.threads) {
                println!(
                    "{:24} {:>7.2} {:>7.1} {:>6.2} {:>8.0} {:>6.2}",
                    p,
                    t.mcpi(),
                    t.mpki(),
                    t.blp,
                    t.ast_per_req(),
                    t.read_hit_rate
                );
            }
            println!("cycles: {} (PAR-BS)", r.cycles);
        }
        Some("sweep") => {
            let n = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(10usize);
            let mut s =
                Session::new(SimConfig { target_instructions: target, ..SimConfig::for_cores(4) });
            let mixes = random_mixes(4, n, seed);
            let rows = experiments::sweep(&mut s, &mixes, &experiments::paper_five_labeled());
            println!(
                "{:10} {:>10} {:>7} {:>7} {:>7} {:>8}",
                "scheduler", "unfairness", "wspeed", "hspeed", "ast", "wc"
            );
            for row in &rows {
                let sm = row.summary();
                println!(
                    "{:10} {:>10.3} {:>7.3} {:>7.3} {:>7.1} {:>8}",
                    sm.name,
                    sm.unfairness,
                    sm.weighted_speedup,
                    sm.hmean_speedup,
                    sm.ast_per_req,
                    sm.worst_case_latency
                );
            }
        }
        _ => {
            eprintln!(
                "usage: parbs-sim <case-study 1|2|3 | mix a,b,c,d | bench name | list | sweep [n]> [--target N] [--seed N]"
            );
            std::process::exit(2);
        }
    }
}
