//! `parbs-sim` — command-line front end for the PAR-BS reproduction.
//!
//! ```text
//! parbs-sim case-study <1|2|3>          run a paper case study (Figs. 5-7)
//! parbs-sim mix <bench,bench,...>       run a custom mix under all schedulers
//! parbs-sim bench <name>                run one benchmark alone (Table 3 row)
//! parbs-sim list                        list the 28 synthetic benchmarks
//! parbs-sim sweep [n]                   n random 4-core mixes (default 10)
//! parbs-sim trace <file> [file...]      run trace files (one per core)
//! parbs-sim run <bench,bench,...>       one shared run, checkpointable
//! parbs-sim --list                      enumerate available mixes and sweeps
//!
//! parbs-sim mapping-sweep [n]           geometry/mapping ablation (paper §6)
//! parbs-sim zoo-sweep [n]               seven schedulers × n mixed
//!                                       CPU/accelerator workloads
//! parbs-sim flow-sweep [n]              open-loop flow frontend: schedulers ×
//!                                       requester scales {16, 1024, n}, FCT
//!                                       percentiles + slowdown-vs-isolation
//! parbs-sim monitor --spec <spec>       replay a JSONL event trace through a
//!            --replay <trace.jsonl>     monitor spec, offline
//!
//! options: --target <instructions>   per-thread run length (default 30000)
//!          --seed <seed>             workload seed (default 42)
//!          --jobs <n>                worker threads (default: all cores)
//!          --lanes <1|2|4>           execution backend: scalar (1) or a
//!                                    many-lane lockstep kernel stepping
//!                                    2/4 shape-compatible plan jobs per
//!                                    cycle; results are byte-identical
//!
//! Adding `--list` to an evaluation command (case-study, mix, sweep,
//! mapping-sweep, zoo-sweep) prints the plan's jobs and which of them the
//! chosen backend lane-batches vs runs scalar-fallback, without running.
//!
//! checkpointing (`run` only; one mix, one scheduler, one System):
//!          --sched <name>            scheduler for the run (default PAR-BS)
//!          --checkpoint-out <path>   write a checkpoint to <path>
//!          --checkpoint-every <n>    ... every n cycles (default 1000000)
//!          --resume <path>           restore state from a checkpoint and
//!                                    continue; the blob must match the
//!                                    system's config/scheduler/mix
//!                                    fingerprint or the run hard-errors
//!
//! Malformed option values (`--jobs abc`, `--ranks -1`) are hard errors
//! naming the offending flag, never silent fallbacks to defaults.
//!
//! DRAM shape (any command):
//!          --ranks <n>               ranks per channel (default 1)
//!          --mapping <row|line>      address-mapping policy (default row)
//!          --no-xor                  disable the XOR bank permutation
//!
//! observability (case-study / mix only; runs the mix once, observed):
//!          --trace-out <path>        write the event trace to <path>
//!          --trace-format <fmt>      chrome (Perfetto-loadable) | jsonl
//!          --check-invariants        verify PAR-BS batching invariants;
//!                                    exit 1 on any violation
//!          --trace-sched <name>      scheduler for the observed run
//!                                    (FCFS|FR-FCFS|NFQ|STFQ|STFM|PAR-BS|
//!                                    BLISS|ATLAS, default PAR-BS)
//!          --spec <spec>             attach a monitor compiled from a spec
//!                                    file, or prelude:invariants /
//!                                    prelude:qos; exit 1 on error alarms
//!          --monitor-report          print the per-trigger fire counts
//!
//! `--spec` also works on zoo-sweep (observed re-runs print a trigger table
//! per scheduler) and flow-sweep (alarm totals per run).
//!
//! flow-sweep options:
//!          --sched <name>            run one scheduler instead of the zoo
//!          --flow-rate <n>           mean flow arrivals per kilocycle (2)
//!          --flow-size-max <n>       bounded-Pareto size cap, requests (256)
//!          --check-invariants        protocol checker + scheduler invariant
//!                                    audit on every controller
//! ```
//!
//! Every evaluation command fans its plan across `--jobs` worker threads
//! (results are identical at any jobs level) and ends with a one-line
//! wall-clock + alone-cache summary.

use std::time::Instant;

use parbs_dram::MappingPolicy;
use parbs_monitor::Spec;
use parbs_sim::{
    experiments, AnyBackend, EvalPlan, ExecBackend, Harness, ObserveOptions, SchedulerKind,
    SimConfig, TraceFormat,
};
use parbs_workloads::{
    all_benchmarks, by_name, case_study_1, case_study_2, case_study_3, random_mixes, BoundedPareto,
    FlowConfig, MixSpec,
};

/// Looks up the value of `flag`. A missing flag is `None`; a flag that is
/// present but has a missing or unparseable value is a **hard error** naming
/// the flag — silently falling back to a default would run the wrong
/// experiment.
fn value_of(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(v) = args.get(i + 1) else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    };
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("invalid value '{v}' for {flag}: expected a non-negative integer");
            std::process::exit(2);
        }
    }
}

/// Parses an optional positional count (`sweep [n]`). A flag or absent
/// argument means "use the default"; anything else must parse.
fn count_arg(args: &[String], command: &str, default: usize) -> usize {
    match args.get(1) {
        None => default,
        Some(v) if v.starts_with("--") => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid count '{v}' for `parbs-sim {command} [n]`: expected an integer");
            std::process::exit(2);
        }),
    }
}

fn str_value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn sched_by_name(name: &str) -> Option<SchedulerKind> {
    match name.to_ascii_uppercase().as_str() {
        "FCFS" => Some(SchedulerKind::Fcfs),
        "FR-FCFS" | "FRFCFS" => Some(SchedulerKind::FrFcfs),
        "NFQ" => Some(SchedulerKind::Nfq),
        "STFQ" => Some(SchedulerKind::Stfq),
        "STFM" => Some(SchedulerKind::Stfm),
        "PAR-BS" | "PARBS" => Some(SchedulerKind::ParBs(Default::default())),
        "BLISS" => Some(SchedulerKind::Bliss(Default::default())),
        "ATLAS" => Some(SchedulerKind::Atlas(Default::default())),
        _ => None,
    }
}

/// Resolves a `--spec` argument: `prelude:<name>` for a built-in spec,
/// anything else is a path to a spec file. Compile errors are hard errors
/// with the `line:col: message` position.
fn load_spec(arg: &str) -> Spec {
    if let Some(name) = arg.strip_prefix("prelude:") {
        return parbs_monitor::prelude::by_name(name).unwrap_or_else(|| {
            eprintln!(
                "unknown prelude spec '{name}'; expected one of: {}",
                parbs_monitor::prelude::NAMES.join(", ")
            );
            std::process::exit(2);
        });
    }
    let src = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("cannot read spec {arg}: {e}");
        std::process::exit(2);
    });
    match Spec::compile(&src) {
        Ok(spec) => {
            for lint in spec.lints() {
                eprintln!("{arg}: warning: {lint}");
            }
            spec
        }
        Err(e) => {
            eprintln!("{arg}:{e}");
            std::process::exit(2);
        }
    }
}

/// The DRAM-shape flags (`--ranks`, `--mapping`, `--no-xor`), applied to
/// every command's base configuration.
#[derive(Clone, Copy)]
struct ShapeArgs {
    ranks: Option<usize>,
    mapping: Option<MappingPolicy>,
    no_xor: bool,
}

impl ShapeArgs {
    fn parse(args: &[String]) -> ShapeArgs {
        let mapping = str_value_of(args, "--mapping").map(|m| {
            MappingPolicy::parse(m).unwrap_or_else(|| {
                eprintln!("unknown mapping '{m}'; expected row or line");
                std::process::exit(2);
            })
        });
        ShapeArgs {
            ranks: value_of(args, "--ranks").map(|r| r as usize),
            mapping,
            no_xor: args.iter().any(|a| a == "--no-xor"),
        }
    }

    fn apply(&self, cfg: &mut SimConfig) {
        if let Some(ranks) = self.ranks {
            cfg.dram.geometry.ranks_per_channel = ranks;
        }
        if let Some(mapping) = self.mapping {
            cfg.dram.mapping = mapping;
        }
        if self.no_xor {
            cfg.dram.mapping = cfg.dram.mapping.with_xor(false);
        }
        if let Err(e) = cfg.dram.validate() {
            eprintln!("invalid DRAM shape: {e}");
            std::process::exit(2);
        }
    }
}

/// The observability flags, when any is present.
struct ObserveArgs {
    out: Option<String>,
    format: TraceFormat,
    check: bool,
    sched: SchedulerKind,
    spec: Option<Spec>,
    monitor_report: bool,
}

fn observe_args(args: &[String]) -> Option<ObserveArgs> {
    let out = str_value_of(args, "--trace-out").map(str::to_owned);
    let check = args.iter().any(|a| a == "--check-invariants");
    let spec = str_value_of(args, "--spec").map(load_spec);
    let monitor_report = args.iter().any(|a| a == "--monitor-report");
    if out.is_none() && !check && spec.is_none() {
        return None;
    }
    let format = match str_value_of(args, "--trace-format") {
        None => TraceFormat::default(),
        Some(f) => TraceFormat::parse(f).unwrap_or_else(|| {
            eprintln!("unknown trace format '{f}'; expected chrome or jsonl");
            std::process::exit(2);
        }),
    };
    let sched = match str_value_of(args, "--trace-sched") {
        None => SchedulerKind::ParBs(Default::default()),
        Some(s) => sched_by_name(s).unwrap_or_else(|| {
            eprintln!(
                "unknown scheduler '{s}'; expected FCFS|FR-FCFS|NFQ|STFQ|STFM|PAR-BS|BLISS|ATLAS"
            );
            std::process::exit(2);
        }),
    };
    Some(ObserveArgs { out, format, check, sched, spec, monitor_report })
}

/// Runs `mix` once with sinks attached, writes the trace, prints the
/// invariant reports, and exits non-zero if a batching invariant broke.
fn run_observed_cli(
    mix: &parbs_workloads::MixSpec,
    target: u64,
    seed: u64,
    shape: &ShapeArgs,
    oa: &ObserveArgs,
) {
    let mut cfg =
        SimConfig { target_instructions: target, seed, ..SimConfig::for_cores(mix.cores()) };
    shape.apply(&mut cfg);
    let opts = ObserveOptions {
        check_invariants: oa.check,
        trace: oa.out.as_ref().map(|_| oa.format),
        spec: oa.spec.clone(),
    };
    let start = Instant::now();
    let obs = parbs_sim::run_observed(cfg, mix, &oa.sched, &opts);
    println!(
        "observed run: {} on '{}', {} cycles{}",
        oa.sched.name(),
        mix.name,
        obs.result.cycles,
        if obs.result.timed_out { " (timed out)" } else { "" }
    );
    println!("channel 0: {}", obs.counters);
    if let (Some(path), Some(trace)) = (&oa.out, &obs.trace) {
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {} bytes of {} trace to {path}", trace.len(), oa.format.name());
    }
    if oa.check {
        for rep in &obs.invariants {
            println!("channel {}: {}", rep.channel, rep.summary);
            for v in &rep.violations {
                println!("{v}");
            }
        }
        if obs.violation_count > 0 {
            eprintln!("{} invariant violation(s)", obs.violation_count);
            std::process::exit(1);
        }
        println!("invariants: OK ({} channel(s) checked)", obs.invariants.len());
    }
    if oa.spec.is_some() {
        let mut errors = false;
        for rep in &obs.monitors {
            println!("channel {}: {}", rep.channel, rep.summary);
            for a in &rep.alarms {
                println!("{a}");
            }
            if oa.monitor_report {
                for (name, sev, count) in &rep.trigger_counts {
                    println!("  trigger {name} [{sev}]: {count} fire(s)");
                }
            }
            errors |= !rep.ok;
        }
        if errors {
            eprintln!("{} monitor alarm(s)", obs.alarm_count);
            std::process::exit(1);
        }
        println!("monitor: OK ({} channel(s) monitored)", obs.monitors.len());
    }
    println!("observed in {:.2}s", start.elapsed().as_secs_f64());
}

/// Re-runs every (scheduler, mix) cell of the zoo observed with `spec`
/// attached and prints the per-trigger fire counts summed over channels —
/// the measured "which scheduler trips which trigger where" table.
fn zoo_trigger_table(
    mixes: &[parbs_workloads::MixSpec],
    target: u64,
    seed: u64,
    shape: &ShapeArgs,
    spec: &Spec,
) {
    let triggers = spec.triggers();
    print!("{:10} {:12}", "scheduler", "mix");
    for (name, _) in &triggers {
        print!(" {name:>16}");
    }
    println!(" {:>7}", "events");
    for sched in SchedulerKind::zoo_seven() {
        for mix in mixes {
            let mut cfg = SimConfig {
                target_instructions: target,
                seed,
                ..SimConfig::for_cores(mix.cores())
            };
            shape.apply(&mut cfg);
            let opts = ObserveOptions { spec: Some(spec.clone()), ..Default::default() };
            let obs = parbs_sim::run_observed(cfg, mix, &sched, &opts);
            let mut counts = vec![0u64; triggers.len()];
            let mut events = 0u64;
            for rep in &obs.monitors {
                events += rep.events;
                for (i, (name, _)) in triggers.iter().enumerate() {
                    for (n, _, k) in &rep.trigger_counts {
                        if n == name {
                            counts[i] += k;
                        }
                    }
                }
            }
            print!("{:10} {:12}", sched.name(), mix.name);
            for c in &counts {
                print!(" {c:>16}");
            }
            println!(" {events:>7}");
        }
    }
}

fn print_evals(evals: &[parbs_sim::MixEvaluation]) {
    if let Some(first) = evals.first() {
        print!("{:10}", "scheduler");
        for name in &first.thread_names {
            print!(" {name:>11}");
        }
        println!(" {:>10} {:>7} {:>7} {:>7} {:>7}", "unfairness", "wspeed", "hspeed", "ast", "wc");
    }
    for e in evals {
        print!("{:10}", e.scheduler);
        for s in &e.metrics.slowdowns {
            print!(" {s:>11.2}");
        }
        println!(
            " {:>10.2} {:>7.3} {:>7.3} {:>7.1} {:>7}",
            e.metrics.unfairness,
            e.metrics.weighted_speedup,
            e.metrics.hmean_speedup,
            e.metrics.ast_per_req,
            e.worst_case_latency
        );
    }
}

fn print_run_summary(start: Instant, evaluations: usize, jobs: usize, harness: &Harness) {
    let stats = harness.cache_stats();
    println!(
        "{} evaluation(s) in {:.2}s (jobs={}, alone-cache: {} hits / {} misses)",
        evaluations,
        start.elapsed().as_secs_f64(),
        jobs,
        stats.hits,
        stats.misses
    );
}

fn harness_for(cores: usize, target: u64, shape: &ShapeArgs) -> Harness {
    let mut cfg = SimConfig { target_instructions: target, ..SimConfig::for_cores(cores) };
    shape.apply(&mut cfg);
    Harness::new(cfg)
}

/// Parses `--lanes` into a backend. Widths other than 1/2/4 are hard
/// errors: the lane kernels are monomorphized per width, so an arbitrary
/// count cannot be honoured and must not silently degrade to scalar.
fn backend_arg(args: &[String]) -> AnyBackend {
    match value_of(args, "--lanes") {
        None => AnyBackend::Scalar,
        Some(n) => AnyBackend::from_lanes(n as usize).unwrap_or_else(|| {
            eprintln!("invalid value '{n}' for --lanes: expected 1, 2 or 4");
            std::process::exit(2);
        }),
    }
}

/// The `--list` view of a plan under a backend: which jobs will be
/// lane-batched together and which fall back to the scalar path (singleton
/// shape groups, or everything when the backend is scalar).
fn print_lane_plan(harness: &Harness, plan: &EvalPlan, backend: AnyBackend) {
    let assignments = harness.lane_assignments(plan, backend.lane_width());
    let batched = assignments.iter().filter(|a| a.is_some()).count();
    println!(
        "plan: {} job(s) under backend {} — {} lane-batched, {} scalar-fallback",
        plan.len(),
        backend.name(),
        batched,
        plan.len() - batched
    );
    println!("{:>4} {:16} {:10} execution", "job", "mix", "scheduler");
    for (i, (job, a)) in plan.jobs().iter().zip(&assignments).enumerate() {
        let how = match a {
            Some(group) => format!("lane-batched (group {group})"),
            None => "scalar-fallback".to_owned(),
        };
        println!("{:>4} {:16} {:10} {}", i, job.mix.name, job.kind.name(), how);
    }
}

fn print_available() {
    println!("mixes (run with `parbs-sim case-study <n>` / `parbs-sim mix <a,b,c,d>`):");
    for (n, mix) in [(1, case_study_1()), (2, case_study_2()), (3, case_study_3())] {
        let names: Vec<&str> = mix.benchmarks.iter().map(|b| b.name).collect();
        println!("  case-study {n}  {:10} {}", mix.name, names.join(", "));
    }
    println!(
        "  mix a,b,c,...  any of the {} benchmarks (see `parbs-sim list`)",
        all_benchmarks().len()
    );
    println!("\nsweeps:");
    println!("  sweep [n]          n random 4-core mixes under the paper's five schedulers");
    println!("  mapping-sweep [n]  geometry/mapping ablation: row/line x xor/noxor x");
    println!("                     ranks 1/2/4 under the seven-scheduler zoo (paper Section 6)");
    println!("  zoo-sweep [n]      all seven schedulers (paper five + BLISS + ATLAS) over");
    println!("                     the accel case study + n mixed CPU/accelerator mixes,");
    println!("                     with fairness split by agent class");
    println!("  flow-sweep [n]     open-loop datacenter-flow frontend: schedulers x");
    println!("                     requester scales 16/1024/n, FCT percentiles and");
    println!("                     slowdown-vs-isolation (--sched, --flow-rate,");
    println!("                     --flow-size-max, --check-invariants)");
    println!("  (more sweeps — marking-cap, batching, ranking, priorities — are");
    println!("   regenerated by the parbs-bench binaries: fig11..fig14, table3, table4)");
    println!("\noptions: --target N   --seed N   --jobs N (default: all cores)");
    println!("backend: --lanes 1|2|4 (lockstep lane kernel; byte-identical results;");
    println!("         add --list to an evaluation command to preview which jobs");
    println!("         get lane-batched vs scalar-fallback)");
    println!("ckpt:    run <a,b,c,d> --sched S --checkpoint-out F");
    println!("         [--checkpoint-every N] [--resume F]");
    println!("shape:   --ranks N   --mapping row|line   --no-xor");
    println!(
        "observe: --trace-out F   --trace-format chrome|jsonl   --check-invariants   \
         --trace-sched FCFS|FR-FCFS|NFQ|STFQ|STFM|PAR-BS|BLISS|ATLAS"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = value_of(&args, "--target").unwrap_or(30_000);
    let seed = value_of(&args, "--seed").unwrap_or(42);
    let jobs =
        value_of(&args, "--jobs").map_or_else(parbs_sim::default_jobs, |v| (v as usize).max(1));
    let shape = ShapeArgs::parse(&args);
    let backend = backend_arg(&args);
    let list_only = args.iter().any(|a| a == "--list");
    let lane_listable = matches!(
        args.first().map(String::as_str),
        Some("case-study" | "mix" | "sweep" | "mapping-sweep" | "zoo-sweep")
    );
    if list_only && !lane_listable {
        print_available();
        return;
    }
    match args.first().map(String::as_str) {
        Some("case-study") => {
            let mix = match args.get(1).map(String::as_str) {
                Some("1") => case_study_1(),
                Some("2") => case_study_2(),
                Some("3") => case_study_3(),
                other => {
                    eprintln!("unknown case study {other:?}; expected 1, 2 or 3");
                    std::process::exit(2);
                }
            };
            if let Some(oa) = observe_args(&args) {
                run_observed_cli(&mix, target, seed, &shape, &oa);
                return;
            }
            let harness = harness_for(mix.cores(), target, &shape);
            let plan = experiments::compare_plan(&mix);
            if list_only {
                print_lane_plan(&harness, &plan, backend);
                return;
            }
            println!("case study {} ({} cores):", mix.name, mix.cores());
            let start = Instant::now();
            print_evals(&harness.run_plan_with(&plan, jobs, &backend));
            print_run_summary(start, plan.len(), jobs, &harness);
        }
        Some("mix") => {
            let Some(list) = args.get(1) else {
                eprintln!("usage: parbs-sim mix <bench,bench,...>");
                std::process::exit(2);
            };
            let names: Vec<&str> = list.split(',').collect();
            for n in &names {
                if by_name(n).is_none() {
                    eprintln!("unknown benchmark '{n}'; try `parbs-sim list`");
                    std::process::exit(2);
                }
            }
            let mix = MixSpec::from_names("custom", &names);
            if let Some(oa) = observe_args(&args) {
                run_observed_cli(&mix, target, seed, &shape, &oa);
                return;
            }
            let harness = harness_for(mix.cores(), target, &shape);
            let plan = experiments::compare_plan(&mix);
            if list_only {
                print_lane_plan(&harness, &plan, backend);
                return;
            }
            let start = Instant::now();
            print_evals(&harness.run_plan_with(&plan, jobs, &backend));
            print_run_summary(start, plan.len(), jobs, &harness);
        }
        Some("bench") => {
            let Some(bench) = args.get(1).and_then(|n| by_name(n)) else {
                eprintln!("usage: parbs-sim bench <name>  (see `parbs-sim list`)");
                std::process::exit(2);
            };
            let mix = MixSpec { name: bench.name.to_owned(), benchmarks: vec![bench] };
            let mut cfg =
                SimConfig { cores: 1, target_instructions: target, ..SimConfig::for_cores(4) };
            shape.apply(&mut cfg);
            let harness = Harness::new(cfg);
            let r = harness.run_shared(&mix, &SchedulerKind::FrFcfs, &Default::default());
            let t = r.threads[0];
            println!(
                "{} alone: MCPI {:.2} (paper {:.2})  MPKI {:.1} ({:.1})  RB hit {:.2} ({:.2})  BLP {:.2} ({:.2})  AST/req {:.0} ({:.0})",
                bench.name, t.mcpi(), bench.paper.mcpi, t.mpki(), bench.paper.mpki,
                r.row_hit_rate, bench.paper.rb_hit, t.blp, bench.paper.blp,
                t.ast_per_req(), bench.paper.ast_per_req
            );
        }
        Some("list") => {
            println!(
                "{:>2} {:12} {:>7} {:>7} {:>6} {:>9}",
                "#", "name", "MPKI", "RBhit", "BLP", "category"
            );
            for b in all_benchmarks() {
                println!(
                    "{:>2} {:12} {:>7.2} {:>7.2} {:>6.2} {:>9}",
                    b.number, b.name, b.mpki, b.row_hit, b.blp, b.category
                );
            }
        }
        Some("trace") => {
            let paths: Vec<&String> =
                args.iter().skip(1).take_while(|a| !a.starts_with("--")).collect();
            if paths.is_empty() {
                eprintln!("usage: parbs-sim trace <file> [file...]");
                std::process::exit(2);
            }
            let mut streams: Vec<Box<dyn parbs_cpu::InstructionStream>> = Vec::new();
            for p in &paths {
                match parbs_workloads::load_trace(std::path::Path::new(p)) {
                    Ok(s) => streams.push(Box::new(s)),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            let cores = streams.len();
            let mut cfg = parbs_sim::SimConfig {
                cores,
                target_instructions: target,
                ..parbs_sim::SimConfig::for_cores(cores.max(4))
            };
            shape.apply(&mut cfg);
            let mut sys =
                parbs_sim::System::new(cfg, streams, &SchedulerKind::ParBs(Default::default()));
            let r = sys.run();
            println!(
                "{:24} {:>7} {:>7} {:>6} {:>8} {:>6}",
                "trace", "MCPI", "MPKI", "BLP", "AST/req", "RBhit"
            );
            for (p, t) in paths.iter().zip(&r.threads) {
                println!(
                    "{:24} {:>7.2} {:>7.1} {:>6.2} {:>8.0} {:>6.2}",
                    p,
                    t.mcpi(),
                    t.mpki(),
                    t.blp,
                    t.ast_per_req(),
                    t.read_hit_rate
                );
            }
            println!("cycles: {} (PAR-BS)", r.cycles);
        }
        Some("run") => {
            let Some(list) = args.get(1) else {
                eprintln!("usage: parbs-sim run <bench,bench,...>");
                std::process::exit(2);
            };
            let names: Vec<&str> = list.split(',').collect();
            for n in &names {
                if by_name(n).is_none() {
                    eprintln!("unknown benchmark '{n}'; try `parbs-sim list`");
                    std::process::exit(2);
                }
            }
            let mix = MixSpec::from_names("custom", &names);
            let sched = match str_value_of(&args, "--sched") {
                None => SchedulerKind::ParBs(Default::default()),
                Some(s) => sched_by_name(s).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scheduler '{s}'; expected \
                         FCFS|FR-FCFS|NFQ|STFQ|STFM|PAR-BS|BLISS|ATLAS"
                    );
                    std::process::exit(2);
                }),
            };
            // The checkpoint fingerprint label: the bench list itself, so a
            // blob saved from one mix cannot restore into another.
            let label = names.join(",");
            let ckpt_out = str_value_of(&args, "--checkpoint-out");
            let every = value_of(&args, "--checkpoint-every");
            if every.is_some() && ckpt_out.is_none() {
                eprintln!("--checkpoint-every requires --checkpoint-out");
                std::process::exit(2);
            }
            let every = every.unwrap_or(1_000_000);
            if every == 0 {
                eprintln!("invalid value '0' for --checkpoint-every: expected at least 1");
                std::process::exit(2);
            }
            let harness = harness_for(mix.cores(), target, &shape);
            let mut sys = harness.shared_system(&mix, &sched, &Default::default());
            let mut progress = match str_value_of(&args, "--resume") {
                None => sys.begin_run(),
                Some(path) => {
                    let bytes = std::fs::read(path).unwrap_or_else(|e| {
                        eprintln!("cannot read checkpoint {path}: {e}");
                        std::process::exit(2);
                    });
                    match sys.resume(&bytes, &label) {
                        Ok(p) => {
                            println!(
                                "resumed from {path} at cycle {} ({} thread(s) still running)",
                                p.cycles(),
                                p.threads_remaining()
                            );
                            p
                        }
                        Err(e) => {
                            eprintln!("cannot resume from {path}: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            };
            let save_to = |path: &str, sys: &parbs_sim::System, p: &parbs_sim::RunProgress| {
                let blob = sys.save_checkpoint(p, &label).unwrap_or_else(|e| {
                    eprintln!("cannot checkpoint: {e}");
                    std::process::exit(2);
                });
                if let Err(e) = std::fs::write(path, &blob) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                }
                println!(
                    "checkpoint: wrote {} bytes to {path} at cycle {}",
                    blob.len(),
                    p.cycles()
                );
            };
            let start = Instant::now();
            let mut last_saved = progress.cycles();
            while sys.step_cycle(&mut progress) {
                if let Some(path) = ckpt_out {
                    if progress.cycles() - last_saved >= every {
                        save_to(path, &sys, &progress);
                        last_saved = progress.cycles();
                    }
                }
            }
            if let Some(path) = ckpt_out {
                save_to(path, &sys, &progress);
            }
            let r = sys.finish_run(progress);
            println!(
                "{:12} {:>7} {:>7} {:>6} {:>8} {:>6}",
                "bench", "MCPI", "MPKI", "BLP", "AST/req", "RBhit"
            );
            for (b, t) in mix.benchmarks.iter().zip(&r.threads) {
                println!(
                    "{:12} {:>7.2} {:>7.1} {:>6.2} {:>8.0} {:>6.2}",
                    b.name,
                    t.mcpi(),
                    t.mpki(),
                    t.blp,
                    t.ast_per_req(),
                    t.read_hit_rate
                );
            }
            println!(
                "cycles: {} ({}){} in {:.2}s",
                r.cycles,
                sched.name(),
                if r.timed_out { " (timed out)" } else { "" },
                start.elapsed().as_secs_f64()
            );
        }
        Some("sweep") => {
            let n = count_arg(&args, "sweep", 10);
            let harness = harness_for(4, target, &shape);
            let mixes = random_mixes(4, n, seed);
            let sweep = experiments::sweep_plan(&mixes, &experiments::paper_five_labeled());
            if list_only {
                print_lane_plan(&harness, sweep.plan(), backend);
                return;
            }
            let start = Instant::now();
            let rows = sweep.run_with(&harness, jobs, &backend);
            println!(
                "{:10} {:>10} {:>7} {:>7} {:>7} {:>8}",
                "scheduler", "unfairness", "wspeed", "hspeed", "ast", "wc"
            );
            for row in &rows {
                let sm = row.summary();
                println!(
                    "{:10} {:>10.3} {:>7.3} {:>7.3} {:>7.1} {:>8}",
                    sm.name,
                    sm.unfairness,
                    sm.weighted_speedup,
                    sm.hmean_speedup,
                    sm.ast_per_req,
                    sm.worst_case_latency
                );
            }
            print_run_summary(start, sweep.job_count(), jobs, &harness);
        }
        Some("mapping-sweep") => {
            let n = count_arg(&args, "mapping-sweep", 1);
            let harness = harness_for(4, target, &shape);
            let mixes = random_mixes(4, n, seed);
            let sweep = experiments::mapping_sweep_plan(&mixes, harness.config().dram.geometry);
            if list_only {
                print_lane_plan(&harness, sweep.plan(), backend);
                return;
            }
            println!(
                "geometry/mapping ablation: {} rows x {} mix(es) = {} jobs",
                sweep.labels().len(),
                n,
                sweep.job_count()
            );
            let start = Instant::now();
            let rows = sweep.run_with(&harness, jobs, &backend);
            println!(
                "{:22} {:>10} {:>7} {:>7} {:>7} {:>8}",
                "shape/scheduler", "unfairness", "wspeed", "hspeed", "ast", "wc"
            );
            for row in &rows {
                let sm = row.summary();
                println!(
                    "{:22} {:>10.3} {:>7.3} {:>7.3} {:>7.1} {:>8}",
                    sm.name,
                    sm.unfairness,
                    sm.weighted_speedup,
                    sm.hmean_speedup,
                    sm.ast_per_req,
                    sm.worst_case_latency
                );
            }
            print_run_summary(start, sweep.job_count(), jobs, &harness);
        }
        Some("zoo-sweep") => {
            let n = count_arg(&args, "zoo-sweep", 4);
            let harness = harness_for(4, target, &shape);
            let mut mixes = vec![parbs_workloads::accel_case_study()];
            mixes.extend(parbs_workloads::cpu_accel_mixes(4, n, seed));
            let sweep = experiments::zoo_sweep_plan(&mixes);
            if list_only {
                print_lane_plan(&harness, sweep.plan(), backend);
                return;
            }
            println!(
                "scheduler zoo: 7 schedulers x {} mixed CPU/accelerator mix(es) = {} jobs",
                mixes.len(),
                sweep.job_count()
            );
            let start = Instant::now();
            let rows = experiments::zoo_rows(sweep.run_with(&harness, jobs, &backend), &mixes);
            println!(
                "{:10} {:>10} {:>12} {:>9} {:>11} {:>7} {:>7}",
                "scheduler", "unfairness", "cpu-unfair", "cpu-max", "accel-max", "wspeed", "hspeed"
            );
            for zr in &rows {
                let sm = zr.row.summary();
                println!(
                    "{:10} {:>10.3} {:>12.3} {:>9.2} {:>11.2} {:>7.3} {:>7.3}",
                    sm.name,
                    sm.unfairness,
                    zr.cpu_unfairness,
                    zr.cpu_max_slowdown,
                    zr.accel_max_slowdown,
                    sm.weighted_speedup,
                    sm.hmean_speedup
                );
            }
            print_run_summary(start, sweep.job_count(), jobs, &harness);
            if let Some(spec_arg) = str_value_of(&args, "--spec") {
                let spec = load_spec(spec_arg);
                zoo_trigger_table(&mixes, target, seed, &shape, &spec);
            }
        }
        Some("flow-sweep") => {
            let n = count_arg(&args, "flow-sweep", 4096);
            let mut cfg = SimConfig { seed, ..SimConfig::for_cores(4) };
            shape.apply(&mut cfg);
            let rate_per_kcycle = value_of(&args, "--flow-rate").unwrap_or(2);
            let size_max = value_of(&args, "--flow-size-max").unwrap_or(256).max(2);
            let flows = FlowConfig {
                arrival_rate: rate_per_kcycle as f64 / 1000.0,
                size: BoundedPareto { alpha: 1.2, min: 2, max: size_max },
                seed,
                ..FlowConfig::default()
            };
            let check = args.iter().any(|a| a == "--check-invariants");
            let spec = str_value_of(&args, "--spec").map(load_spec);
            let schedulers = match str_value_of(&args, "--sched") {
                None => SchedulerKind::zoo_seven(),
                Some(s) => vec![sched_by_name(s).unwrap_or_else(|| {
                    eprintln!(
                        "unknown scheduler '{s}'; expected \
                         FCFS|FR-FCFS|NFQ|STFQ|STFM|PAR-BS|BLISS|ATLAS"
                    );
                    std::process::exit(2);
                })],
            };
            let mut scales: Vec<usize> = vec![16, 1024, n];
            scales.sort_unstable();
            scales.dedup();
            println!(
                "open-loop flow sweep: {} scheduler(s) x scales {:?}, \
                 rate {}/kcycle, sizes 2..={}{}",
                schedulers.len(),
                scales,
                rate_per_kcycle,
                size_max,
                if check { ", invariants checked" } else { "" }
            );
            let start = Instant::now();
            let rows = parbs_sim::run_flow_sweep(
                &cfg,
                &schedulers,
                &scales,
                &flows,
                check,
                spec.as_ref(),
                jobs,
            );
            println!(
                "{:10} {:>6} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
                "scheduler",
                "flows",
                "fct-p50",
                "fct-p95",
                "fct-p99",
                "sd-p50",
                "sd-p99",
                "sd-rate",
                "backlog"
            );
            let mut violations = 0;
            let mut alarms = 0;
            for r in &rows {
                let s = &r.summary;
                println!(
                    "{:10} {:>6} {:>9} {:>9} {:>9} {:>8.2} {:>8.2} {:>8.3} {:>8}{}",
                    r.scheduler,
                    r.requesters,
                    s.fct_p50,
                    s.fct_p95,
                    s.fct_p99,
                    s.slowdown_p50,
                    s.slowdown_p99,
                    s.slowdown_rate,
                    r.drive.peak_backlog,
                    if r.drive.timed_out { " (timed out)" } else { "" }
                );
                violations += r.drive.invariant_violations;
                alarms += r.drive.monitor_alarms;
            }
            println!(
                "{} flow run(s) in {:.2}s (jobs={})",
                rows.len(),
                start.elapsed().as_secs_f64(),
                jobs
            );
            if check {
                if violations > 0 {
                    eprintln!("{violations} invariant violation(s)");
                    std::process::exit(1);
                }
                println!("invariants: OK ({} run(s) checked)", rows.len());
            }
            if spec.is_some() {
                if alarms > 0 {
                    eprintln!("{alarms} monitor alarm(s)");
                    std::process::exit(1);
                }
                println!("monitor: OK ({} run(s) monitored)", rows.len());
            }
        }
        Some("monitor") => {
            let Some(spec_arg) = str_value_of(&args, "--spec") else {
                eprintln!("usage: parbs-sim monitor --spec <file|prelude:name> --replay <jsonl>");
                std::process::exit(2);
            };
            let Some(trace_path) = str_value_of(&args, "--replay") else {
                eprintln!("usage: parbs-sim monitor --spec <file|prelude:name> --replay <jsonl>");
                std::process::exit(2);
            };
            let spec = load_spec(spec_arg);
            let text = std::fs::read_to_string(trace_path).unwrap_or_else(|e| {
                eprintln!("cannot read trace {trace_path}: {e}");
                std::process::exit(2);
            });
            let mon = match parbs_monitor::replay_jsonl(&spec, &text) {
                Ok(mon) => mon,
                Err(e) => {
                    eprintln!("{trace_path}: {e}");
                    std::process::exit(2);
                }
            };
            println!("{}", mon.summary());
            for a in mon.alarms() {
                println!("{a}");
            }
            for (name, sev, count) in mon.trigger_counts() {
                println!("  trigger {name} [{sev}]: {count} fire(s)");
            }
            if !mon.ok() {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: parbs-sim <case-study 1|2|3 | mix a,b,c,d | bench name | list | sweep [n] \
                 | run a,b,c,d | mapping-sweep [n] | zoo-sweep [n] | flow-sweep [n] \
                 | monitor --spec S --replay F> \
                 [--target N] [--seed N] [--jobs N] [--lanes 1|2|4] \
                 [--sched S] [--checkpoint-out F] [--checkpoint-every N] [--resume F] \
                 [--ranks N] [--mapping row|line] [--no-xor] \
                 [--trace-out F] [--trace-format chrome|jsonl] [--check-invariants] \
                 [--trace-sched S] [--spec S] [--monitor-report] \
                 (or --list to enumerate mixes/sweeps)"
            );
            std::process::exit(2);
        }
    }
}
