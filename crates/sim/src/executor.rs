//! The parallel plan executor: fans an [`EvalPlan`] across scoped worker
//! threads and collates results in plan order.
//!
//! Jobs are pulled from a shared atomic cursor (work stealing by another
//! name: a fast job frees its worker for the next one, so stragglers never
//! idle the pool), and every result lands in the slot of its plan index —
//! the output of [`Harness::run_plan`] is therefore **identical** at any
//! jobs level, including `jobs = 1`, which runs inline without spawning.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::{EvalPlan, Harness, MixEvaluation};

/// The machine's available parallelism (the default for `--jobs`), falling
/// back to 1 when it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, returning
/// results in item order. `jobs <= 1` (or a single item) runs inline.
pub(crate) fn scope_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                assert!(slots[i].set(result).is_ok(), "slot {i} filled twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot is filled before the scope ends"))
        .collect()
}

impl Harness {
    /// Evaluates every job of `plan` on up to `jobs` worker threads and
    /// returns the results **in plan order** — byte-identical to running
    /// the plan serially, whatever the execution interleaving. Alone
    /// baselines are shared through the harness's single-flight memo, so
    /// no worker ever re-simulates a baseline another worker has produced
    /// (or is producing).
    ///
    /// `jobs` is clamped to `1..=plan.len()`; pass
    /// [`default_jobs`](crate::default_jobs) for the machine's available
    /// parallelism.
    pub fn run_plan(&self, plan: &EvalPlan, jobs: usize) -> Vec<MixEvaluation> {
        scope_map(plan.jobs(), jobs, |job| self.evaluate(job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalJob, SchedulerKind, SimConfig};
    use parbs_workloads::case_study_1;

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn scope_map_preserves_item_order() {
        let items: Vec<u64> = (0..37).collect();
        for jobs in [1, 3, 8, 64] {
            let doubled = scope_map(&items, jobs, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_plan_runs_at_any_width() {
        let h = Harness::new(SimConfig::for_cores(4));
        assert!(h.run_plan(&EvalPlan::new(), 8).is_empty());
    }

    #[test]
    fn parallel_run_shares_alone_baselines() {
        // Two identical jobs racing on two workers: the single-flight memo
        // must simulate each of the 4 baselines exactly once.
        let cfg = SimConfig { target_instructions: 1_000, ..SimConfig::for_cores(4) };
        let h = Harness::new(cfg);
        let mut plan = EvalPlan::new();
        plan.push(EvalJob::new(case_study_1(), SchedulerKind::FrFcfs));
        plan.push(EvalJob::new(case_study_1(), SchedulerKind::FrFcfs));
        let evals = h.run_plan(&plan, 2);
        assert_eq!(evals[0], evals[1], "identical jobs must evaluate identically");
        let stats = h.cache_stats();
        assert_eq!(stats.entries, 4, "one baseline per distinct benchmark");
        assert_eq!(stats.misses, 4, "each baseline simulated exactly once");
        assert_eq!(stats.hits, 4, "the second job reuses all four");
    }
}
