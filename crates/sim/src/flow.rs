//! Open-loop driver: couples any [`RequestSource`] to the DRAM controllers
//! without cores, windows, or instruction streams in the loop.
//!
//! Where [`crate::System`] interleaves cores and controllers cycle by cycle
//! (a core holds a miss back while the controller's buffer is full), this
//! driver implements the [`RequestSource`] backpressure contract: the
//! source emits on its own schedule and the driver buffers what the memory
//! system cannot yet accept, in per-channel FIFOs so one saturated channel
//! never blocks arrivals headed elsewhere. That is the behaviour an
//! open-loop experiment needs — arrival times are workload facts, not
//! consequences of memory performance — and `peak_backlog` reports how
//! deep the resulting queues got.
//!
//! Flow-level metrics need an "isolated FCT" per flow. Rather than run a
//! second simulation per flow (the closed-loop alone-baseline trick does
//! not scale to tens of thousands of requesters), the driver uses a
//! self-calibrating proxy: `(size - 1) * request_gap + min observed read
//! latency`, i.e. the flow's own issue schedule plus the best latency the
//! memory system demonstrated in this very run. The proxy is optimistic
//! (the minimum is near-unloaded latency), which makes slowdowns slight
//! over-estimates — consistent across schedulers, which is what a
//! comparison needs. See `DESIGN.md` for the full argument.

use std::collections::{HashMap, VecDeque};

use parbs_dram::{Controller, LineAddr, Request, RequestKind, ThreadId};
use parbs_metrics::{FlowMetrics, FlowSummary, LatencyHistogram};
use parbs_monitor::{Monitor, Spec};
use parbs_obs::{downcast_sink, FanoutSink, InvariantSink};
use parbs_workloads::{FlowConfig, FlowSource, RequestSource};

use crate::executor::scope_map;
use crate::{SchedulerKind, SimConfig};

/// One buffered request: decoded address plus the source's token.
struct Buffered {
    thread: ThreadId,
    addr: LineAddr,
    kind: RequestKind,
    token: u64,
}

/// Outcome of driving one [`RequestSource`] to exhaustion.
#[derive(Debug, Clone)]
pub struct SourceDriveResult {
    /// Cycles elapsed when the drive stopped.
    pub cycles: u64,
    /// True if `max_cycles` hit before the source drained.
    pub timed_out: bool,
    /// Reads the memory system completed.
    pub reads_completed: u64,
    /// Read latency distribution merged over all channels.
    pub read_latency: LatencyHistogram,
    /// Deepest total (all-channel) driver-side backlog observed.
    pub peak_backlog: usize,
    /// Protocol/scheduler invariant violations observed (always 0 unless
    /// invariant checking was requested).
    pub invariant_violations: usize,
    /// Monitor alarms observed (always 0 unless a spec was given).
    pub monitor_alarms: usize,
}

/// Drives `source` against fresh controllers built from `cfg` until the
/// source is exhausted and every buffered/in-flight request has completed,
/// or `cfg.max_cycles` elapses.
///
/// With `check_invariants`, every controller runs the DRAM protocol
/// checker **and** an [`InvariantSink`] auditing scheduler events; the
/// violation count lands in the result (the protocol checker itself panics
/// on violation, as elsewhere in the crate). With `spec`, every controller
/// additionally runs a [`parbs_monitor`] monitor compiled from the spec and
/// the alarm count lands in `monitor_alarms`.
///
/// # Panics
///
/// Panics if the DRAM configuration is invalid, or on a protocol timing
/// violation when `check_invariants` is set.
pub fn drive_source(
    cfg: &SimConfig,
    scheduler: &SchedulerKind,
    source: &mut dyn RequestSource,
    check_invariants: bool,
    spec: Option<&Spec>,
) -> SourceDriveResult {
    let mut controllers: Vec<Controller> = (0..cfg.dram.channels())
        .map(|_| {
            if check_invariants || cfg.check_protocol {
                Controller::with_checker(cfg.dram.clone(), scheduler.build(cfg))
            } else {
                Controller::new(cfg.dram.clone(), scheduler.build(cfg))
            }
        })
        .collect();
    if check_invariants || spec.is_some() {
        for ctrl in &mut controllers {
            ctrl.scheduler_mut().set_observing(true);
            let mut fan = FanoutSink::new();
            if check_invariants {
                fan.push(Box::new(InvariantSink::new()));
            }
            if let Some(spec) = spec {
                fan.push(Box::new(spec.monitor()));
            }
            ctrl.set_event_sink(Box::new(fan));
        }
    }
    let mapper = cfg.dram.mapper();
    let mut backlogs: Vec<VecDeque<Buffered>> =
        (0..controllers.len()).map(|_| VecDeque::new()).collect();
    let mut inflight: HashMap<u64, u64> = HashMap::new();
    let mut completions = Vec::new();
    let mut emitted = Vec::new();
    let mut next_request: u64 = 0;
    let mut peak_backlog = 0usize;
    let mut now = 0u64;
    let mut timed_out = false;

    loop {
        for ctrl in &mut controllers {
            ctrl.tick(now, &mut completions);
        }
        for c in completions.drain(..) {
            if c.kind == RequestKind::Read {
                if let Some(token) = inflight.remove(&c.request.0) {
                    source.on_complete(token, now);
                }
            }
        }
        source.poll(now, &mut emitted);
        for r in emitted.drain(..) {
            let addr = mapper.decode(r.line);
            backlogs[addr.channel].push_back(Buffered {
                thread: r.thread,
                addr,
                kind: r.kind,
                token: r.token,
            });
        }
        for (ch, backlog) in backlogs.iter_mut().enumerate() {
            let ctrl = &mut controllers[ch];
            while let Some(front) = backlog.front() {
                let ok = match front.kind {
                    RequestKind::Read => ctrl.can_accept_read(),
                    RequestKind::Write => ctrl.can_accept_write(),
                };
                if !ok {
                    break;
                }
                let b = backlog.pop_front().expect("front exists");
                let req = Request::new(next_request, b.thread, b.addr, b.kind, now);
                ctrl.try_enqueue(req).expect("capacity was checked");
                if b.kind == RequestKind::Read {
                    inflight.insert(next_request, b.token);
                }
                next_request += 1;
            }
        }
        peak_backlog = peak_backlog.max(backlogs.iter().map(VecDeque::len).sum());
        now += 1;
        let drained = backlogs.iter().all(VecDeque::is_empty) && inflight.is_empty();
        if source.exhausted() && drained {
            break;
        }
        if now >= cfg.max_cycles {
            timed_out = true;
            break;
        }
    }

    let mut read_latency = LatencyHistogram::new();
    let mut reads_completed = 0;
    for ctrl in &controllers {
        read_latency.merge(&ctrl.stats().read_latency);
        reads_completed += ctrl.stats().reads_completed;
    }
    let mut invariant_violations = 0;
    let mut monitor_alarms = 0;
    for ctrl in &mut controllers {
        let Some(sink) = ctrl.take_event_sink() else { continue };
        let Ok(fan) = downcast_sink::<FanoutSink>(sink) else { continue };
        for child in fan.into_sinks() {
            let child = match downcast_sink::<InvariantSink>(child) {
                Ok(inv) => {
                    invariant_violations += inv.violations().len();
                    continue;
                }
                Err(child) => child,
            };
            if let Ok(mon) = downcast_sink::<Monitor>(child) {
                monitor_alarms += mon.alarms().len();
            }
        }
    }
    SourceDriveResult {
        cycles: now,
        timed_out,
        reads_completed,
        read_latency,
        peak_backlog,
        invariant_violations,
        monitor_alarms,
    }
}

/// Result of one open-loop flow experiment.
#[derive(Debug, Clone)]
pub struct FlowRunResult {
    /// Scheduler display name.
    pub scheduler: &'static str,
    /// Thread-id space / total flows spawned over the run.
    pub requesters: usize,
    /// Flows that fully completed (== `requesters` unless timed out).
    pub completed: usize,
    /// Flow-completion-time and slowdown distributions.
    pub summary: FlowSummary,
    /// Underlying drive outcome (cycles, read latency, backlog, checks).
    pub drive: SourceDriveResult,
}

/// Runs one scheduler against one [`FlowSource`] configuration and reduces
/// the completed flows to FCT/slowdown metrics.
///
/// # Panics
///
/// Propagates the panics of [`drive_source`].
#[must_use]
pub fn run_flow(
    cfg: &SimConfig,
    scheduler: &SchedulerKind,
    flows: &FlowConfig,
    check_invariants: bool,
    spec: Option<&Spec>,
) -> FlowRunResult {
    let mut source = FlowSource::new(*flows);
    let drive = drive_source(cfg, scheduler, &mut source, check_invariants, spec);
    let completed = source.take_completed();
    // Self-calibrating isolation proxy: the best read latency this run
    // demonstrated stands in for unloaded latency.
    let base_latency = if drive.read_latency.count() == 0 { 1 } else { drive.read_latency.min() };
    let mut metrics = FlowMetrics::default();
    for f in &completed {
        let isolated = (f.size - 1) * flows.request_gap.max(1) + base_latency;
        metrics.record(f.fct(), isolated);
    }
    FlowRunResult {
        scheduler: scheduler.name(),
        requesters: flows.requesters,
        completed: completed.len(),
        summary: metrics.summary(),
        drive,
    }
}

/// Runs the cross product of `schedulers` × `scales` (requester counts),
/// fanned over `jobs` worker threads. Each cell is fully independent —
/// fresh controllers, fresh source — so results are identical at every
/// `jobs` level.
///
/// # Panics
///
/// Propagates the panics of [`drive_source`].
#[must_use]
pub fn run_flow_sweep(
    cfg: &SimConfig,
    schedulers: &[SchedulerKind],
    scales: &[usize],
    flows: &FlowConfig,
    check_invariants: bool,
    spec: Option<&Spec>,
    jobs: usize,
) -> Vec<FlowRunResult> {
    let cells: Vec<(SchedulerKind, usize)> =
        schedulers.iter().flat_map(|s| scales.iter().map(move |&n| (s.clone(), n))).collect();
    scope_map(&cells, jobs, |(sched, n)| {
        let fc = FlowConfig { requesters: *n, ..*flows };
        run_flow(cfg, sched, &fc, check_invariants, spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::BoundedPareto;

    fn tiny_flows(requesters: usize) -> FlowConfig {
        FlowConfig {
            requesters,
            arrival_rate: 0.05,
            size: BoundedPareto { alpha: 1.2, min: 2, max: 16 },
            request_gap: 4,
            line_space: 1 << 16,
            seed: 11,
        }
    }

    #[test]
    fn flow_run_completes_all_flows() {
        let cfg = SimConfig::for_cores(4);
        let r = run_flow(&cfg, &SchedulerKind::FrFcfs, &tiny_flows(48), false, None);
        assert!(!r.drive.timed_out);
        assert_eq!(r.completed, 48);
        assert_eq!(r.summary.flows, 48);
        assert!(r.summary.slowdown_p50 >= 1.0);
        assert!(r.drive.reads_completed >= 48 * 2, "every flow issued ≥ min-size reads");
    }

    #[test]
    fn invariant_checked_run_is_clean() {
        let cfg = SimConfig::for_cores(4);
        let spec = parbs_monitor::prelude::invariants();
        let r = run_flow(
            &cfg,
            &SchedulerKind::ParBs(Default::default()),
            &tiny_flows(24),
            true,
            Some(&spec),
        );
        assert!(!r.drive.timed_out);
        assert_eq!(r.drive.invariant_violations, 0);
        assert_eq!(r.drive.monitor_alarms, 0);
    }

    #[test]
    fn closed_loop_source_drives_through_the_same_loop() {
        use parbs_workloads::{by_name, ClosedLoopSource, SyntheticStream};
        let cfg = SimConfig { target_instructions: 2_000, ..SimConfig::for_cores(4) };
        let streams: Vec<Box<dyn parbs_cpu::InstructionStream>> = (0..4)
            .map(|i| {
                Box::new(SyntheticStream::new(
                    by_name("mcf").unwrap(),
                    cfg.geometry(),
                    cfg.seed,
                    i as u64,
                )) as Box<dyn parbs_cpu::InstructionStream>
            })
            .collect();
        let mut src = ClosedLoopSource::new(cfg.core, streams, cfg.target_instructions);
        let r = drive_source(&cfg, &SchedulerKind::FrFcfs, &mut src, false, None);
        assert!(!r.timed_out, "closed-loop source drains through the open-loop driver");
        assert!(r.reads_completed > 0);
    }
}
