//! Observed single runs: attach [`parbs_obs`] sinks to every DRAM channel,
//! run a mix once, and collect the trace payload, counter summary and
//! invariant reports — the engine behind `parbs-sim --trace-out` and
//! `--check-invariants`.
//!
//! Channel 0 (where most requests of a 1-channel Table 2 system land)
//! carries the trace and counter sinks; every channel gets an
//! [`InvariantSink`] when invariant checking is on, since the PAR-BS
//! batching rules hold per controller.

use parbs_cpu::InstructionStream;
use parbs_monitor::{Monitor, Spec};
use parbs_obs::{
    downcast_sink, ChromeTraceSink, CounterSink, FanoutSink, InvariantSink, JsonlSink,
};
use parbs_workloads::{MixSpec, SyntheticStream};

use crate::{RunResult, SchedulerKind, SimConfig, System};

/// Serialization format for `--trace-out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    #[default]
    Chrome,
    /// One JSON object per line, every event verbatim.
    Jsonl,
}

impl TraceFormat {
    /// Parses a `--trace-format` argument.
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "chrome" => Some(TraceFormat::Chrome),
            "jsonl" => Some(TraceFormat::Jsonl),
            _ => None,
        }
    }

    /// The CLI name of the format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "chrome",
            TraceFormat::Jsonl => "jsonl",
        }
    }
}

/// What to observe during a [`run_observed`] run.
#[derive(Debug, Clone, Default)]
pub struct ObserveOptions {
    /// Attach an [`InvariantSink`] to every channel.
    pub check_invariants: bool,
    /// Serialize channel 0's event stream in this format.
    pub trace: Option<TraceFormat>,
    /// Attach a [`parbs_monitor`] monitor compiled from this spec to every
    /// channel.
    pub spec: Option<Spec>,
}

/// Invariant-check outcome of one channel.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Channel index.
    pub channel: usize,
    /// One-line sink summary (events seen, violations).
    pub summary: String,
    /// Formatted violation reports (rule, cycle, message, event window).
    pub violations: Vec<String>,
}

/// Monitor outcome of one channel.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Channel index.
    pub channel: usize,
    /// One-line monitor summary (events monitored, alarms).
    pub summary: String,
    /// Formatted alarms (`[severity] name cycle N: message`).
    pub alarms: Vec<String>,
    /// Fire count per trigger: `(name, severity, count)`.
    pub trigger_counts: Vec<(String, parbs_monitor::Severity, u64)>,
    /// Events this channel's monitor processed.
    pub events: u64,
    /// True when no error-severity trigger fired on this channel.
    pub ok: bool,
}

/// Everything collected from one observed run.
#[derive(Debug)]
pub struct ObservedRun {
    /// The ordinary simulation result.
    pub result: RunResult,
    /// Serialized channel-0 trace, when a format was requested.
    pub trace: Option<String>,
    /// Channel-0 counter summary (always collected).
    pub counters: String,
    /// Per-channel invariant reports (empty unless `check_invariants`).
    pub invariants: Vec<ChannelReport>,
    /// Total violations over all channels.
    pub violation_count: usize,
    /// Per-channel monitor reports (empty unless a spec was given).
    pub monitors: Vec<MonitorReport>,
    /// Total monitor alarms (warn + error) over all channels.
    pub alarm_count: usize,
}

/// Builds the per-channel sink stack. Push order is the detach contract of
/// [`detach`]: invariants first, then the monitor, then counters, then the
/// trace serializer.
fn attach(sys: &mut System, opts: &ObserveOptions) {
    for c in 0..sys.channels() {
        let mut fan = FanoutSink::new();
        if opts.check_invariants {
            fan.push(Box::new(InvariantSink::new()));
        }
        if let Some(spec) = &opts.spec {
            fan.push(Box::new(spec.monitor()));
        }
        if c == 0 {
            fan.push(Box::new(CounterSink::new()));
            match opts.trace {
                Some(TraceFormat::Chrome) => fan.push(Box::new(ChromeTraceSink::new())),
                Some(TraceFormat::Jsonl) => fan.push(Box::new(JsonlSink::new(Vec::new()))),
                None => {}
            }
        }
        if !fan.is_empty() {
            sys.set_event_sink(c, Box::new(fan));
        }
    }
}

/// Detaches every sink and folds their contents into an [`ObservedRun`].
fn detach(sys: &mut System, result: RunResult) -> ObservedRun {
    let mut out = ObservedRun {
        result,
        trace: None,
        counters: String::new(),
        invariants: Vec::new(),
        violation_count: 0,
        monitors: Vec::new(),
        alarm_count: 0,
    };
    for c in 0..sys.channels() {
        let Some(sink) = sys.take_event_sink(c) else { continue };
        let Ok(fan) = downcast_sink::<FanoutSink>(sink) else { continue };
        for child in fan.into_sinks() {
            let child = match downcast_sink::<InvariantSink>(child) {
                Ok(inv) => {
                    out.violation_count += inv.violations().len();
                    out.invariants.push(ChannelReport {
                        channel: c,
                        summary: inv.summary(),
                        violations: inv.violations().iter().map(ToString::to_string).collect(),
                    });
                    continue;
                }
                Err(child) => child,
            };
            let child = match downcast_sink::<Monitor>(child) {
                Ok(mon) => {
                    out.alarm_count += mon.alarms().len();
                    out.monitors.push(MonitorReport {
                        channel: c,
                        summary: mon.summary(),
                        alarms: mon.alarms().iter().map(ToString::to_string).collect(),
                        trigger_counts: mon
                            .trigger_counts()
                            .into_iter()
                            .map(|(n, s, k)| (n.to_owned(), s, k))
                            .collect(),
                        events: mon.events,
                        ok: mon.ok(),
                    });
                    continue;
                }
                Err(child) => child,
            };
            let child = match downcast_sink::<CounterSink>(child) {
                Ok(counters) => {
                    out.counters = counters.summary();
                    continue;
                }
                Err(child) => child,
            };
            let child = match downcast_sink::<ChromeTraceSink>(child) {
                Ok(chrome) => {
                    out.trace = Some(chrome.finish());
                    continue;
                }
                Err(child) => child,
            };
            if let Ok(jsonl) = downcast_sink::<JsonlSink<Vec<u8>>>(child) {
                out.trace = Some(jsonl.into_string());
            }
        }
    }
    out
}

/// Runs `mix` once under `scheduler` with sinks attached per `opts`.
///
/// # Panics
///
/// Panics if the mix's core count differs from `cfg.cores`.
#[must_use]
pub fn run_observed(
    cfg: SimConfig,
    mix: &MixSpec,
    scheduler: &SchedulerKind,
    opts: &ObserveOptions,
) -> ObservedRun {
    assert_eq!(mix.cores(), cfg.cores, "mix '{}' needs {} cores", mix.name, mix.cores());
    let geometry = cfg.geometry();
    let seed = cfg.seed;
    let streams: Vec<Box<dyn InstructionStream>> = mix
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, b)| {
            Box::new(SyntheticStream::new(b, geometry, seed, i as u64))
                as Box<dyn InstructionStream>
        })
        .collect();
    let mut sys = System::new(cfg, streams, scheduler);
    attach(&mut sys, opts);
    let result = sys.run();
    detach(&mut sys, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::case_study_1;

    fn quick_cfg(cores: usize) -> SimConfig {
        SimConfig { target_instructions: 1_500, ..SimConfig::for_cores(cores) }
    }

    #[test]
    fn observed_parbs_run_is_clean_and_produces_a_trace() {
        let mix = case_study_1();
        let opts = ObserveOptions {
            check_invariants: true,
            trace: Some(TraceFormat::Chrome),
            spec: Some(parbs_monitor::prelude::invariants()),
        };
        let obs = run_observed(
            quick_cfg(mix.cores()),
            &mix,
            &SchedulerKind::ParBs(Default::default()),
            &opts,
        );
        assert!(!obs.result.timed_out);
        assert_eq!(obs.violation_count, 0, "{:?}", obs.invariants);
        assert!(!obs.invariants.is_empty(), "every channel reports");
        let trace = obs.trace.expect("chrome trace requested");
        assert!(trace.starts_with('{') && trace.contains("\"traceEvents\""));
        assert!(trace.contains("batch "), "batch spans present");
        assert!(obs.counters.contains("thread"), "counter summary: {}", obs.counters);
        assert_eq!(obs.alarm_count, 0, "{:?}", obs.monitors);
        assert!(!obs.monitors.is_empty(), "every channel reports a monitor");
        assert!(obs.monitors.iter().all(|m| m.ok));
        // Each channel's monitor carries the four invariant triggers.
        assert_eq!(obs.monitors[0].trigger_counts.len(), 4);
    }

    #[test]
    fn jsonl_format_emits_one_object_per_line() {
        let mix = case_study_1();
        let opts =
            ObserveOptions { check_invariants: false, trace: Some(TraceFormat::Jsonl), spec: None };
        let obs = run_observed(quick_cfg(mix.cores()), &mix, &SchedulerKind::FrFcfs, &opts);
        let trace = obs.trace.expect("jsonl trace requested");
        let mut lines = 0usize;
        for line in trace.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            lines += 1;
        }
        assert!(lines > 100, "a real run produces many events, got {lines}");
        assert!(obs.invariants.is_empty(), "no invariant sinks attached");
    }

    #[test]
    fn trace_format_parses_cli_names() {
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert_eq!(TraceFormat::default().name(), "chrome");
    }
}
