//! Experiment harness: the parameter sweeps and case studies of Section 8,
//! expressed as **plan builders**.
//!
//! Each `*_plan` function returns an immutable description of the work —
//! an [`EvalPlan`] (flat job list) or a [`SweepPlan`] (jobs plus the
//! collation recipe back into labeled [`SweepRow`]s). Execute a plan on a
//! [`Harness`] with [`Harness::run_plan`] / [`SweepPlan::run`], choosing
//! any worker count; output is identical at every `jobs` level. The
//! `parbs-bench` regeneration binaries print the results in the shape of
//! the paper's tables and figures.

use parbs::{BatchingMode, ParBsConfig, Ranking, ThreadPriority};
use parbs_dram::{Geometry, MappingPolicy};
use parbs_metrics::{class_fairness, ClassFairness, SchedulerSummary};
use parbs_workloads::{all_benchmarks, classify, BenchmarkProfile, MixSpec};

use crate::{EvalJob, EvalOverrides, EvalPlan, Harness, MixEvaluation, SchedulerKind, SimConfig};

/// The plan behind Figs. 5, 6, 7 and 9: one mix under the paper's five
/// schedulers, in figure order.
#[must_use]
pub fn compare_plan(mix: &MixSpec) -> EvalPlan {
    SchedulerKind::paper_five().into_iter().map(|k| EvalJob::new(mix.clone(), k)).collect()
}

/// All evaluations of a multi-workload sweep for one scheduler.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scheduler label.
    pub label: String,
    /// One evaluation per workload, in workload order.
    pub evaluations: Vec<MixEvaluation>,
}

impl SweepRow {
    /// Aggregates this row the way the paper's Table 4 does.
    #[must_use]
    pub fn summary(&self) -> SchedulerSummary {
        let rows: Vec<parbs_metrics::MetricsRow> =
            self.evaluations.iter().map(|e| e.metrics.clone()).collect();
        let wc: Vec<u64> = self.evaluations.iter().map(|e| e.worst_case_latency).collect();
        SchedulerSummary::aggregate(&self.label, &rows, &wc)
    }
}

/// A labeled (mixes × kinds) sweep as an immutable plan: the flat job list
/// (kind-major, matching the serial sweeps) plus the recipe to collate the
/// flat results back into one [`SweepRow`] per labeled kind.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    labels: Vec<String>,
    mixes_per_row: usize,
    plan: EvalPlan,
}

impl SweepPlan {
    /// Builds the plan for every mix under every labeled kind.
    #[must_use]
    pub fn new(mixes: &[MixSpec], kinds: &[(String, SchedulerKind)]) -> Self {
        let rows: Vec<(String, SchedulerKind, EvalOverrides)> =
            kinds.iter().map(|(l, k)| (l.clone(), k.clone(), EvalOverrides::none())).collect();
        SweepPlan::with_overrides(mixes, &rows)
    }

    /// Builds the plan for every mix under every labeled job template —
    /// a scheduler kind plus the [`EvalOverrides`] its row runs with (the
    /// seam the geometry/mapping ablations use).
    #[must_use]
    pub fn with_overrides(
        mixes: &[MixSpec],
        rows: &[(String, SchedulerKind, EvalOverrides)],
    ) -> Self {
        let mut plan = EvalPlan::new();
        for (_, kind, overrides) in rows {
            for mix in mixes {
                plan.push(
                    EvalJob::new(mix.clone(), kind.clone()).with_overrides(overrides.clone()),
                );
            }
        }
        SweepPlan {
            labels: rows.iter().map(|(l, _, _)| l.clone()).collect(),
            mixes_per_row: mixes.len(),
            plan,
        }
    }

    /// The flat job list (kind-major).
    #[must_use]
    pub fn plan(&self) -> &EvalPlan {
        &self.plan
    }

    /// The row labels, in row order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Total number of jobs in the sweep.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.plan.len()
    }

    /// Collates flat plan-order results into labeled rows.
    ///
    /// # Panics
    ///
    /// Panics if `evals` does not hold exactly one evaluation per job.
    #[must_use]
    pub fn collate(&self, evals: Vec<MixEvaluation>) -> Vec<SweepRow> {
        assert_eq!(evals.len(), self.plan.len(), "one evaluation per planned job");
        let mut evals = evals.into_iter();
        self.labels
            .iter()
            .map(|label| SweepRow {
                label: label.clone(),
                evaluations: evals.by_ref().take(self.mixes_per_row).collect(),
            })
            .collect()
    }

    /// Executes the sweep on `harness` with up to `jobs` worker threads
    /// and collates the results.
    #[must_use]
    pub fn run(&self, harness: &Harness, jobs: usize) -> Vec<SweepRow> {
        self.collate(harness.run_plan(&self.plan, jobs))
    }

    /// Like [`SweepPlan::run`] but executing shared runs through `backend`
    /// (see [`Harness::run_plan_with`]): same rows, byte-identical, at any
    /// backend width and `jobs` level.
    #[must_use]
    pub fn run_with(
        &self,
        harness: &Harness,
        jobs: usize,
        backend: &dyn crate::ExecBackend,
    ) -> Vec<SweepRow> {
        self.collate(harness.run_plan_with(&self.plan, jobs, backend))
    }
}

/// The plan behind Figs. 8 and 10 and Table 4: every mix under every
/// labeled scheduler kind.
#[must_use]
pub fn sweep_plan(mixes: &[MixSpec], kinds: &[(String, SchedulerKind)]) -> SweepPlan {
    SweepPlan::new(mixes, kinds)
}

/// The labeled job templates of the geometry/mapping sensitivity study
/// (paper Section 6): mapping policy (row/line-interleaved) × XOR bank
/// permutation on/off × ranks per channel ∈ {1, 2, 4}, each under the
/// full seven-scheduler zoo. Non-rank geometry fields inherit `base`.
/// Labels read `row/r2/PAR-BS`, `line-noxor/r4/BLISS`, ...
#[must_use]
pub fn mapping_sweep_rows(base: Geometry) -> Vec<(String, SchedulerKind, EvalOverrides)> {
    let mut rows = Vec::new();
    for policy in [
        MappingPolicy::RowInterleaved { xor_permute: true },
        MappingPolicy::LineInterleaved { xor_permute: true },
    ] {
        for xor in [true, false] {
            let mapping = policy.with_xor(xor);
            for ranks in [1usize, 2, 4] {
                let geometry = Geometry { ranks_per_channel: ranks, ..base };
                for kind in SchedulerKind::zoo_seven() {
                    let label = format!("{}/r{}/{}", mapping.label(), ranks, kind.name());
                    rows.push((label, kind, EvalOverrides::shaped(Some(geometry), Some(mapping))));
                }
            }
        }
    }
    rows
}

/// The plan of the geometry/mapping ablation: every mix under every
/// [`mapping_sweep_rows`] template. The paper's Section 6 expectation:
/// turning the XOR permutation off hurts FR-FCFS most and PAR-BS least,
/// because batch-level parallelism recovery compensates for the extra row
/// conflicts.
#[must_use]
pub fn mapping_sweep_plan(mixes: &[MixSpec], base: Geometry) -> SweepPlan {
    SweepPlan::with_overrides(mixes, &mapping_sweep_rows(base))
}

/// The five paper schedulers as labeled sweep inputs.
#[must_use]
pub fn paper_five_labeled() -> Vec<(String, SchedulerKind)> {
    SchedulerKind::paper_five().into_iter().map(|k| (k.name().to_owned(), k)).collect()
}

/// The full seven-scheduler zoo as labeled sweep inputs (paper five plus
/// BLISS and ATLAS).
#[must_use]
pub fn zoo_seven_labeled() -> Vec<(String, SchedulerKind)> {
    SchedulerKind::zoo_seven().into_iter().map(|k| (k.name().to_owned(), k)).collect()
}

/// The scheduler-zoo comparison plan: every mixed CPU/accelerator workload
/// under all seven schedulers. Collate its rows with [`zoo_rows`] to get
/// the per-class fairness split the streaming agent is designed to stress.
#[must_use]
pub fn zoo_sweep_plan(mixes: &[MixSpec]) -> SweepPlan {
    SweepPlan::new(mixes, &zoo_seven_labeled())
}

/// One scheduler's line of the zoo comparison: the overall sweep row plus
/// the CPU-vs-accelerator fairness split averaged over the sweep's mixes.
#[derive(Debug, Clone)]
pub struct ZooRow {
    /// The underlying sweep row (label + per-mix evaluations).
    pub row: SweepRow,
    /// Geometric mean of per-mix CPU-thread unfairness.
    pub cpu_unfairness: f64,
    /// Maximum CPU-thread slowdown over all mixes.
    pub cpu_max_slowdown: f64,
    /// Maximum accelerator slowdown over all mixes.
    pub accel_max_slowdown: f64,
}

/// Splits each sweep row's fairness by agent class. `mixes` must be the
/// slice the plan was built from (same order); each evaluation is scored
/// against its mix's [`MixSpec::accel_mask`].
///
/// # Panics
///
/// Panics if a row's evaluation count differs from `mixes.len()`.
#[must_use]
pub fn zoo_rows(rows: Vec<SweepRow>, mixes: &[MixSpec]) -> Vec<ZooRow> {
    rows.into_iter()
        .map(|row| {
            assert_eq!(row.evaluations.len(), mixes.len(), "one evaluation per sweep mix");
            let splits: Vec<ClassFairness> = row
                .evaluations
                .iter()
                .zip(mixes)
                .map(|(e, mix)| class_fairness(&e.metrics.slowdowns, &mix.accel_mask()))
                .collect();
            let gmean = |f: fn(&ClassFairness) -> f64| {
                let log_sum: f64 = splits.iter().map(|s| f(s).max(f64::MIN_POSITIVE).ln()).sum();
                (log_sum / splits.len().max(1) as f64).exp()
            };
            ZooRow {
                cpu_unfairness: gmean(|s| s.cpu_unfairness),
                cpu_max_slowdown: splits.iter().map(|s| s.cpu_max_slowdown).fold(0.0, f64::max),
                accel_max_slowdown: splits.iter().map(|s| s.accel_max_slowdown).fold(0.0, f64::max),
                row,
            }
        })
        .collect()
}

/// The labeled kinds of the Fig. 11 Marking-Cap sweep. `caps` are the cap
/// values (`None` = no cap); labels follow the paper ("c=1".."c=20",
/// "no-c").
#[must_use]
pub fn marking_cap_kinds(caps: &[Option<u32>]) -> Vec<(String, SchedulerKind)> {
    caps.iter()
        .map(|cap| {
            let label = match cap {
                Some(c) => format!("c={c}"),
                None => "no-c".to_owned(),
            };
            (
                label,
                SchedulerKind::ParBs(ParBsConfig { marking_cap: *cap, ..ParBsConfig::default() }),
            )
        })
        .collect()
}

/// The plan behind Fig. 11: the Marking-Cap sweep.
#[must_use]
pub fn marking_cap_plan(mixes: &[MixSpec], caps: &[Option<u32>]) -> SweepPlan {
    SweepPlan::new(mixes, &marking_cap_kinds(caps))
}

/// The labeled kinds of the Fig. 12 batching-choice sweep: time-based
/// static batching with the paper's durations, empty-slot batching, and
/// full batching.
#[must_use]
pub fn batching_kinds() -> Vec<(String, SchedulerKind)> {
    let mut kinds: Vec<(String, SchedulerKind)> =
        [400u64, 800, 1_600, 3_200, 6_400, 12_800, 25_600]
            .iter()
            .map(|&d| {
                (
                    format!("st-{d}"),
                    SchedulerKind::ParBs(ParBsConfig {
                        batching: BatchingMode::Static { duration: d },
                        ..ParBsConfig::default()
                    }),
                )
            })
            .collect();
    kinds.push((
        "eslot".to_owned(),
        SchedulerKind::ParBs(ParBsConfig {
            batching: BatchingMode::EmptySlot,
            ..ParBsConfig::default()
        }),
    ));
    kinds.push(("full".to_owned(), SchedulerKind::ParBs(ParBsConfig::default())));
    kinds
}

/// The plan behind Fig. 12: the batching-choice sweep.
#[must_use]
pub fn batching_plan(mixes: &[MixSpec]) -> SweepPlan {
    SweepPlan::new(mixes, &batching_kinds())
}

/// The labeled scheduler list of Fig. 13: the within-batch ranking
/// alternatives, the rank-free variants, and STFM for reference.
#[must_use]
pub fn ranking_kinds() -> Vec<(String, SchedulerKind)> {
    let parbs = |ranking| SchedulerKind::ParBs(ParBsConfig { ranking, ..ParBsConfig::default() });
    vec![
        ("max-total(PAR-BS)".to_owned(), parbs(Ranking::MaxTotal)),
        ("total-max".to_owned(), parbs(Ranking::TotalMax)),
        ("random".to_owned(), parbs(Ranking::Random)),
        ("round-robin".to_owned(), parbs(Ranking::RoundRobin)),
        ("no-rank(FR-FCFS)".to_owned(), SchedulerKind::ParBs(ParBsConfig::no_rank_frfcfs())),
        ("no-rank(FCFS)".to_owned(), SchedulerKind::ParBs(ParBsConfig::no_rank_fcfs())),
        ("STFM".to_owned(), SchedulerKind::Stfm),
    ]
}

/// The plan behind Fig. 13: the within-batch scheduling sweep.
#[must_use]
pub fn ranking_plan(mixes: &[MixSpec]) -> SweepPlan {
    SweepPlan::new(mixes, &ranking_kinds())
}

/// The plan behind Fig. 14 (left): four copies of lbm with unequal
/// importance — NFQ/STFM weights 8-8-4-1, PAR-BS priorities 1-1-2-8. One
/// job per scheme in the order FR-FCFS, NFQ, STFM, PAR-BS.
#[must_use]
pub fn priority_weighted_plan() -> EvalPlan {
    let mix = MixSpec::from_names("lbm-pri", &["lbm", "lbm", "lbm", "lbm"]);
    let weights = vec![8.0, 8.0, 4.0, 1.0];
    let priorities = vec![
        ThreadPriority::Level1,
        ThreadPriority::Level1,
        ThreadPriority::Level(2),
        ThreadPriority::Level(8),
    ];
    let mut plan = EvalPlan::new();
    plan.push(EvalJob::new(mix.clone(), SchedulerKind::FrFcfs));
    plan.push(EvalJob::new(mix.clone(), SchedulerKind::Nfq).with_weights(weights.clone()));
    plan.push(EvalJob::new(mix.clone(), SchedulerKind::Stfm).with_weights(weights));
    plan.push(
        EvalJob::new(mix, SchedulerKind::ParBs(ParBsConfig::default())).with_priorities(priorities),
    );
    plan
}

/// The plan behind Fig. 14 (right): omnetpp is the only important thread;
/// the other three run opportunistically (PAR-BS) or with a tiny share
/// (weight 1 vs. 8192 for NFQ/STFM, approximating "opportunistic" as the
/// paper does).
#[must_use]
pub fn priority_opportunistic_plan() -> EvalPlan {
    let mix = MixSpec::from_names("omnetpp-pri", &["libquantum", "milc", "omnetpp", "astar"]);
    let weights = vec![1.0, 1.0, 8192.0, 1.0];
    let priorities = vec![
        ThreadPriority::Opportunistic,
        ThreadPriority::Opportunistic,
        ThreadPriority::Level1,
        ThreadPriority::Opportunistic,
    ];
    let mut plan = EvalPlan::new();
    plan.push(EvalJob::new(mix.clone(), SchedulerKind::FrFcfs));
    plan.push(EvalJob::new(mix.clone(), SchedulerKind::Nfq).with_weights(weights.clone()));
    plan.push(EvalJob::new(mix.clone(), SchedulerKind::Stfm).with_weights(weights));
    plan.push(
        EvalJob::new(mix, SchedulerKind::ParBs(ParBsConfig::default())).with_priorities(priorities),
    );
    plan
}

/// One row of the regenerated Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// The benchmark (paper targets included).
    pub bench: &'static BenchmarkProfile,
    /// Measured memory cycles per instruction (alone).
    pub mcpi: f64,
    /// Measured misses per kilo-instruction.
    pub mpki: f64,
    /// Measured row-buffer hit rate.
    pub rb_hit: f64,
    /// Measured bank-level parallelism.
    pub blp: f64,
    /// Measured average stall per request.
    pub ast_per_req: f64,
    /// Category computed from the measured values.
    pub measured_category: u8,
}

/// Regenerates Table 3: every benchmark alone on the baseline system under
/// FR-FCFS, fanned over up to `jobs` worker threads. `harness` supplies
/// the base configuration (its core count is replaced by 1).
#[must_use]
pub fn table3_rows(harness: &Harness, jobs: usize) -> Vec<Table3Row> {
    let alone = Harness::new(SimConfig { cores: 1, ..harness.config().clone() });
    let benches: Vec<&'static BenchmarkProfile> = all_benchmarks().iter().collect();
    crate::executor::scope_map(&benches, jobs, |&bench| {
        let mix = MixSpec { name: bench.name.to_owned(), benchmarks: vec![bench] };
        let result = alone.run_shared(&mix, &SchedulerKind::FrFcfs, &EvalOverrides::none());
        let t = result.threads[0];
        Table3Row {
            bench,
            mcpi: t.mcpi(),
            mpki: t.mpki(),
            rb_hit: result.row_hit_rate,
            blp: t.blp,
            ast_per_req: t.ast_per_req(),
            measured_category: classify(t.mcpi(), result.row_hit_rate, t.blp),
        }
    })
}

/// Micro-experiments behind the motivation figures (Figs. 1 and 2).
pub mod micro {
    use parbs::{ParBsConfig, ParBsScheduler};
    use parbs_dram::{
        Controller, DramConfig, FcfsScheduler, LineAddr, Request, RequestKind, ThreadId,
    };

    fn read(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            0,
        )
    }

    /// Figure 1: one thread's two requests to **different banks** overlap,
    /// while two requests to **different rows of one bank** serialize.
    /// Returns `(overlapped_finish, serialized_finish)` — the cycle at
    /// which the thread's second request completes in each scenario.
    #[must_use]
    pub fn fig1_overlap() -> (u64, u64) {
        let run = |banks: [usize; 2], rows: [u64; 2]| {
            let mut ctrl =
                Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
            ctrl.try_enqueue(read(0, 0, banks[0], rows[0])).unwrap();
            ctrl.try_enqueue(read(1, 0, banks[1], rows[1])).unwrap();
            let mut now = 0;
            let done = ctrl.run_to_drain(&mut now, 1_000_000);
            done.iter().map(|c| c.finish).max().unwrap()
        };
        (run([0, 1], [1, 1]), run([0, 0], [1, 2]))
    }

    /// Figure 2: two threads, two banks, two requests each, arrival order
    /// interleaved (T0→B0, T1→B1, T1→B0, T0→B1). Returns the per-thread
    /// stall times `[T0, T1]` under a conventional (FCFS) scheduler and
    /// under PAR-BS; the averages show ~2 vs ~1.5 bank latencies.
    #[must_use]
    pub fn fig2_stall_times() -> ([u64; 2], [u64; 2]) {
        let run = |parbs: bool| {
            let sched: Box<dyn parbs_dram::MemoryScheduler> = if parbs {
                Box::new(ParBsScheduler::new(ParBsConfig::default()))
            } else {
                Box::new(FcfsScheduler::new())
            };
            let mut ctrl = Controller::with_checker(DramConfig::default(), sched);
            // Arrival order from the figure: each thread's two concurrent
            // requests interleave with the other thread's.
            ctrl.try_enqueue(read(0, 0, 0, 1)).unwrap();
            ctrl.try_enqueue(read(1, 1, 1, 2)).unwrap();
            ctrl.try_enqueue(read(2, 1, 0, 3)).unwrap();
            ctrl.try_enqueue(read(3, 0, 1, 4)).unwrap();
            let mut now = 0;
            let done = ctrl.run_to_drain(&mut now, 1_000_000);
            let mut stall = [0u64; 2];
            for c in &done {
                stall[c.thread.0] = stall[c.thread.0].max(c.finish);
            }
            stall
        };
        (run(false), run(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use parbs_workloads::case_study_1;

    fn quick_harness() -> Harness {
        Harness::new(SimConfig { target_instructions: 1_000, ..SimConfig::for_cores(4) })
    }

    #[test]
    fn compare_plan_returns_five() {
        let h = quick_harness();
        let evals = h.run_plan(&compare_plan(&case_study_1()), 2);
        assert_eq!(evals.len(), 5);
        assert_eq!(evals[0].scheduler, "FR-FCFS");
        assert_eq!(evals[4].scheduler, "PAR-BS");
    }

    #[test]
    fn mapping_sweep_covers_the_ablation_grid() {
        let base = Geometry::table2();
        let rows = mapping_sweep_rows(base);
        // 2 policies × XOR on/off × 3 rank counts × 7 schedulers.
        assert_eq!(rows.len(), 84);
        let labels: Vec<&str> = rows.iter().map(|(l, _, _)| l.as_str()).collect();
        assert_eq!(labels[0], "row/r1/FR-FCFS");
        assert!(labels.contains(&"row-noxor/r2/PAR-BS"));
        assert!(labels.contains(&"line-noxor/r4/FCFS"));
        assert!(labels.contains(&"line-noxor/r4/BLISS"));
        assert!(labels.contains(&"row/r1/ATLAS"));
        for (_, _, o) in &rows {
            assert!(!o.is_none(), "every row pins its geometry and mapping");
            o.geometry.unwrap().validate().expect("every swept geometry is valid");
        }
        let plan = mapping_sweep_plan(&[case_study_1()], base);
        assert_eq!(plan.job_count(), 84);
        assert_eq!(plan.labels().len(), 84);
    }

    #[test]
    fn zoo_sweep_splits_fairness_by_agent_class() {
        let h = quick_harness();
        let mixes = [parbs_workloads::accel_case_study()];
        let sweep = zoo_sweep_plan(&mixes);
        assert_eq!(sweep.job_count(), 7);
        let rows = zoo_rows(sweep.run(&h, 2), &mixes);
        let labels: Vec<&str> = rows.iter().map(|r| r.row.label.as_str()).collect();
        assert_eq!(labels, ["FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS", "BLISS", "ATLAS"]);
        for r in &rows {
            assert!(r.cpu_unfairness >= 1.0, "{}: unfairness is max/min", r.row.label);
            assert!(r.cpu_max_slowdown >= 1.0, "{}", r.row.label);
            assert!(r.accel_max_slowdown >= 1.0, "{}", r.row.label);
        }
    }

    #[test]
    fn shaped_sweep_rows_are_deterministic_at_any_jobs_level() {
        let h = quick_harness();
        let mixes = [case_study_1()];
        // The r2 PAR-BS slice of the ablation: small enough for a unit
        // test, still exercising geometry+mapping overrides end to end.
        let rows: Vec<_> = mapping_sweep_rows(h.config().dram.geometry)
            .into_iter()
            .filter(|(l, _, _)| l.contains("/r2/") && l.ends_with("PAR-BS"))
            .collect();
        assert_eq!(rows.len(), 4);
        let sweep = SweepPlan::with_overrides(&mixes, &rows);
        let serial = sweep.run(&h, 1);
        let parallel = sweep.run(&h, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.evaluations, b.evaluations);
        }
    }

    #[test]
    fn fig1_overlap_hides_second_access() {
        let (overlapped, serialized) = micro::fig1_overlap();
        assert!(
            overlapped + 100 < serialized,
            "different banks ({overlapped}) must overlap vs same bank ({serialized})"
        );
    }

    #[test]
    fn fig2_parbs_beats_conventional_on_average() {
        let (conv, parbs) = micro::fig2_stall_times();
        let avg = |s: [u64; 2]| (s[0] + s[1]) as f64 / 2.0;
        assert!(
            avg(parbs) < avg(conv),
            "parallelism-aware avg stall {parbs:?} must beat conventional {conv:?}"
        );
        // One thread's stall shrinks toward a single bank latency (the
        // "Saved cycles" of Fig. 2) without penalizing the other thread.
        assert!(parbs.iter().min() < conv.iter().min());
        assert!(parbs.iter().max() <= conv.iter().max());
    }

    #[test]
    fn marking_cap_plan_labels() {
        let h = quick_harness();
        let mixes = [case_study_1()];
        let sweep = marking_cap_plan(&mixes, &[Some(1), Some(5), None]);
        assert_eq!(sweep.job_count(), 3);
        let rows = sweep.run(&h, 3);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["c=1", "c=5", "no-c"]);
        for row in &rows {
            assert_eq!(row.evaluations.len(), 1);
        }
    }

    #[test]
    fn table3_rows_parallel_matches_serial() {
        let h = quick_harness();
        let serial = table3_rows(&h, 1);
        let parallel = table3_rows(&h, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), all_benchmarks().len());
    }
}
