//! Experiment harness: the parameter sweeps and case studies of Section 8.
//!
//! Each function returns structured data; the `parbs-bench` regeneration
//! binaries print them in the shape of the paper's tables and figures.

use parbs::{BatchingMode, ParBsConfig, Ranking, ThreadPriority};
use parbs_metrics::SchedulerSummary;
use parbs_workloads::{all_benchmarks, classify, BenchmarkProfile, MixSpec};

use crate::{MixEvaluation, SchedulerKind, Session};

/// Runs one mix under the paper's five schedulers (Figs. 5, 6, 7, 9).
pub fn compare_schedulers(session: &mut Session, mix: &MixSpec) -> Vec<MixEvaluation> {
    SchedulerKind::paper_five().iter().map(|k| session.evaluate_mix(mix, k)).collect()
}

/// All evaluations of a multi-workload sweep for one scheduler.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Scheduler label.
    pub label: String,
    /// One evaluation per workload, in workload order.
    pub evaluations: Vec<MixEvaluation>,
}

impl SweepRow {
    /// Aggregates this row the way the paper's Table 4 does.
    #[must_use]
    pub fn summary(&self) -> SchedulerSummary {
        let rows: Vec<parbs_metrics::MetricsRow> =
            self.evaluations.iter().map(|e| e.metrics.clone()).collect();
        let wc: Vec<u64> = self.evaluations.iter().map(|e| e.worst_case_latency).collect();
        SchedulerSummary::aggregate(&self.label, &rows, &wc)
    }
}

/// Runs every mix under every scheduler kind (Figs. 8, 10; Table 4).
pub fn sweep(
    session: &mut Session,
    mixes: &[MixSpec],
    kinds: &[(String, SchedulerKind)],
) -> Vec<SweepRow> {
    kinds
        .iter()
        .map(|(label, kind)| SweepRow {
            label: label.clone(),
            evaluations: mixes.iter().map(|m| session.evaluate_mix(m, kind)).collect(),
        })
        .collect()
}

/// The five paper schedulers as labeled sweep inputs.
#[must_use]
pub fn paper_five_labeled() -> Vec<(String, SchedulerKind)> {
    SchedulerKind::paper_five().into_iter().map(|k| (k.name().to_owned(), k)).collect()
}

/// Fig. 11: Marking-Cap sweep. `caps` are the cap values (`None` = no cap);
/// labels follow the paper ("c=1".."c=20", "no-c").
pub fn marking_cap_sweep(
    session: &mut Session,
    mixes: &[MixSpec],
    caps: &[Option<u32>],
) -> Vec<SweepRow> {
    let kinds: Vec<(String, SchedulerKind)> = caps
        .iter()
        .map(|cap| {
            let label = match cap {
                Some(c) => format!("c={c}"),
                None => "no-c".to_owned(),
            };
            (
                label,
                SchedulerKind::ParBs(ParBsConfig { marking_cap: *cap, ..ParBsConfig::default() }),
            )
        })
        .collect();
    sweep(session, mixes, &kinds)
}

/// Fig. 12: batching-choice sweep — time-based static batching with the
/// paper's durations, empty-slot batching, and full batching.
pub fn batching_sweep(session: &mut Session, mixes: &[MixSpec]) -> Vec<SweepRow> {
    let mut kinds: Vec<(String, SchedulerKind)> =
        [400u64, 800, 1_600, 3_200, 6_400, 12_800, 25_600]
            .iter()
            .map(|&d| {
                (
                    format!("st-{d}"),
                    SchedulerKind::ParBs(ParBsConfig {
                        batching: BatchingMode::Static { duration: d },
                        ..ParBsConfig::default()
                    }),
                )
            })
            .collect();
    kinds.push((
        "eslot".to_owned(),
        SchedulerKind::ParBs(ParBsConfig {
            batching: BatchingMode::EmptySlot,
            ..ParBsConfig::default()
        }),
    ));
    kinds.push(("full".to_owned(), SchedulerKind::ParBs(ParBsConfig::default())));
    sweep(session, mixes, &kinds)
}

/// The labeled scheduler list of Fig. 13: the within-batch ranking
/// alternatives, the rank-free variants, and STFM for reference.
#[must_use]
pub fn ranking_kinds() -> Vec<(String, SchedulerKind)> {
    let parbs = |ranking| SchedulerKind::ParBs(ParBsConfig { ranking, ..ParBsConfig::default() });
    vec![
        ("max-total(PAR-BS)".to_owned(), parbs(Ranking::MaxTotal)),
        ("total-max".to_owned(), parbs(Ranking::TotalMax)),
        ("random".to_owned(), parbs(Ranking::Random)),
        ("round-robin".to_owned(), parbs(Ranking::RoundRobin)),
        ("no-rank(FR-FCFS)".to_owned(), SchedulerKind::ParBs(ParBsConfig::no_rank_frfcfs())),
        ("no-rank(FCFS)".to_owned(), SchedulerKind::ParBs(ParBsConfig::no_rank_fcfs())),
        ("STFM".to_owned(), SchedulerKind::Stfm),
    ]
}

/// Fig. 13: within-batch scheduling sweep — the ranking alternatives plus
/// the rank-free variants and STFM for reference.
pub fn ranking_sweep(session: &mut Session, mixes: &[MixSpec]) -> Vec<SweepRow> {
    let kinds = ranking_kinds();
    sweep(session, mixes, &kinds)
}

/// Fig. 14 (left): four copies of lbm with unequal importance — NFQ/STFM
/// weights 8-8-4-1, PAR-BS priorities 1-1-2-8. Returns one evaluation per
/// scheme in the order FR-FCFS, NFQ, STFM, PAR-BS.
pub fn priority_weighted_lbm(session: &mut Session) -> Vec<MixEvaluation> {
    let mix = MixSpec::from_names("lbm-pri", &["lbm", "lbm", "lbm", "lbm"]);
    let weights = vec![8.0, 8.0, 4.0, 1.0];
    let priorities = vec![
        ThreadPriority::Level1,
        ThreadPriority::Level1,
        ThreadPriority::Level(2),
        ThreadPriority::Level(8),
    ];
    vec![
        session.evaluate_mix(&mix, &SchedulerKind::FrFcfs),
        session.evaluate_mix_with(&mix, &SchedulerKind::Nfq, weights.clone(), Vec::new()),
        session.evaluate_mix_with(&mix, &SchedulerKind::Stfm, weights, Vec::new()),
        session.evaluate_mix_with(
            &mix,
            &SchedulerKind::ParBs(ParBsConfig::default()),
            Vec::new(),
            priorities,
        ),
    ]
}

/// Fig. 14 (right): omnetpp is the only important thread; the other three
/// run opportunistically (PAR-BS) or with a tiny share (weight 1 vs. 8192
/// for NFQ/STFM, approximating "opportunistic" as the paper does).
pub fn priority_opportunistic(session: &mut Session) -> Vec<MixEvaluation> {
    let mix = MixSpec::from_names("omnetpp-pri", &["libquantum", "milc", "omnetpp", "astar"]);
    let weights = vec![1.0, 1.0, 8192.0, 1.0];
    let priorities = vec![
        ThreadPriority::Opportunistic,
        ThreadPriority::Opportunistic,
        ThreadPriority::Level1,
        ThreadPriority::Opportunistic,
    ];
    vec![
        session.evaluate_mix(&mix, &SchedulerKind::FrFcfs),
        session.evaluate_mix_with(&mix, &SchedulerKind::Nfq, weights.clone(), Vec::new()),
        session.evaluate_mix_with(&mix, &SchedulerKind::Stfm, weights, Vec::new()),
        session.evaluate_mix_with(
            &mix,
            &SchedulerKind::ParBs(ParBsConfig::default()),
            Vec::new(),
            priorities,
        ),
    ]
}

/// One row of the regenerated Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// The benchmark (paper targets included).
    pub bench: &'static BenchmarkProfile,
    /// Measured memory cycles per instruction (alone).
    pub mcpi: f64,
    /// Measured misses per kilo-instruction.
    pub mpki: f64,
    /// Measured row-buffer hit rate.
    pub rb_hit: f64,
    /// Measured bank-level parallelism.
    pub blp: f64,
    /// Measured average stall per request.
    pub ast_per_req: f64,
    /// Category computed from the measured values.
    pub measured_category: u8,
}

/// Regenerates Table 3: every benchmark alone on the baseline system under
/// FR-FCFS.
pub fn table3(session: &mut Session) -> Vec<Table3Row> {
    all_benchmarks()
        .iter()
        .map(|bench| {
            let mix = MixSpec { name: bench.name.to_owned(), benchmarks: vec![bench] };
            let mut alone_session =
                Session::new(crate::SimConfig { cores: 1, ..session.config().clone() });
            let result = alone_session.run_shared(&mix, &SchedulerKind::FrFcfs);
            let t = result.threads[0];
            Table3Row {
                bench,
                mcpi: t.mcpi(),
                mpki: t.mpki(),
                rb_hit: result.row_hit_rate,
                blp: t.blp,
                ast_per_req: t.ast_per_req(),
                measured_category: classify(t.mcpi(), result.row_hit_rate, t.blp),
            }
        })
        .collect()
}

/// Micro-experiments behind the motivation figures (Figs. 1 and 2).
pub mod micro {
    use parbs::{ParBsConfig, ParBsScheduler};
    use parbs_dram::{
        Controller, DramConfig, FcfsScheduler, LineAddr, Request, RequestKind, ThreadId,
    };

    fn read(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            0,
        )
    }

    /// Figure 1: one thread's two requests to **different banks** overlap,
    /// while two requests to **different rows of one bank** serialize.
    /// Returns `(overlapped_finish, serialized_finish)` — the cycle at
    /// which the thread's second request completes in each scenario.
    #[must_use]
    pub fn fig1_overlap() -> (u64, u64) {
        let run = |banks: [usize; 2], rows: [u64; 2]| {
            let mut ctrl =
                Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
            ctrl.try_enqueue(read(0, 0, banks[0], rows[0])).unwrap();
            ctrl.try_enqueue(read(1, 0, banks[1], rows[1])).unwrap();
            let mut now = 0;
            let done = ctrl.run_to_drain(&mut now, 1_000_000);
            done.iter().map(|c| c.finish).max().unwrap()
        };
        (run([0, 1], [1, 1]), run([0, 0], [1, 2]))
    }

    /// Figure 2: two threads, two banks, two requests each, arrival order
    /// interleaved (T0→B0, T1→B1, T1→B0, T0→B1). Returns the per-thread
    /// stall times `[T0, T1]` under a conventional (FCFS) scheduler and
    /// under PAR-BS; the averages show ~2 vs ~1.5 bank latencies.
    #[must_use]
    pub fn fig2_stall_times() -> ([u64; 2], [u64; 2]) {
        let run = |parbs: bool| {
            let sched: Box<dyn parbs_dram::MemoryScheduler> = if parbs {
                Box::new(ParBsScheduler::new(ParBsConfig::default()))
            } else {
                Box::new(FcfsScheduler::new())
            };
            let mut ctrl = Controller::with_checker(DramConfig::default(), sched);
            // Arrival order from the figure: each thread's two concurrent
            // requests interleave with the other thread's.
            ctrl.try_enqueue(read(0, 0, 0, 1)).unwrap();
            ctrl.try_enqueue(read(1, 1, 1, 2)).unwrap();
            ctrl.try_enqueue(read(2, 1, 0, 3)).unwrap();
            ctrl.try_enqueue(read(3, 0, 1, 4)).unwrap();
            let mut now = 0;
            let done = ctrl.run_to_drain(&mut now, 1_000_000);
            let mut stall = [0u64; 2];
            for c in &done {
                stall[c.thread.0] = stall[c.thread.0].max(c.finish);
            }
            stall
        };
        (run(false), run(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use parbs_workloads::case_study_1;

    fn quick_session() -> Session {
        Session::new(SimConfig { target_instructions: 1_000, ..SimConfig::for_cores(4) })
    }

    #[test]
    fn compare_schedulers_returns_five() {
        let mut s = quick_session();
        let evals = compare_schedulers(&mut s, &case_study_1());
        assert_eq!(evals.len(), 5);
        assert_eq!(evals[0].scheduler, "FR-FCFS");
        assert_eq!(evals[4].scheduler, "PAR-BS");
    }

    #[test]
    fn fig1_overlap_hides_second_access() {
        let (overlapped, serialized) = micro::fig1_overlap();
        assert!(
            overlapped + 100 < serialized,
            "different banks ({overlapped}) must overlap vs same bank ({serialized})"
        );
    }

    #[test]
    fn fig2_parbs_beats_conventional_on_average() {
        let (conv, parbs) = micro::fig2_stall_times();
        let avg = |s: [u64; 2]| (s[0] + s[1]) as f64 / 2.0;
        assert!(
            avg(parbs) < avg(conv),
            "parallelism-aware avg stall {parbs:?} must beat conventional {conv:?}"
        );
        // One thread's stall shrinks toward a single bank latency (the
        // "Saved cycles" of Fig. 2) without penalizing the other thread.
        assert!(parbs.iter().min() < conv.iter().min());
        assert!(parbs.iter().max() <= conv.iter().max());
    }

    #[test]
    fn marking_cap_sweep_labels() {
        let mut s = quick_session();
        let mixes = [case_study_1()];
        let rows = marking_cap_sweep(&mut s, &mixes, &[Some(1), Some(5), None]);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["c=1", "c=5", "no-c"]);
        for row in &rows {
            assert_eq!(row.evaluations.len(), 1);
        }
    }
}
