//! Full-system CMP + shared-DRAM simulator and the experiment harness that
//! regenerates every table and figure of the PAR-BS paper.
//!
//! A [`System`] couples N [`parbs_cpu::Core`]s (one thread each) to one
//! [`parbs_dram::Controller`] per DRAM channel, routes requests by the
//! XOR-permuted address mapping, and feeds per-thread stall cycles back to
//! stall-time-aware schedulers (STFM). The [`Session`] runner measures each
//! thread both **shared** (in a multiprogrammed mix) and **alone** on the
//! same memory system — the two measurements behind the paper's memory
//! slowdown, unfairness, weighted/hmean speedup and AST/req metrics — with
//! alone-run caching across experiments.
//!
//! The [`experiments`] module encodes the parameter sweeps of Section 8
//! (scheduler comparisons, Marking-Cap sweep, batching-mode sweep,
//! within-batch ranking sweep, thread priorities).
//!
//! # Examples
//!
//! ```
//! use parbs_sim::{Session, SimConfig, SchedulerKind};
//! use parbs_workloads::case_study_3;
//!
//! // A fast, scaled-down run of Case Study III (4 copies of lbm).
//! let cfg = SimConfig { target_instructions: 2_000, ..SimConfig::for_cores(4) };
//! let mut session = Session::new(cfg);
//! let row = session.evaluate_mix(&case_study_3(), &SchedulerKind::FrFcfs);
//! assert_eq!(row.metrics.slowdowns.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod experiments;
mod runner;
mod sched_kind;
mod system;

pub use config::SimConfig;
pub use runner::{MixEvaluation, Session};
pub use sched_kind::SchedulerKind;
pub use system::{RunResult, System, ThreadRunStats};
