//! Full-system CMP + shared-DRAM simulator and the experiment harness that
//! regenerates every table and figure of the PAR-BS paper.
//!
//! A [`System`] couples N [`parbs_cpu::Core`]s (one thread each) to one
//! [`parbs_dram::Controller`] per DRAM channel, routes requests by the
//! XOR-permuted address mapping, and feeds per-thread stall cycles back to
//! stall-time-aware schedulers (STFM).
//!
//! Measurement is **plan-based**: an [`EvalPlan`] is an immutable list of
//! [`EvalJob`]s (mix × scheduler × [`EvalOverrides`]), and a `Send + Sync`
//! [`Harness`] executes plans — serially or fanned across worker threads
//! with [`Harness::run_plan`] — measuring each thread both **shared** (in a
//! multiprogrammed mix) and **alone** on the same memory system. The two
//! measurements yield the paper's memory slowdown, unfairness,
//! weighted/hmean speedup and AST/req metrics; alone baselines are memoized
//! in a concurrent single-flight cache keyed by [`AloneKey`], so results
//! are identical at every `jobs` level.
//!
//! The [`experiments`] module encodes the parameter sweeps of Section 8
//! (scheduler comparisons, Marking-Cap sweep, batching-mode sweep,
//! within-batch ranking sweep, thread priorities) as plan builders.
//!
//! # Examples
//!
//! ```
//! use parbs_sim::{EvalJob, EvalPlan, Harness, SchedulerKind, SimConfig};
//! use parbs_workloads::case_study_3;
//!
//! // A fast, scaled-down run of Case Study III (4 copies of lbm) under
//! // two schedulers, executed on two worker threads.
//! let cfg = SimConfig { target_instructions: 2_000, ..SimConfig::for_cores(4) };
//! let harness = Harness::new(cfg);
//! let mut plan = EvalPlan::new();
//! plan.push(EvalJob::new(case_study_3(), SchedulerKind::FrFcfs));
//! plan.push(EvalJob::new(case_study_3(), SchedulerKind::ParBs(Default::default())));
//! let rows = harness.run_plan(&plan, 2);
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows[0].metrics.slowdowns.len(), 4);
//! ```

mod backend;
mod checkpoint;
mod config;
mod executor;
pub mod experiments;
mod flow;
mod harness;
mod observe;
mod plan;
mod runner;
mod sched_kind;
mod system;

pub use backend::{AnyBackend, ExecBackend, Lanes, Scalar};
pub use checkpoint::{CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use config::SimConfig;
pub use executor::default_jobs;
pub use flow::{drive_source, run_flow, run_flow_sweep, FlowRunResult, SourceDriveResult};
pub use harness::{AloneKey, CacheStats, Harness, MixEvaluation};
pub use observe::{
    run_observed, ChannelReport, MonitorReport, ObserveOptions, ObservedRun, TraceFormat,
};
pub use plan::{EvalJob, EvalOverrides, EvalPlan};
pub use runner::Session;
pub use sched_kind::SchedulerKind;
pub use system::{RunProgress, RunResult, System, ThreadRunStats};
