//! The cycle-driven full system: cores + controllers + request routing.

use std::collections::HashMap;

use parbs_cpu::{Core, InstructionStream, MissId};
use parbs_dram::{BlpTracker, Completion, Controller, Request, RequestKind, ThreadId, DRAM_CYCLE};

use crate::{SchedulerKind, SimConfig};

/// Per-thread measurement snapshot, taken the cycle the thread commits its
/// target instruction count (contention continues afterwards so slower
/// threads keep experiencing realistic interference).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThreadRunStats {
    /// Instructions committed at snapshot time.
    pub instructions: u64,
    /// Cycles elapsed at snapshot time.
    pub cycles: u64,
    /// Memory stall cycles at snapshot time.
    pub mem_stall_cycles: u64,
    /// DRAM read requests issued at snapshot time.
    pub dram_reads: u64,
    /// DRAM write requests issued at snapshot time.
    pub dram_writes: u64,
    /// Average bank-level parallelism observed for the thread.
    pub blp: f64,
    /// Read row-buffer hit rate of the thread.
    pub read_hit_rate: f64,
    /// Worst-case read latency observed for the thread (cycles).
    pub worst_case_latency: u64,
}

impl ThreadRunStats {
    /// Memory cycles per instruction.
    #[must_use]
    pub fn mcpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_stall_cycles as f64 / self.instructions as f64
        }
    }

    /// L2 misses per kilo-instruction.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram_reads as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Average stall time per DRAM read.
    #[must_use]
    pub fn ast_per_req(&self) -> f64 {
        if self.dram_reads == 0 {
            0.0
        } else {
            self.mem_stall_cycles as f64 / self.dram_reads as f64
        }
    }

    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunResult {
    /// Per-thread snapshots, in core order.
    pub threads: Vec<ThreadRunStats>,
    /// Total cycles simulated (until the last thread hit its target).
    pub cycles: u64,
    /// Row-buffer hit rate over all serviced requests, all channels.
    pub row_hit_rate: f64,
    /// Worst-case read latency over all threads.
    pub worst_case_latency: u64,
    /// True if the run hit `max_cycles` before every thread finished.
    pub timed_out: bool,
    /// Distribution of read latencies across all channels.
    pub read_latency: parbs_metrics::LatencyHistogram,
}

/// Cursor of an in-progress run: which threads have been snapshotted, the
/// cycle about to execute, and whether the cycle cap fired. Produced by
/// [`System::begin_run`], advanced by [`System::step_cycle`], and redeemed
/// by [`System::finish_run`] — the seam that lets lane backends interleave
/// several systems cycle-by-cycle and lets checkpointing freeze a run
/// mid-flight.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProgress {
    /// Per-thread instruction target the run was started with.
    target: u64,
    /// Per-thread snapshot, filled the cycle the thread hits the target.
    snapshots: Vec<Option<ThreadRunStats>>,
    /// Threads still short of the target.
    remaining: usize,
    /// The next cycle to execute.
    now: u64,
    /// Whether `max_cycles` fired before every thread finished.
    timed_out: bool,
}

impl RunProgress {
    /// Cycles executed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.now
    }

    /// Threads still short of their instruction target.
    #[must_use]
    pub fn threads_remaining(&self) -> usize {
        self.remaining
    }

    /// Whether the cycle cap fired before every thread finished.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    pub(crate) fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.target);
        w.put(&self.snapshots);
        w.usize(self.remaining);
        w.u64(self.now);
        w.bool(self.timed_out);
    }

    pub(crate) fn load_state(
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<Self, parbs_snap::SnapError> {
        let target = r.u64()?;
        let snapshots: Vec<Option<ThreadRunStats>> = r.get()?;
        let remaining = r.usize()?;
        let now = r.u64()?;
        let timed_out = r.bool()?;
        let open = snapshots.iter().filter(|s| s.is_none()).count();
        if remaining != open {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "run progress remaining-thread count",
                expected: open as u64,
                found: remaining as u64,
            });
        }
        Ok(RunProgress { target, snapshots, remaining, now, timed_out })
    }
}

/// A CMP system: one core per thread, one controller per DRAM channel.
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    controllers: Vec<Controller>,
    mapper: parbs_dram::AddressMapper,
    next_request: u64,
    /// In-flight read requests: request id → (core, miss).
    inflight: HashMap<u64, (usize, MissId)>,
    prev_stall: Vec<u64>,
    blp: Vec<BlpTracker>,
    thread_worst_case: Vec<u64>,
    completions: Vec<Completion>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("channels", &self.controllers.len())
            .finish()
    }
}

impl System {
    /// Builds a system with one instruction stream per core and fresh
    /// instances of `scheduler` on every channel controller.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.cores` or the DRAM configuration is
    /// invalid.
    #[must_use]
    pub fn new(
        cfg: SimConfig,
        streams: Vec<Box<dyn InstructionStream>>,
        scheduler: &SchedulerKind,
    ) -> Self {
        let factory = |cfg: &SimConfig| scheduler.build(cfg);
        Self::with_scheduler_factory(cfg, streams, &factory)
    }

    /// Like [`System::new`] but with an arbitrary scheduler factory — the
    /// extension seam for custom [`parbs_dram::MemoryScheduler`]
    /// implementations. The factory is called once per DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cfg.cores` or the DRAM configuration is
    /// invalid.
    #[must_use]
    pub fn with_scheduler_factory(
        cfg: SimConfig,
        streams: Vec<Box<dyn InstructionStream>>,
        factory: &dyn Fn(&SimConfig) -> Box<dyn parbs_dram::MemoryScheduler>,
    ) -> Self {
        assert_eq!(streams.len(), cfg.cores, "one stream per core");
        let cores: Vec<Core> = streams.into_iter().map(|s| Core::new(cfg.core, s)).collect();
        let controllers: Vec<Controller> = (0..cfg.dram.channels())
            .map(|_| {
                if cfg.check_protocol {
                    Controller::with_checker(cfg.dram.clone(), factory(&cfg))
                } else {
                    Controller::new(cfg.dram.clone(), factory(&cfg))
                }
            })
            .collect();
        let mapper = cfg.dram.mapper();
        let n = cfg.cores;
        System {
            cores,
            controllers,
            mapper,
            next_request: 0,
            inflight: HashMap::new(),
            prev_stall: vec![0; n],
            blp: vec![BlpTracker::new(); n],
            thread_worst_case: vec![0; n],
            completions: Vec::new(),
            cfg,
        }
    }

    /// One-line internal-state summaries of each channel's scheduler.
    #[must_use]
    pub fn scheduler_debug_summaries(&mut self) -> Vec<String> {
        self.controllers.iter_mut().map(|c| c.scheduler_mut().debug_summary()).collect()
    }

    /// The number of DRAM channels (= controllers) in the system.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.controllers.len()
    }

    /// Per channel, the packed priority key of every queued read evaluated
    /// at `now` — the scheduler-observable queue state. Introspection hook
    /// for checkpoint validation: a resume must reproduce these bit for
    /// bit, or the restored scheduler would make different decisions than
    /// the one that was saved.
    pub fn priority_keys(&mut self, now: u64) -> Vec<Vec<u128>> {
        self.controllers.iter_mut().map(|c| c.priority_keys(now)).collect()
    }

    /// Attaches an observability sink to `channel`'s controller, returning
    /// the sink it replaces (see [`Controller::set_event_sink`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn set_event_sink(
        &mut self,
        channel: usize,
        sink: Box<dyn parbs_obs::EventSink>,
    ) -> Option<Box<dyn parbs_obs::EventSink>> {
        self.controllers[channel].set_event_sink(sink)
    }

    /// Detaches and returns `channel`'s observability sink, if any.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn take_event_sink(&mut self, channel: usize) -> Option<Box<dyn parbs_obs::EventSink>> {
        self.controllers[channel].take_event_sink()
    }

    /// Runs until every thread has committed `target_instructions` (or
    /// `max_cycles` elapse) and returns the per-thread snapshots.
    ///
    /// Equivalent to [`System::begin_run`] + [`System::step_cycle`] until
    /// exhaustion + [`System::finish_run`] — the decomposition the lane
    /// backends and checkpointing build on.
    pub fn run(&mut self) -> RunResult {
        let mut progress = self.begin_run();
        while self.step_cycle(&mut progress) {}
        self.finish_run(progress)
    }

    /// Starts a run: the cursor a caller threads through
    /// [`System::step_cycle`] calls until it returns `false`, then redeems
    /// with [`System::finish_run`].
    #[must_use]
    pub fn begin_run(&self) -> RunProgress {
        let n = self.cores.len();
        RunProgress {
            target: self.cfg.target_instructions,
            snapshots: vec![None; n],
            remaining: n,
            now: 0,
            timed_out: false,
        }
    }

    /// Advances the system by exactly one processor cycle, snapshotting any
    /// thread that reached its instruction target this cycle. Returns `true`
    /// while the run has more cycles to execute; once it returns `false`
    /// (every thread snapshotted, or `max_cycles` reached) further calls are
    /// no-ops and the caller redeems `progress` with
    /// [`System::finish_run`].
    pub fn step_cycle(&mut self, progress: &mut RunProgress) -> bool {
        if progress.remaining == 0 || progress.timed_out {
            return false;
        }
        if progress.now >= self.cfg.max_cycles {
            progress.timed_out = true;
            return false;
        }
        self.tick(progress.now);
        for (t, slot) in progress.snapshots.iter_mut().enumerate() {
            if slot.is_none() && self.cores[t].stats().committed >= progress.target {
                *slot = Some(self.snapshot_at(t, progress.now + 1));
                progress.remaining -= 1;
            }
        }
        progress.now += 1;
        progress.remaining > 0
    }

    /// Completes a run started with [`System::begin_run`], filling in
    /// snapshots for threads that never reached the target and aggregating
    /// system-wide statistics.
    #[must_use]
    pub fn finish_run(&mut self, mut progress: RunProgress) -> RunResult {
        let n = self.cores.len();
        let now = progress.now;
        let timed_out = progress.timed_out;
        let threads: Vec<ThreadRunStats> = (0..n)
            .map(|t| {
                progress.snapshots[t].take().unwrap_or_else(|| self.snapshot_at(t, now.max(1)))
            })
            .collect();
        let (hits, total): (u64, u64) = self
            .controllers
            .iter()
            .map(|c| {
                let s = c.stats();
                (s.row_hits, s.row_hits + s.row_closed + s.row_conflicts)
            })
            .fold((0, 0), |(h, t), (h2, t2)| (h + h2, t + t2));
        let mut read_latency = parbs_metrics::LatencyHistogram::new();
        for c in &self.controllers {
            read_latency.merge(&c.stats().read_latency);
        }
        RunResult {
            worst_case_latency: self.thread_worst_case.iter().copied().max().unwrap_or(0),
            threads,
            cycles: now,
            row_hit_rate: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
            timed_out,
            read_latency,
        }
    }

    fn snapshot_at(&self, t: usize, cycles: u64) -> ThreadRunStats {
        let s = self.cores[t].stats();
        let (hits, total) = self
            .controllers
            .iter()
            .map(|c| {
                let cat = c.stats().thread_read_categories.get(t).copied().unwrap_or((0, 0, 0));
                (cat.0, cat.0 + cat.1 + cat.2)
            })
            .fold((0u64, 0u64), |(h, n), (h2, n2)| (h + h2, n + n2));
        ThreadRunStats {
            instructions: s.committed,
            cycles,
            mem_stall_cycles: s.mem_stall_cycles,
            dram_reads: s.dram_reads,
            dram_writes: s.dram_writes,
            blp: {
                // Combine per-channel BLP trackers (weighted by samples is
                // unavailable; with ≤4 channels a simple mean of non-zero
                // channels is adequate).
                let vals: Vec<f64> = self
                    .controllers
                    .iter()
                    .map(|c| c.stats().thread_blp_average(ThreadId(t)))
                    .filter(|v| *v > 0.0)
                    .collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            },
            read_hit_rate: if total == 0 { 0.0 } else { hits as f64 / total as f64 },
            worst_case_latency: self.thread_worst_case[t],
        }
    }

    /// One processor cycle: controllers, completion routing, cores, memory
    /// issue, and (on DRAM-cycle boundaries) stall feedback + BLP sampling.
    fn tick(&mut self, now: u64) {
        for ctrl in &mut self.controllers {
            ctrl.tick(now, &mut self.completions);
        }
        for c in self.completions.drain(..) {
            if c.kind == RequestKind::Read {
                if let Some((core, miss)) = self.inflight.remove(&c.request.0) {
                    self.cores[core].complete_read(miss);
                    let wc = &mut self.thread_worst_case[c.thread.0];
                    *wc = (*wc).max(c.latency());
                }
            }
        }
        for core in &mut self.cores {
            core.tick(now);
        }
        for t in 0..self.cores.len() {
            self.issue_memory_ops(t, now);
        }
        if now.is_multiple_of(DRAM_CYCLE) {
            let stalls: Vec<u64> = self
                .cores
                .iter()
                .enumerate()
                .map(|(t, c)| {
                    let total = c.stats().mem_stall_cycles;
                    let delta = total - self.prev_stall[t];
                    self.prev_stall[t] = total;
                    delta
                })
                .collect();
            for ctrl in &mut self.controllers {
                ctrl.report_stall_cycles(&stalls, now);
            }
            for t in 0..self.cores.len() {
                let busy: usize = self
                    .controllers
                    .iter()
                    .map(|c| c.channel().banks_servicing_thread(ThreadId(t), now))
                    .sum();
                self.blp[t].record(busy);
            }
        }
    }

    fn issue_memory_ops(&mut self, t: usize, now: u64) {
        // Reads: issue as many ready misses as MSHRs and buffers allow.
        while let Some((line, miss)) = self.cores[t].pending_read() {
            let addr = self.mapper.decode(line);
            let ctrl = &mut self.controllers[addr.channel];
            if !ctrl.can_accept_read() {
                break;
            }
            let mut req =
                Request::new(self.next_request, ThreadId(t), addr, RequestKind::Read, now);
            req.priority_level = self.cfg.priority_of(t).period().map(|p| p as u8);
            ctrl.try_enqueue(req).expect("capacity was checked");
            self.inflight.insert(self.next_request, (t, miss));
            self.next_request += 1;
            self.cores[t].read_issued(miss);
        }
        // Writes: drain the store queue into the write buffers.
        while let Some(line) = self.cores[t].pending_write() {
            let addr = self.mapper.decode(line);
            let ctrl = &mut self.controllers[addr.channel];
            if !ctrl.can_accept_write() {
                break;
            }
            let mut req =
                Request::new(self.next_request, ThreadId(t), addr, RequestKind::Write, now);
            req.priority_level = self.cfg.priority_of(t).period().map(|p| p as u8);
            ctrl.try_enqueue(req).expect("capacity was checked");
            self.next_request += 1;
            self.cores[t].write_issued();
        }
    }
}

impl System {
    /// Whether every controller can be snapshotted (no protocol checker or
    /// observability sink attached — both hold state outside the snapshot
    /// format).
    pub(crate) fn snapshot_supported(&self) -> bool {
        self.controllers.iter().all(Controller::snapshot_supported)
    }

    /// FNV-1a digest over everything that must match for a snapshot to be
    /// restorable into this system: the full configuration, the scheduler
    /// on each channel, and the caller-supplied workload label.
    pub(crate) fn state_fingerprint(&self, label: &str) -> u64 {
        let mut fp = parbs_snap::Fingerprint::new();
        fp.update_str(&format!("{:?}", self.cfg));
        for c in &self.controllers {
            fp.update_str(c.scheduler_name());
        }
        fp.update_str(label);
        fp.digest()
    }

    /// Serializes the full mutable state of the system (cores, controllers,
    /// routing tables, per-thread aggregates). Fails with
    /// [`parbs_snap::SnapError::Unsupported`] when a controller has a
    /// protocol checker or event sink attached.
    pub(crate) fn save_state(
        &self,
        w: &mut parbs_snap::SnapWriter,
    ) -> Result<(), parbs_snap::SnapError> {
        w.u64(self.next_request);
        let mut inflight: Vec<(u64, (usize, MissId))> =
            self.inflight.iter().map(|(&k, &v)| (k, v)).collect();
        inflight.sort_unstable_by_key(|&(k, _)| k);
        w.put(&inflight);
        w.put(&self.prev_stall);
        w.put(&self.blp);
        w.put(&self.thread_worst_case);
        w.put(&self.completions);
        for core in &self.cores {
            core.save_state(w);
        }
        for ctrl in &self.controllers {
            ctrl.save_state(w)?;
        }
        Ok(())
    }

    /// Restores state saved by [`System::save_state`] into a freshly built
    /// system of the same shape (same config, streams, and scheduler).
    pub(crate) fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        self.next_request = r.u64()?;
        let inflight: Vec<(u64, (usize, MissId))> = r.get()?;
        self.inflight = inflight.into_iter().collect();
        let prev_stall: Vec<u64> = r.get()?;
        if prev_stall.len() != self.cores.len() {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "system core count",
                expected: self.cores.len() as u64,
                found: prev_stall.len() as u64,
            });
        }
        self.prev_stall = prev_stall;
        self.blp = r.get()?;
        self.thread_worst_case = r.get()?;
        self.completions = r.get()?;
        for core in &mut self.cores {
            core.restore_state(r)?;
        }
        for ctrl in &mut self.controllers {
            ctrl.restore_state(r)?;
        }
        Ok(())
    }
}

impl parbs_snap::Snap for ThreadRunStats {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.instructions);
        w.u64(self.cycles);
        w.u64(self.mem_stall_cycles);
        w.u64(self.dram_reads);
        w.u64(self.dram_writes);
        w.f64(self.blp);
        w.f64(self.read_hit_rate);
        w.u64(self.worst_case_latency);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(ThreadRunStats {
            instructions: r.u64()?,
            cycles: r.u64()?,
            mem_stall_cycles: r.u64()?,
            dram_reads: r.u64()?,
            dram_writes: r.u64()?,
            blp: r.f64()?,
            read_hit_rate: r.f64()?,
            worst_case_latency: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::{by_name, SyntheticStream};

    fn quick_cfg(cores: usize, target: u64) -> SimConfig {
        SimConfig { target_instructions: target, ..SimConfig::for_cores(cores) }
    }

    fn streams(names: &[&str], cfg: &SimConfig) -> Vec<Box<dyn InstructionStream>> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(SyntheticStream::new(
                    by_name(n).unwrap(),
                    cfg.geometry(),
                    cfg.seed,
                    i as u64,
                )) as Box<dyn InstructionStream>
            })
            .collect()
    }

    #[test]
    fn single_thread_run_completes() {
        let cfg = quick_cfg(1, 3_000);
        let s = streams(&["mcf"], &cfg);
        let mut sys = System::new(cfg, s, &SchedulerKind::FrFcfs);
        let r = sys.run();
        assert!(!r.timed_out);
        assert!(r.threads[0].instructions >= 3_000);
        assert!(r.threads[0].dram_reads > 100, "mcf is memory intensive");
        assert!(r.threads[0].blp > 2.0, "mcf has high BLP alone: {}", r.threads[0].blp);
    }

    #[test]
    fn four_thread_shared_run_completes() {
        let cfg = quick_cfg(4, 2_000);
        let s = streams(&["libquantum", "mcf", "GemsFDTD", "xalancbmk"], &cfg);
        let mut sys = System::new(cfg, s, &SchedulerKind::FrFcfs);
        let r = sys.run();
        assert!(!r.timed_out);
        assert_eq!(r.threads.len(), 4);
        for t in &r.threads {
            assert!(t.instructions >= 2_000);
            assert!(t.mem_stall_cycles > 0);
        }
        assert!(r.worst_case_latency > 0);
        assert!(r.row_hit_rate > 0.0 && r.row_hit_rate < 1.0);
    }

    #[test]
    fn shared_run_is_slower_than_alone() {
        let alone_cfg = quick_cfg(1, 3_000);
        let mut alone =
            System::new(alone_cfg.clone(), streams(&["mcf"], &alone_cfg), &SchedulerKind::FrFcfs);
        let ra = alone.run();
        let shared_cfg = quick_cfg(4, 3_000);
        let mut shared = System::new(
            shared_cfg.clone(),
            streams(&["mcf", "libquantum", "matlab", "lbm"], &shared_cfg),
            &SchedulerKind::FrFcfs,
        );
        let rs = shared.run();
        assert!(
            rs.threads[0].mcpi() > ra.threads[0].mcpi(),
            "interference must slow mcf down: shared {} vs alone {}",
            rs.threads[0].mcpi(),
            ra.threads[0].mcpi()
        );
    }

    #[test]
    fn all_five_schedulers_run_a_mix() {
        for kind in SchedulerKind::paper_five() {
            let cfg = quick_cfg(4, 1_000);
            let s = streams(&["libquantum", "mcf", "hmmer", "h264ref"], &cfg);
            let mut sys = System::new(cfg, s, &kind);
            let r = sys.run();
            assert!(!r.timed_out, "{} timed out", kind.name());
        }
    }

    #[test]
    fn high_row_locality_benchmark_sees_high_hit_rate_alone() {
        let cfg = quick_cfg(1, 4_000);
        let s = streams(&["libquantum"], &cfg);
        let mut sys = System::new(cfg, s, &SchedulerKind::FrFcfs);
        let r = sys.run();
        assert!(
            r.row_hit_rate > 0.85,
            "libquantum targets 98% row hits, measured {:.2}",
            r.row_hit_rate
        );
    }

    #[test]
    fn geometry_matches_multi_channel_decoding() {
        let cfg = quick_cfg(8, 500);
        let names = ["mcf", "lbm", "milc", "astar", "hmmer", "bzip2", "gcc", "sjeng"];
        let s = streams(&names, &cfg);
        let mut sys = System::new(cfg, s, &SchedulerKind::FrFcfs);
        let r = sys.run();
        assert!(!r.timed_out);
        assert_eq!(r.threads.len(), 8);
    }
}
