//! Checkpointing: freeze a run mid-flight and resume it byte-identically.
//!
//! A checkpoint is a self-describing binary blob:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PARBSCKP"
//! 8       4     format version (little-endian u32, currently 1)
//! 12      8     fingerprint (little-endian u64): FNV-1a over the full
//!               SimConfig debug rendering, every channel's scheduler
//!               name, and the workload label
//! 20      ...   RunProgress state, then System state (parbs-snap codec)
//! ```
//!
//! The fingerprint binds the blob to the exact system shape it was saved
//! from: restoring into a system with a different configuration, scheduler,
//! or workload is rejected with [`CheckpointError::FingerprintMismatch`]
//! instead of silently desynchronizing. Restores go *into* a freshly built
//! [`System`] (same config, streams, scheduler) — the snapshot carries only
//! mutable state, never code or configuration.

use parbs_snap::{SnapError, SnapReader, SnapWriter};

use crate::{RunProgress, System};

/// Magic bytes opening every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"PARBSCKP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be saved or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The blob's format version is not [`CHECKPOINT_VERSION`].
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The blob was saved from a different system shape (configuration,
    /// scheduler, or workload).
    FingerprintMismatch {
        /// The fingerprint of the restoring system.
        expected: u64,
        /// The fingerprint in the header.
        found: u64,
    },
    /// The system cannot be checkpointed in its current state (protocol
    /// checker or observability sink attached).
    Unsupported(&'static str),
    /// The blob's body failed to decode.
    Corrupt(SnapError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a PAR-BS checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (expected {CHECKPOINT_VERSION})")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint was saved from a different system \
                 (fingerprint {found:#018x}, this system is {expected:#018x})"
            ),
            CheckpointError::Unsupported(what) => write!(f, "cannot checkpoint: {what}"),
            CheckpointError::Corrupt(e) => write!(f, "checkpoint corrupt: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> Self {
        match e {
            SnapError::Unsupported(what) => CheckpointError::Unsupported(what),
            other => CheckpointError::Corrupt(other),
        }
    }
}

impl System {
    /// Serializes the run into a checkpoint blob: header (magic, version,
    /// fingerprint) followed by the full mutable state of `progress` and
    /// the system. `label` names the workload (the mix) and is folded into
    /// the fingerprint so a checkpoint can only resume the same run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when a controller has a protocol
    /// checker or observability sink attached — both hold state outside the
    /// snapshot format.
    pub fn save_checkpoint(
        &self,
        progress: &RunProgress,
        label: &str,
    ) -> Result<Vec<u8>, CheckpointError> {
        if !self.snapshot_supported() {
            return Err(CheckpointError::Unsupported(
                "a controller has a protocol checker or event sink attached",
            ));
        }
        let mut w = SnapWriter::new();
        w.raw(&CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION);
        w.u64(self.state_fingerprint(label));
        progress.save_state(&mut w);
        self.save_state(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Restores a checkpoint saved by [`System::save_checkpoint`] into this
    /// freshly built system (same configuration, streams, and scheduler)
    /// and returns the [`RunProgress`] to continue stepping from.
    ///
    /// # Errors
    ///
    /// Rejects blobs with a wrong magic, version, or fingerprint, and blobs
    /// whose body fails to decode or does not match this system's shape.
    pub fn resume(&mut self, bytes: &[u8], label: &str) -> Result<RunProgress, CheckpointError> {
        let mut r = SnapReader::new(bytes);
        let magic = r.raw(CHECKPOINT_MAGIC.len()).map_err(|_| CheckpointError::BadMagic)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let expected = self.state_fingerprint(label);
        let found = r.u64()?;
        if found != expected {
            return Err(CheckpointError::FingerprintMismatch { expected, found });
        }
        let progress = RunProgress::load_state(&mut r)?;
        self.restore_state(&mut r)?;
        r.expect_end()?;
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchedulerKind, SimConfig};
    use parbs_cpu::InstructionStream;
    use parbs_workloads::{by_name, SyntheticStream};

    fn quick_cfg(cores: usize) -> SimConfig {
        SimConfig { target_instructions: 1_200, ..SimConfig::for_cores(cores) }
    }

    fn streams(names: &[&str], cfg: &SimConfig) -> Vec<Box<dyn InstructionStream>> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(SyntheticStream::new(
                    by_name(n).unwrap(),
                    cfg.geometry(),
                    cfg.seed,
                    i as u64,
                )) as Box<dyn InstructionStream>
            })
            .collect()
    }

    fn build(kind: &SchedulerKind) -> System {
        let cfg = quick_cfg(4);
        let s = streams(&["mcf", "libquantum", "lbm", "hmmer"], &cfg);
        System::new(cfg, s, kind)
    }

    #[test]
    fn interrupted_run_resumes_byte_identically() {
        for kind in SchedulerKind::zoo_seven() {
            // Uninterrupted reference run.
            let mut reference = build(&kind);
            let expected = reference.run();

            // Run 5000 cycles, checkpoint, resume into a fresh system.
            let mut first = build(&kind);
            let mut progress = first.begin_run();
            for _ in 0..5_000 {
                if !first.step_cycle(&mut progress) {
                    break;
                }
            }
            let blob = first.save_checkpoint(&progress, "test-mix").unwrap();
            drop(first);

            let mut second = build(&kind);
            let mut progress = second.resume(&blob, "test-mix").unwrap();
            while second.step_cycle(&mut progress) {}
            let resumed = second.finish_run(progress);
            assert_eq!(resumed, expected, "{} diverged after resume", kind.name());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut sys = build(&SchedulerKind::FrFcfs);
        let progress = sys.begin_run();
        let mut blob = sys.save_checkpoint(&progress, "m").unwrap();
        blob[0] ^= 0xFF;
        assert_eq!(sys.resume(&blob, "m"), Err(CheckpointError::BadMagic));
        assert_eq!(sys.resume(b"short", "m"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut sys = build(&SchedulerKind::FrFcfs);
        let progress = sys.begin_run();
        let mut blob = sys.save_checkpoint(&progress, "m").unwrap();
        blob[8] = 99;
        assert_eq!(sys.resume(&blob, "m"), Err(CheckpointError::BadVersion { found: 99 }));
    }

    #[test]
    fn wrong_system_or_label_is_rejected() {
        let mut sys = build(&SchedulerKind::FrFcfs);
        let progress = sys.begin_run();
        let blob = sys.save_checkpoint(&progress, "m").unwrap();
        // Same blob, different workload label.
        assert!(matches!(
            sys.resume(&blob, "other-mix"),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        // Same label, different scheduler.
        let mut other = build(&SchedulerKind::Fcfs);
        assert!(matches!(
            other.resume(&blob, "m"),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn truncated_body_is_rejected_as_corrupt() {
        let mut sys = build(&SchedulerKind::FrFcfs);
        let progress = sys.begin_run();
        let blob = sys.save_checkpoint(&progress, "m").unwrap();
        let truncated = &blob[..blob.len() - 7];
        assert!(matches!(sys.resume(truncated, "m"), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn protocol_checked_systems_refuse_to_checkpoint() {
        let cfg = SimConfig { check_protocol: true, ..quick_cfg(4) };
        let s = streams(&["mcf", "libquantum", "lbm", "hmmer"], &cfg);
        let sys = System::new(cfg, s, &SchedulerKind::FrFcfs);
        let progress = sys.begin_run();
        assert!(matches!(
            sys.save_checkpoint(&progress, "m"),
            Err(CheckpointError::Unsupported(_))
        ));
    }
}
