//! Simulation configuration.

use parbs::ThreadPriority;
use parbs_cpu::CoreConfig;
use parbs_dram::DramConfig;
use parbs_workloads::StreamGeometry;

/// Everything needed to run one simulation: system shape, run length, and
/// per-thread QoS settings.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores (threads).
    pub cores: usize,
    /// DRAM system configuration (channels scale with cores per Table 2).
    pub dram: DramConfig,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Instructions each thread must commit before its measurement is
    /// snapshotted. The paper uses 150 M-instruction trace slices; the
    /// default here is scaled down for laptop-scale sweeps — all schedulers
    /// see identical streams, so relative comparisons are preserved.
    pub target_instructions: u64,
    /// Hard cycle cap (deadlock/pathology guard).
    pub max_cycles: u64,
    /// Seed for workload generation.
    pub seed: u64,
    /// NFQ/STFM share weights per thread (empty = all 1.0).
    pub thread_weights: Vec<f64>,
    /// PAR-BS priority levels per thread (empty = all level 1).
    pub thread_priorities: Vec<ThreadPriority>,
    /// Verify every DRAM command against the protocol checker (panics on a
    /// timing violation). Slower; intended for tests.
    pub check_protocol: bool,
}

impl SimConfig {
    /// Table 2 configuration for `cores` ∈ {4, 8, 16}: DDR2-800 channels
    /// scaled 1/2/4, 128-entry windows, 32 MSHRs.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn for_cores(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        SimConfig {
            cores,
            dram: DramConfig::for_cores(cores),
            core: CoreConfig::table2(),
            target_instructions: 30_000,
            max_cycles: 200_000_000,
            seed: 0x5EED,
            thread_weights: Vec::new(),
            thread_priorities: Vec::new(),
            check_protocol: false,
        }
    }

    /// The stream geometry matching this configuration.
    #[must_use]
    pub fn geometry(&self) -> StreamGeometry {
        StreamGeometry {
            channels: self.dram.channels(),
            banks_per_channel: self.dram.banks_per_channel(),
            cols_per_row: self.dram.cols_per_row(),
            region_rows: 1024,
        }
    }

    /// The priority level of `thread` (default level 1).
    #[must_use]
    pub fn priority_of(&self, thread: usize) -> ThreadPriority {
        self.thread_priorities.get(thread).copied().unwrap_or_default()
    }

    /// The NFQ/STFM weight of `thread` (default 1.0).
    #[must_use]
    pub fn weight_of(&self, thread: usize) -> f64 {
        self.thread_weights.get(thread).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_scale_with_cores() {
        assert_eq!(SimConfig::for_cores(4).dram.channels(), 1);
        assert_eq!(SimConfig::for_cores(8).dram.channels(), 2);
        assert_eq!(SimConfig::for_cores(16).dram.channels(), 4);
    }

    #[test]
    fn defaults_are_neutral() {
        let c = SimConfig::for_cores(4);
        assert_eq!(c.weight_of(3), 1.0);
        assert_eq!(c.priority_of(3), ThreadPriority::Level1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = SimConfig::for_cores(0);
    }
}
