//! The immutable measurement harness: shared runs vs. concurrently memoized
//! alone runs, combined into the paper's metrics.
//!
//! A [`Harness`] is `Send + Sync`: its configuration is fixed at
//! construction and per-job weight/priority changes travel as
//! [`EvalOverrides`] instead of mutating shared state, so any number of
//! worker threads can evaluate jobs against one harness. The alone-run
//! memo is keyed on a structured [`AloneKey`] and is **single-flight**: two
//! workers that need the same alone baseline never simulate it twice — the
//! second blocks until the first finishes and reuses its result.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use parbs_cpu::{CoreConfig, InstructionStream};
use parbs_dram::{Geometry, MappingPolicy, TimingParams};
use parbs_metrics::{evaluate, MetricsRow, ThreadComparison, ThreadMeasurement};
use parbs_workloads::{BenchmarkProfile, MixSpec, SyntheticStream};

use crate::{
    EvalJob, EvalOverrides, EvalPlan, RunResult, SchedulerKind, SimConfig, System, ThreadRunStats,
};

/// The evaluated result of one (mix, scheduler) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEvaluation {
    /// Scheduler display name.
    pub scheduler: String,
    /// Mix display name.
    pub mix: String,
    /// Benchmark name per thread.
    pub thread_names: Vec<String>,
    /// Unfairness / weighted speedup / hmean speedup / AST / slowdowns.
    pub metrics: MetricsRow,
    /// Shared-run snapshots per thread.
    pub shared: Vec<ThreadRunStats>,
    /// Worst-case read latency of the shared run.
    pub worst_case_latency: u64,
    /// Row-buffer hit rate of the shared run.
    pub row_hit_rate: f64,
}

/// Cache key of one alone-run baseline. The baseline depends on the
/// benchmark, the scheduler, and **every** DRAM and run-shape parameter
/// (geometry, mapping policy, timing, queue depths, run length, seed, ...)
/// — keying on a subset would silently reuse a baseline across different
/// memory systems. Thread weights and priorities are excluded
/// deliberately: alone runs always clear them (a single thread has nothing
/// to compete with).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AloneKey {
    bench: &'static str,
    kind: SchedulerKind,
    cores: usize,
    geometry: Geometry,
    mapping: MappingPolicy,
    request_buffer_cap: usize,
    write_buffer_cap: usize,
    /// Bit pattern of the write-drain watermark (`f64` itself is not
    /// `Hash`/`Eq`; the exact bits are what the simulator sees).
    write_drain_watermark_bits: u64,
    timing: TimingParams,
    core: CoreConfig,
    target_instructions: u64,
    max_cycles: u64,
    seed: u64,
    check_protocol: bool,
}

impl AloneKey {
    /// Builds the key for `bench` running alone under `kind` on the system
    /// described by `cfg`. Every DRAM and run-shape field of `cfg` is
    /// captured; `cfg.thread_weights` / `cfg.thread_priorities` are not.
    #[must_use]
    pub fn new(bench: &'static str, kind: &SchedulerKind, cfg: &SimConfig) -> Self {
        AloneKey {
            bench,
            kind: kind.clone(),
            cores: cfg.cores,
            geometry: cfg.dram.geometry,
            mapping: cfg.dram.mapping,
            request_buffer_cap: cfg.dram.request_buffer_cap,
            write_buffer_cap: cfg.dram.write_buffer_cap,
            write_drain_watermark_bits: cfg.dram.write_drain_watermark.to_bits(),
            timing: cfg.dram.timing,
            core: cfg.core,
            target_instructions: cfg.target_instructions,
            max_cycles: cfg.max_cycles,
            seed: cfg.seed,
            check_protocol: cfg.check_protocol,
        }
    }
}

/// Counters of the alone-run memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups satisfied without simulating (including waits on an
    /// in-flight simulation of the same key).
    pub hits: u64,
    /// Lookups that simulated a new baseline.
    pub misses: u64,
    /// Distinct baselines currently cached.
    pub entries: usize,
}

/// Concurrent single-flight memo of alone baselines. The map holds one
/// cell per key; the brief lock covers only the map lookup, never a
/// simulation. `OnceLock::get_or_init` provides the single-flight: among
/// racing workers exactly one runs the simulation while the rest block on
/// the cell and then read its value.
#[derive(Default)]
struct AloneCache {
    map: Mutex<HashMap<AloneKey, Arc<OnceLock<ThreadRunStats>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AloneCache {
    fn get_or_run(&self, key: AloneKey, run: impl FnOnce() -> ThreadRunStats) -> ThreadRunStats {
        let cell = {
            let mut map = self.map.lock().expect("alone-cache lock poisoned");
            match map.entry(key) {
                Entry::Occupied(e) => Arc::clone(e.get()),
                Entry::Vacant(e) => Arc::clone(e.insert(Arc::new(OnceLock::new()))),
            }
        };
        let mut simulated = false;
        let stats = *cell.get_or_init(|| {
            simulated = true;
            run()
        });
        if simulated {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        stats
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("alone-cache lock poisoned").len(),
        }
    }
}

/// The immutable experiment harness: a base configuration, a stream
/// factory, and the concurrent alone-run memo. All methods take `&self`;
/// share one harness across worker threads (or pass it to
/// [`Harness::run_plan`]) to evaluate an [`crate::EvalPlan`] in parallel.
pub struct Harness {
    cfg: SimConfig,
    alone: AloneCache,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("cores", &self.cfg.cores)
            .field("cached_alone_runs", &self.alone.stats().entries)
            .finish()
    }
}

impl Harness {
    /// Creates a harness with the given base configuration. Per-job
    /// weight/priority overrides are passed as [`EvalOverrides`]; the base
    /// configuration is never mutated afterwards.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Harness { cfg, alone: AloneCache::default() }
    }

    /// The base configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current counters of the alone-run memo.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.alone.stats()
    }

    fn stream_for(
        cfg: &SimConfig,
        bench: &'static BenchmarkProfile,
        salt: u64,
    ) -> Box<dyn InstructionStream> {
        Box::new(SyntheticStream::new(bench, cfg.geometry(), cfg.seed, salt))
    }

    /// The job configuration: the base config with non-empty / `Some`
    /// override fields replaced (see [`EvalOverrides`]).
    fn job_config(&self, overrides: &EvalOverrides) -> SimConfig {
        let mut cfg = self.cfg.clone();
        if !overrides.weights.is_empty() {
            cfg.thread_weights = overrides.weights.clone();
        }
        if !overrides.priorities.is_empty() {
            cfg.thread_priorities = overrides.priorities.clone();
        }
        if let Some(geometry) = overrides.geometry {
            cfg.dram.geometry = geometry;
        }
        if let Some(mapping) = overrides.mapping {
            cfg.dram.mapping = mapping;
        }
        cfg
    }

    /// Runs `bench` alone on the same memory system under `kind`,
    /// memoizing the result. Safe to call from any number of threads;
    /// concurrent requests for the same baseline simulate it exactly once.
    pub fn alone(&self, bench: &'static BenchmarkProfile, kind: &SchedulerKind) -> ThreadRunStats {
        self.alone_under(bench, kind, &self.cfg)
    }

    /// Memoized alone run on the memory system described by `base` (the
    /// seam that keeps geometry-overridden jobs comparing against alone
    /// baselines on the *same* overridden system).
    fn alone_under(
        &self,
        bench: &'static BenchmarkProfile,
        kind: &SchedulerKind,
        base: &SimConfig,
    ) -> ThreadRunStats {
        let mut cfg = base.clone();
        cfg.cores = 1;
        cfg.thread_weights = Vec::new();
        cfg.thread_priorities = Vec::new();
        let key = AloneKey::new(bench.name, kind, &cfg);
        self.alone.get_or_run(key, || {
            let stream = Self::stream_for(&cfg, bench, 0);
            let mut sys = System::new(cfg.clone(), vec![stream], kind);
            sys.run().threads[0]
        })
    }

    /// Runs `mix` shared under `kind` with the given per-job overrides
    /// and returns the full shared-run result.
    ///
    /// # Panics
    ///
    /// Panics if the mix's core count differs from the harness's — alone
    /// baselines and streams must target the same DRAM geometry, so use one
    /// harness per system size.
    pub fn run_shared(
        &self,
        mix: &MixSpec,
        kind: &SchedulerKind,
        overrides: &EvalOverrides,
    ) -> RunResult {
        self.run_shared_under(mix, kind, self.job_config(overrides))
    }

    fn run_shared_under(&self, mix: &MixSpec, kind: &SchedulerKind, cfg: SimConfig) -> RunResult {
        self.build_shared(mix, kind, cfg).run()
    }

    /// Builds (without running) the shared-run system for one job — the
    /// seam the lane backends use to assemble a batch of independent
    /// systems before stepping them in lockstep.
    pub(crate) fn build_shared(
        &self,
        mix: &MixSpec,
        kind: &SchedulerKind,
        cfg: SimConfig,
    ) -> System {
        assert_eq!(
            mix.cores(),
            self.cfg.cores,
            "mix '{}' needs a {}-core harness",
            mix.name,
            mix.cores()
        );
        let streams: Vec<Box<dyn InstructionStream>> = mix
            .benchmarks
            .iter()
            .enumerate()
            .map(|(i, b)| Self::stream_for(&cfg, b, i as u64))
            .collect();
        System::new(cfg, streams, kind)
    }

    /// Shared run + alone baselines + metrics for one (mix, scheduler)
    /// under the base configuration.
    pub fn evaluate_mix(&self, mix: &MixSpec, kind: &SchedulerKind) -> MixEvaluation {
        self.evaluate_mix_with(mix, kind, &EvalOverrides::none())
    }

    /// Like [`Harness::evaluate_mix`] but with [`EvalOverrides`]: per-thread
    /// weights (NFQ, STFM) and priorities (PAR-BS) — the Section 5 /
    /// Fig. 14 experiments — plus DRAM geometry/mapping replacements.
    /// QoS overrides apply to the shared run only (alone baselines are
    /// single-thread runs and always clear them); geometry and mapping
    /// overrides apply to both, so slowdowns compare against the memory
    /// system the mix actually ran on.
    pub fn evaluate_mix_with(
        &self,
        mix: &MixSpec,
        kind: &SchedulerKind,
        overrides: &EvalOverrides,
    ) -> MixEvaluation {
        let job_cfg = self.job_config(overrides);
        let shared = self.run_shared_under(mix, kind, job_cfg);
        self.evaluate_with_shared(mix, kind, overrides, shared)
    }

    /// Combines an already-executed shared run with the (memoized) alone
    /// baselines into the job's evaluation — the back half of
    /// [`Harness::evaluate_mix_with`], split out so lane backends can run
    /// the shared simulations in batches.
    pub(crate) fn evaluate_with_shared(
        &self,
        mix: &MixSpec,
        kind: &SchedulerKind,
        overrides: &EvalOverrides,
        shared: RunResult,
    ) -> MixEvaluation {
        let job_cfg = self.job_config(overrides);
        let comparisons: Vec<ThreadComparison> = mix
            .benchmarks
            .iter()
            .zip(&shared.threads)
            .map(|(bench, s)| ThreadComparison {
                shared: to_measurement(s),
                alone: to_measurement(&self.alone_under(bench, kind, &job_cfg)),
            })
            .collect();
        MixEvaluation {
            scheduler: kind.name().to_owned(),
            mix: mix.name.clone(),
            thread_names: mix.benchmarks.iter().map(|b| b.name.to_owned()).collect(),
            metrics: evaluate(&comparisons),
            shared: shared.threads.clone(),
            worst_case_latency: shared.worst_case_latency,
            row_hit_rate: shared.row_hit_rate,
        }
    }

    /// Evaluates one [`EvalJob`].
    pub fn evaluate(&self, job: &EvalJob) -> MixEvaluation {
        self.evaluate_mix_with(&job.mix, &job.kind, &job.overrides)
    }

    /// Builds (without running) the shared-run [`System`] for `mix` under
    /// `kind` on this harness's base configuration with `overrides`
    /// applied — the seam checkpointed single runs are driven through.
    ///
    /// # Panics
    ///
    /// Panics if the mix's core count differs from the harness's.
    #[must_use]
    pub fn shared_system(
        &self,
        mix: &MixSpec,
        kind: &SchedulerKind,
        overrides: &EvalOverrides,
    ) -> System {
        self.build_shared(mix, kind, self.job_config(overrides))
    }

    /// The lane-batching shape key of one job: the DRAM shape its shared
    /// run executes on after overrides. Jobs agreeing on the key run the
    /// same geometry and mapping, so they can share a lockstep lane group.
    fn shape_key(&self, job: &EvalJob) -> (Geometry, MappingPolicy) {
        let cfg = self.job_config(&job.overrides);
        (cfg.dram.geometry, cfg.dram.mapping)
    }

    /// Groups plan indices into lane batches: jobs are keyed by DRAM shape
    /// (in first-appearance order) and each shape's indices are chunked
    /// into consecutive groups of at most `width`, preserving plan order
    /// within a shape. Deterministic — the same plan and width always
    /// produce the same grouping.
    #[must_use]
    pub fn lane_groups(&self, plan: &EvalPlan, width: usize) -> Vec<Vec<usize>> {
        let width = width.max(1);
        let mut order: Vec<(Geometry, MappingPolicy)> = Vec::new();
        let mut by_key: HashMap<(Geometry, MappingPolicy), Vec<usize>> = HashMap::new();
        for (i, job) in plan.jobs().iter().enumerate() {
            let key = self.shape_key(job);
            by_key
                .entry(key)
                .or_insert_with(|| {
                    order.push(key);
                    Vec::new()
                })
                .push(i);
        }
        let mut groups = Vec::new();
        for key in order {
            for chunk in by_key[&key].chunks(width) {
                groups.push(chunk.to_vec());
            }
        }
        groups
    }

    /// How each job of `plan` would execute under a `width`-lane backend:
    /// the lane group it joins, or `None` for the scalar fallback (a group
    /// of one — lockstepping a single system buys nothing).
    #[must_use]
    pub fn lane_assignments(&self, plan: &EvalPlan, width: usize) -> Vec<Option<usize>> {
        let mut assignment = vec![None; plan.len()];
        for (g, group) in self.lane_groups(plan, width).iter().enumerate() {
            if group.len() > 1 {
                for &i in group {
                    assignment[i] = Some(g);
                }
            }
        }
        assignment
    }

    /// Like [`Harness::run_plan`] but executing shared runs through
    /// `backend`: compatible jobs (same DRAM shape after overrides) are
    /// batched into lockstep lane groups of up to the backend's width;
    /// singleton groups fall back to the scalar path. Results come back in
    /// plan order and are byte-identical to [`Harness::run_plan`] at every
    /// `jobs` level — the backends only change *how* the cycle loop is
    /// driven, never what each system computes.
    pub fn run_plan_with(
        &self,
        plan: &EvalPlan,
        jobs: usize,
        backend: &dyn crate::ExecBackend,
    ) -> Vec<MixEvaluation> {
        if backend.lane_width() <= 1 {
            return self.run_plan(plan, jobs);
        }
        let groups = self.lane_groups(plan, backend.lane_width());
        let evaluated: Vec<Vec<MixEvaluation>> =
            crate::executor::scope_map(&groups, jobs, |group| {
                if group.len() == 1 {
                    return vec![self.evaluate(&plan.jobs()[group[0]])];
                }
                let systems: Vec<System> = group
                    .iter()
                    .map(|&i| {
                        let job = &plan.jobs()[i];
                        self.build_shared(&job.mix, &job.kind, self.job_config(&job.overrides))
                    })
                    .collect();
                backend
                    .run_batch(systems)
                    .into_iter()
                    .zip(group)
                    .map(|(shared, &i)| {
                        let job = &plan.jobs()[i];
                        self.evaluate_with_shared(&job.mix, &job.kind, &job.overrides, shared)
                    })
                    .collect()
            });
        let mut slots: Vec<Option<MixEvaluation>> = (0..plan.len()).map(|_| None).collect();
        for (group, evals) in groups.iter().zip(evaluated) {
            for (&i, e) in group.iter().zip(evals) {
                assert!(slots[i].replace(e).is_none(), "job {i} evaluated twice");
            }
        }
        slots.into_iter().map(|e| e.expect("every planned job evaluated")).collect()
    }
}

fn to_measurement(s: &ThreadRunStats) -> ThreadMeasurement {
    ThreadMeasurement {
        instructions: s.instructions,
        cycles: s.cycles,
        mem_stall_cycles: s.mem_stall_cycles,
        dram_reads: s.dram_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::{by_name, case_study_1, case_study_3};

    fn quick_cfg() -> SimConfig {
        SimConfig { target_instructions: 1_500, ..SimConfig::for_cores(4) }
    }

    #[test]
    fn harness_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Harness>();
        assert_send_sync::<AloneKey>();
        assert_send_sync::<EvalJob>();
    }

    #[test]
    fn alone_runs_are_cached() {
        let h = Harness::new(quick_cfg());
        let b = by_name("mcf").unwrap();
        let a1 = h.alone(b, &SchedulerKind::FrFcfs);
        let a2 = h.alone(b, &SchedulerKind::FrFcfs);
        assert_eq!(a1, a2);
        let stats = h.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn alone_cache_distinguishes_dram_shapes() {
        // Regression (from the Session era): the cache key once covered
        // only the channel count and run length, so systems differing in
        // any other DRAM parameter (here: bank count) would alias to one
        // entry and reuse a baseline from the wrong memory system.
        let b = by_name("mcf").unwrap();
        let eight = Harness::new(quick_cfg());
        let mut four_cfg = quick_cfg();
        four_cfg.dram.geometry.banks_per_rank = 4;
        let four = Harness::new(four_cfg.clone());
        let eight_banks = eight.alone(b, &SchedulerKind::FrFcfs);
        let four_banks = four.alone(b, &SchedulerKind::FrFcfs);
        assert_ne!(eight_banks, four_banks, "halving the banks must change the baseline");
        let k8 = AloneKey::new(b.name, &SchedulerKind::FrFcfs, &quick_cfg());
        let k4 = AloneKey::new(b.name, &SchedulerKind::FrFcfs, &four_cfg);
        assert_ne!(k8, k4, "different bank counts must key separately");
    }

    #[test]
    fn alone_key_distinguishes_nested_timing_fields() {
        // Two configs differing ONLY in a nested DRAM timing field must get
        // distinct keys — the regression the Debug-string key was prone to
        // if a field ever fell out of the rendering.
        let b = by_name("mcf").unwrap();
        let base = quick_cfg();
        let mut tweaked = base.clone();
        tweaked.dram.timing.t_rcd += 1;
        let k1 = AloneKey::new(b.name, &SchedulerKind::FrFcfs, &base);
        let k2 = AloneKey::new(b.name, &SchedulerKind::FrFcfs, &tweaked);
        assert_ne!(k1, k2, "nested timing fields must be part of the key");
        let mut set = std::collections::HashSet::new();
        set.insert(k1);
        set.insert(k2);
        assert_eq!(set.len(), 2, "keys must also hash distinctly");
    }

    #[test]
    fn alone_key_ignores_thread_qos_settings() {
        // Alone runs clear weights/priorities, so two configs differing
        // only in them share one baseline.
        let b = by_name("mcf").unwrap();
        let base = quick_cfg();
        let mut weighted = base.clone();
        weighted.thread_weights = vec![8.0, 1.0, 1.0, 1.0];
        assert_eq!(
            AloneKey::new(b.name, &SchedulerKind::Nfq, &base),
            AloneKey::new(b.name, &SchedulerKind::Nfq, &weighted),
        );
    }

    #[test]
    fn evaluate_mix_produces_full_metrics() {
        let h = Harness::new(quick_cfg());
        let e = h.evaluate_mix(&case_study_1(), &SchedulerKind::FrFcfs);
        assert_eq!(e.metrics.slowdowns.len(), 4);
        assert!(e.metrics.unfairness >= 1.0);
        assert!(e.metrics.weighted_speedup > 0.0 && e.metrics.weighted_speedup <= 4.0 + 1e-9);
        for sl in &e.metrics.slowdowns {
            assert!(*sl > 0.5, "slowdown {sl} out of plausible range");
        }
    }

    #[test]
    fn overrides_do_not_touch_the_base_config() {
        let h = Harness::new(quick_cfg());
        let mix = case_study_1();
        let _ = h.evaluate_mix_with(
            &mix,
            &SchedulerKind::Nfq,
            &EvalOverrides {
                weights: vec![8.0, 1.0, 1.0, 1.0],
                priorities: vec![parbs::ThreadPriority::Opportunistic; 4],
                geometry: Some(Geometry { ranks_per_channel: 2, ..Geometry::table2() }),
                mapping: Some(MappingPolicy::LineInterleaved { xor_permute: false }),
            },
        );
        assert!(h.config().thread_weights.is_empty(), "base config must stay untouched");
        assert!(h.config().thread_priorities.is_empty());
        assert_eq!(h.config().dram.ranks_per_channel(), 1, "geometry must not leak either");
        assert_eq!(h.config().dram.mapping, MappingPolicy::baseline());
    }

    #[test]
    fn geometry_overrides_rebase_the_alone_baselines() {
        // A job that overrides the DRAM shape must compare its shared run
        // against alone runs on the *same* shape — and those baselines must
        // key separately from the base system's.
        let h = Harness::new(quick_cfg());
        let mix = case_study_1();
        let base = h.evaluate_mix(&mix, &SchedulerKind::FrFcfs);
        let entries_after_base = h.cache_stats().entries;
        let shaped = EvalOverrides::shaped(
            Some(Geometry { ranks_per_channel: 2, ..Geometry::table2() }),
            None,
        );
        let two_rank = h.evaluate_mix_with(&mix, &SchedulerKind::FrFcfs, &shaped);
        assert!(
            h.cache_stats().entries > entries_after_base,
            "the 2-rank system must get its own alone baselines"
        );
        assert_ne!(base.shared, two_rank.shared, "adding a rank must change the shared run");
        // Re-running the same overridden job hits the memo.
        let misses = h.cache_stats().misses;
        let _ = h.evaluate_mix_with(&mix, &SchedulerKind::FrFcfs, &shaped);
        assert_eq!(h.cache_stats().misses, misses, "second overridden run reuses its baselines");
    }

    #[test]
    fn identical_threads_have_similar_slowdowns() {
        let h = Harness::new(quick_cfg());
        let e = h.evaluate_mix(&case_study_3(), &SchedulerKind::FrFcfs);
        // 4 copies of lbm: unfairness should be near 1 (Fig. 7).
        assert!(
            e.metrics.unfairness < 1.5,
            "uniform mix should be roughly fair, got {}",
            e.metrics.unfairness
        );
    }
}
