//! The measurement runner: shared runs vs. cached alone runs, combined into
//! the paper's metrics.

use std::collections::HashMap;

use parbs_cpu::InstructionStream;
use parbs_metrics::{evaluate, MetricsRow, ThreadComparison, ThreadMeasurement};
use parbs_workloads::{BenchmarkProfile, MixSpec, SyntheticStream};

use crate::{RunResult, SchedulerKind, SimConfig, System, ThreadRunStats};

/// The evaluated result of one (mix, scheduler) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEvaluation {
    /// Scheduler display name.
    pub scheduler: String,
    /// Mix display name.
    pub mix: String,
    /// Benchmark name per thread.
    pub thread_names: Vec<String>,
    /// Unfairness / weighted speedup / hmean speedup / AST / slowdowns.
    pub metrics: MetricsRow,
    /// Shared-run snapshots per thread.
    pub shared: Vec<ThreadRunStats>,
    /// Worst-case read latency of the shared run.
    pub worst_case_latency: u64,
    /// Row-buffer hit rate of the shared run.
    pub row_hit_rate: f64,
}

/// Runs experiments with alone-run caching. The alone baseline of a
/// benchmark depends on the scheduler, the DRAM shape, and the run length,
/// so the cache is keyed on all three.
pub struct Session {
    cfg: SimConfig,
    alone_cache: HashMap<String, ThreadRunStats>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("cached_alone_runs", &self.alone_cache.len()).finish()
    }
}

impl Session {
    /// Creates a session with the given base configuration. Per-experiment
    /// weight/priority overrides are passed to
    /// [`Session::evaluate_mix_with`].
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Session { cfg, alone_cache: HashMap::new() }
    }

    /// The base configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn stream_for(
        &self,
        bench: &'static BenchmarkProfile,
        salt: u64,
    ) -> Box<dyn InstructionStream> {
        Box::new(SyntheticStream::new(bench, self.cfg.geometry(), self.cfg.seed, salt))
    }

    /// Runs `bench` alone on the same memory system under `kind`,
    /// memoizing the result.
    pub fn alone(
        &mut self,
        bench: &'static BenchmarkProfile,
        kind: &SchedulerKind,
    ) -> ThreadRunStats {
        // Build the alone-run configuration first and key the cache on its
        // entire Debug rendering: the baseline depends on every DRAM and run
        // parameter (banks, timing, queue depth, seed, ...), not just the
        // channel count — keying on a subset silently reuses a baseline
        // across different memory systems.
        let mut cfg = self.cfg.clone();
        cfg.cores = 1;
        cfg.thread_weights = Vec::new();
        cfg.thread_priorities = Vec::new();
        let key = format!("{}|{kind:?}|{cfg:?}", bench.name);
        if let Some(hit) = self.alone_cache.get(&key) {
            return *hit;
        }
        let stream = self.stream_for(bench, 0);
        let mut sys = System::new(cfg, vec![stream], kind);
        let result = sys.run();
        let stats = result.threads[0];
        self.alone_cache.insert(key, stats);
        stats
    }

    /// Runs `mix` shared under `kind` (with the session's base weights and
    /// priorities) and returns the full shared-run result.
    ///
    /// # Panics
    ///
    /// Panics if the mix's core count differs from the session's — alone
    /// baselines and streams must target the same DRAM geometry, so use one
    /// session per system size.
    pub fn run_shared(&mut self, mix: &MixSpec, kind: &SchedulerKind) -> RunResult {
        assert_eq!(
            mix.cores(),
            self.cfg.cores,
            "mix '{}' needs a {}-core session",
            mix.name,
            mix.cores()
        );
        let streams: Vec<Box<dyn InstructionStream>> =
            mix.benchmarks.iter().enumerate().map(|(i, b)| self.stream_for(b, i as u64)).collect();
        System::new(self.cfg.clone(), streams, kind).run()
    }

    /// Shared run + alone baselines + metrics for one (mix, scheduler).
    pub fn evaluate_mix(&mut self, mix: &MixSpec, kind: &SchedulerKind) -> MixEvaluation {
        let shared = self.run_shared(mix, kind);
        let comparisons: Vec<ThreadComparison> = mix
            .benchmarks
            .iter()
            .zip(&shared.threads)
            .map(|(bench, s)| ThreadComparison {
                shared: to_measurement(s),
                alone: to_measurement(&self.alone(bench, kind)),
            })
            .collect();
        MixEvaluation {
            scheduler: kind.name().to_owned(),
            mix: mix.name.clone(),
            thread_names: mix.benchmarks.iter().map(|b| b.name.to_owned()).collect(),
            metrics: evaluate(&comparisons),
            shared: shared.threads.clone(),
            worst_case_latency: shared.worst_case_latency,
            row_hit_rate: shared.row_hit_rate,
        }
    }

    /// Like [`Session::evaluate_mix`] but with per-thread weights (NFQ,
    /// STFM) and priorities (PAR-BS) — the Section 5 / Fig. 14 experiments.
    pub fn evaluate_mix_with(
        &mut self,
        mix: &MixSpec,
        kind: &SchedulerKind,
        weights: Vec<f64>,
        priorities: Vec<parbs::ThreadPriority>,
    ) -> MixEvaluation {
        let saved_w = std::mem::replace(&mut self.cfg.thread_weights, weights);
        let saved_p = std::mem::replace(&mut self.cfg.thread_priorities, priorities);
        let result = self.evaluate_mix(mix, kind);
        self.cfg.thread_weights = saved_w;
        self.cfg.thread_priorities = saved_p;
        result
    }
}

fn to_measurement(s: &ThreadRunStats) -> ThreadMeasurement {
    ThreadMeasurement {
        instructions: s.instructions,
        cycles: s.cycles,
        mem_stall_cycles: s.mem_stall_cycles,
        dram_reads: s.dram_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::{case_study_1, case_study_3};

    fn quick_session() -> Session {
        Session::new(SimConfig { target_instructions: 1_500, ..SimConfig::for_cores(4) })
    }

    #[test]
    fn alone_runs_are_cached() {
        let mut s = quick_session();
        let b = parbs_workloads::by_name("mcf").unwrap();
        let a1 = s.alone(b, &SchedulerKind::FrFcfs);
        let a2 = s.alone(b, &SchedulerKind::FrFcfs);
        assert_eq!(a1, a2);
        assert_eq!(s.alone_cache.len(), 1);
    }

    #[test]
    fn alone_cache_distinguishes_dram_shapes() {
        // Regression: the cache key once covered only the channel count and
        // run length, so sessions differing in any other DRAM parameter
        // (here: bank count) would alias to one entry and reuse a baseline
        // from the wrong memory system.
        let mut s = quick_session();
        let b = parbs_workloads::by_name("mcf").unwrap();
        let eight_banks = s.alone(b, &SchedulerKind::FrFcfs);
        s.cfg.dram.banks_per_channel = 4;
        let four_banks = s.alone(b, &SchedulerKind::FrFcfs);
        assert_eq!(s.alone_cache.len(), 2, "different bank counts must cache separately");
        assert_ne!(eight_banks, four_banks, "halving the banks must change the baseline");
    }

    #[test]
    fn evaluate_mix_produces_full_metrics() {
        let mut s = quick_session();
        let e = s.evaluate_mix(&case_study_1(), &SchedulerKind::FrFcfs);
        assert_eq!(e.metrics.slowdowns.len(), 4);
        assert!(e.metrics.unfairness >= 1.0);
        assert!(e.metrics.weighted_speedup > 0.0 && e.metrics.weighted_speedup <= 4.0 + 1e-9);
        for sl in &e.metrics.slowdowns {
            assert!(*sl > 0.5, "slowdown {sl} out of plausible range");
        }
    }

    #[test]
    fn evaluate_mix_with_restores_base_config() {
        let mut s = quick_session();
        let mix = case_study_1();
        let _ = s.evaluate_mix_with(
            &mix,
            &SchedulerKind::Nfq,
            vec![8.0, 1.0, 1.0, 1.0],
            vec![parbs::ThreadPriority::Opportunistic; 4],
        );
        assert!(s.config().thread_weights.is_empty(), "weights must be restored");
        assert!(s.config().thread_priorities.is_empty(), "priorities must be restored");
    }

    #[test]
    fn identical_threads_have_similar_slowdowns() {
        let mut s = quick_session();
        let e = s.evaluate_mix(&case_study_3(), &SchedulerKind::FrFcfs);
        // 4 copies of lbm: unfairness should be near 1 (Fig. 7).
        assert!(
            e.metrics.unfairness < 1.5,
            "uniform mix should be roughly fair, got {}",
            e.metrics.unfairness
        );
    }
}
