//! The legacy serial measurement runner, kept as a thin shim over
//! [`Harness`] so existing callers keep compiling.
//!
//! [`Session`] predates the plan-based API: it bundled a mutable
//! configuration with a Debug-string-keyed alone cache, and experiments
//! mutated the config in place (save/restore) to apply per-run weights.
//! The replacement splits those roles: an immutable, `Send + Sync`
//! [`Harness`] owns the config and the concurrent alone memo, immutable
//! [`crate::EvalPlan`]s describe what to run, and per-job
//! [`EvalOverrides`] replace the mutate-then-restore dance. New code
//! should use [`Harness`] directly (see [`Harness::run_plan`]).

use parbs_workloads::{BenchmarkProfile, MixSpec};

use crate::{
    EvalOverrides, Harness, MixEvaluation, RunResult, SchedulerKind, SimConfig, ThreadRunStats,
};

/// Serial convenience wrapper around [`Harness`] (the pre-plan API).
///
/// Methods take `&mut self` for source compatibility with the old mutable
/// runner; all state changes happen inside the harness's thread-safe alone
/// memo. Prefer [`Harness`] in new code — it is `Send + Sync` and powers
/// the parallel executor.
pub struct Session {
    harness: Harness,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("cached_alone_runs", &self.harness.cache_stats().entries)
            .finish()
    }
}

impl Session {
    /// Creates a session with the given base configuration.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Session { harness: Harness::new(cfg) }
    }

    /// The base configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        self.harness.config()
    }

    /// The underlying harness — the migration path to the plan-based API
    /// (share it across threads, run [`crate::EvalPlan`]s on it).
    #[must_use]
    pub fn harness(&self) -> &Harness {
        &self.harness
    }

    /// Consumes the session, returning the harness with its warm alone
    /// cache.
    #[must_use]
    pub fn into_harness(self) -> Harness {
        self.harness
    }

    /// Runs `bench` alone on the same memory system under `kind`,
    /// memoizing the result.
    pub fn alone(
        &mut self,
        bench: &'static BenchmarkProfile,
        kind: &SchedulerKind,
    ) -> ThreadRunStats {
        self.harness.alone(bench, kind)
    }

    /// Runs `mix` shared under `kind` (with the session's base weights and
    /// priorities) and returns the full shared-run result.
    ///
    /// # Panics
    ///
    /// Panics if the mix's core count differs from the session's — alone
    /// baselines and streams must target the same DRAM geometry, so use one
    /// session per system size.
    pub fn run_shared(&mut self, mix: &MixSpec, kind: &SchedulerKind) -> RunResult {
        self.harness.run_shared(mix, kind, &EvalOverrides::none())
    }

    /// Shared run + alone baselines + metrics for one (mix, scheduler).
    pub fn evaluate_mix(&mut self, mix: &MixSpec, kind: &SchedulerKind) -> MixEvaluation {
        self.harness.evaluate_mix(mix, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::case_study_1;

    fn quick_session() -> Session {
        Session::new(SimConfig { target_instructions: 1_500, ..SimConfig::for_cores(4) })
    }

    #[test]
    fn session_delegates_to_a_shared_harness_cache() {
        let mut s = quick_session();
        let b = parbs_workloads::by_name("mcf").unwrap();
        let a1 = s.alone(b, &SchedulerKind::FrFcfs);
        let a2 = s.alone(b, &SchedulerKind::FrFcfs);
        assert_eq!(a1, a2);
        assert_eq!(s.harness().cache_stats().entries, 1);
    }

    #[test]
    fn session_and_harness_agree() {
        let mut s = quick_session();
        let via_session = s.evaluate_mix(&case_study_1(), &SchedulerKind::FrFcfs);
        let h = Harness::new(SimConfig { target_instructions: 1_500, ..SimConfig::for_cores(4) });
        let via_harness = h.evaluate_mix(&case_study_1(), &SchedulerKind::FrFcfs);
        assert_eq!(via_session, via_harness);
    }
}
