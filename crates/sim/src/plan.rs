//! Immutable run descriptions: what to evaluate, separated from how (and
//! how fast) it is executed.
//!
//! An [`EvalJob`] names one (mix, scheduler, overrides) evaluation; an
//! [`EvalPlan`] is an ordered list of jobs. Plans carry no simulator state,
//! so they can be built up-front, inspected, and fanned across worker
//! threads by [`crate::Harness::run_plan`] — results always come back in
//! plan order, independent of execution order.

use parbs::ThreadPriority;
use parbs_dram::{Geometry, MappingPolicy};
use parbs_workloads::MixSpec;

use crate::SchedulerKind;

/// Per-job replacements for the harness base configuration: the thread QoS
/// settings (NFQ/STFM share weights and PAR-BS priority levels — the
/// Section 5 / Fig. 14 experiments) and the DRAM shape (geometry and
/// address-mapping policy — the Section 6 sensitivity studies).
///
/// An **empty** vector / `None` means "inherit the harness base
/// configuration" for that field; a non-empty vector or `Some` replaces it
/// wholesale for this job only. The base configuration itself is never
/// mutated. Geometry and mapping overrides apply to the shared run *and*
/// its alone baselines — slowdowns always compare against the same memory
/// system the mix ran on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalOverrides {
    /// NFQ/STFM share weights per thread (empty = inherit base).
    pub weights: Vec<f64>,
    /// PAR-BS priority levels per thread (empty = inherit base).
    pub priorities: Vec<ThreadPriority>,
    /// DRAM geometry replacement (`None` = inherit base).
    pub geometry: Option<Geometry>,
    /// Address-mapping policy replacement (`None` = inherit base).
    pub mapping: Option<MappingPolicy>,
}

impl EvalOverrides {
    /// No overrides: the job runs with the harness base configuration.
    #[must_use]
    pub fn none() -> Self {
        EvalOverrides::default()
    }

    /// Overrides only the NFQ/STFM share weights.
    #[must_use]
    pub fn weighted(weights: Vec<f64>) -> Self {
        EvalOverrides { weights, ..EvalOverrides::default() }
    }

    /// Overrides only the PAR-BS priority levels.
    #[must_use]
    pub fn prioritized(priorities: Vec<ThreadPriority>) -> Self {
        EvalOverrides { priorities, ..EvalOverrides::default() }
    }

    /// Overrides only the DRAM shape: geometry and/or mapping policy.
    #[must_use]
    pub fn shaped(geometry: Option<Geometry>, mapping: Option<MappingPolicy>) -> Self {
        EvalOverrides { geometry, mapping, ..EvalOverrides::default() }
    }

    /// True if the job inherits the base configuration unchanged.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.weights.is_empty()
            && self.priorities.is_empty()
            && self.geometry.is_none()
            && self.mapping.is_none()
    }
}

/// One evaluation to perform: a mix, a scheduler, and the per-thread QoS
/// overrides. Jobs are plain data — cheap to clone, [`Send`], and
/// independent of any harness.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// The multiprogrammed workload to run shared.
    pub mix: MixSpec,
    /// The memory scheduler to run it under.
    pub kind: SchedulerKind,
    /// Per-thread weight/priority replacements for this job.
    pub overrides: EvalOverrides,
}

impl EvalJob {
    /// A job with no overrides.
    #[must_use]
    pub fn new(mix: MixSpec, kind: SchedulerKind) -> Self {
        EvalJob { mix, kind, overrides: EvalOverrides::none() }
    }

    /// Replaces this job's NFQ/STFM weights.
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.overrides.weights = weights;
        self
    }

    /// Replaces this job's PAR-BS priorities.
    #[must_use]
    pub fn with_priorities(mut self, priorities: Vec<ThreadPriority>) -> Self {
        self.overrides.priorities = priorities;
        self
    }

    /// Replaces this job's DRAM geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: Geometry) -> Self {
        self.overrides.geometry = Some(geometry);
        self
    }

    /// Replaces this job's address-mapping policy.
    #[must_use]
    pub fn with_mapping(mut self, mapping: MappingPolicy) -> Self {
        self.overrides.mapping = Some(mapping);
        self
    }

    /// Replaces this job's full override set.
    #[must_use]
    pub fn with_overrides(mut self, overrides: EvalOverrides) -> Self {
        self.overrides = overrides;
        self
    }
}

/// An ordered list of [`EvalJob`]s. The order is the contract: executors
/// must return one [`crate::MixEvaluation`] per job, collated in plan
/// order, so a plan run at any `--jobs` level produces identical output.
#[derive(Debug, Clone, Default)]
pub struct EvalPlan {
    jobs: Vec<EvalJob>,
}

impl EvalPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        EvalPlan::default()
    }

    /// Appends a job.
    pub fn push(&mut self, job: EvalJob) {
        self.jobs.push(job);
    }

    /// Appends a (mix, scheduler) job with no overrides.
    pub fn add(&mut self, mix: MixSpec, kind: SchedulerKind) {
        self.push(EvalJob::new(mix, kind));
    }

    /// The full cross product: every mix under every kind, kind-major (all
    /// mixes of the first kind, then all mixes of the second, ...) — the
    /// same order as the serial sweeps of Section 8.
    #[must_use]
    pub fn product(mixes: &[MixSpec], kinds: &[SchedulerKind]) -> Self {
        let mut plan = EvalPlan::new();
        for kind in kinds {
            for mix in mixes {
                plan.add(mix.clone(), kind.clone());
            }
        }
        plan
    }

    /// The jobs, in plan order.
    #[must_use]
    pub fn jobs(&self) -> &[EvalJob] {
        &self.jobs
    }

    /// Number of jobs in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the plan holds no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl FromIterator<EvalJob> for EvalPlan {
    fn from_iter<I: IntoIterator<Item = EvalJob>>(iter: I) -> Self {
        EvalPlan { jobs: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a EvalPlan {
    type Item = &'a EvalJob;
    type IntoIter = std::slice::Iter<'a, EvalJob>;

    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_workloads::case_study_1;

    #[test]
    fn product_is_kind_major() {
        let mixes = [case_study_1(), case_study_1()];
        let kinds = [SchedulerKind::FrFcfs, SchedulerKind::Fcfs];
        let plan = EvalPlan::product(&mixes, &kinds);
        assert_eq!(plan.len(), 4);
        let order: Vec<&str> = plan.jobs().iter().map(|j| j.kind.name()).collect();
        assert_eq!(order, ["FR-FCFS", "FR-FCFS", "FCFS", "FCFS"]);
    }

    #[test]
    fn override_builders_compose() {
        let job =
            EvalJob::new(case_study_1(), SchedulerKind::Nfq).with_weights(vec![8.0, 1.0, 1.0, 1.0]);
        assert!(!job.overrides.is_none());
        assert!(job.overrides.priorities.is_empty());
        assert_eq!(job.overrides, EvalOverrides::weighted(vec![8.0, 1.0, 1.0, 1.0]));
    }

    #[test]
    fn shape_overrides_mark_the_job_as_overridden() {
        let geo = Geometry { ranks_per_channel: 2, ..Geometry::table2() };
        let job = EvalJob::new(case_study_1(), SchedulerKind::FrFcfs)
            .with_geometry(geo)
            .with_mapping(MappingPolicy::LineInterleaved { xor_permute: false });
        assert!(!job.overrides.is_none());
        assert_eq!(job.overrides.geometry.unwrap().ranks_per_channel, 2);
        assert_eq!(
            job.overrides,
            EvalOverrides::shaped(job.overrides.geometry, job.overrides.mapping)
        );
    }

    #[test]
    fn plans_collect_from_iterators() {
        let plan: EvalPlan = SchedulerKind::paper_five()
            .into_iter()
            .map(|k| EvalJob::new(case_study_1(), k))
            .collect();
        assert_eq!(plan.len(), 5);
        assert!(!plan.is_empty());
    }
}
