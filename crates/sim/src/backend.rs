//! Execution backends: how a batch of independent systems is stepped.
//!
//! The cycle kernel is decomposed into [`System::begin_run`] /
//! [`System::step_cycle`] / [`System::finish_run`]; a backend decides how
//! many systems to thread through that loop at once. [`Scalar`] runs each
//! system to completion in turn (byte-identical to [`System::run`] by
//! construction). [`Lanes`]`<N>` steps up to `N` independent systems in
//! lockstep, one cycle each per iteration — a structure-of-arrays sweep
//! over sweep configurations — retiring each lane the cycle its run
//! completes and refilling it from the batch queue, so a short job never
//! holds the other lanes hostage.
//!
//! Because the lanes are *independent* systems (no state is shared between
//! them), the per-system cycle sequence is identical whichever backend
//! executes it: every backend produces byte-identical [`RunResult`]s, and
//! the tests pin that down.

use crate::{RunProgress, RunResult, System};

/// A strategy for executing a batch of independent simulation runs.
///
/// Implementations must be pure executors: given the same systems in the
/// same order they return the same results in the same order, regardless
/// of internal interleaving.
pub trait ExecBackend: Sync {
    /// Number of systems stepped concurrently (1 for scalar execution).
    fn lane_width(&self) -> usize;

    /// Runs every system to completion and returns the results in input
    /// order.
    fn run_batch(&self, systems: Vec<System>) -> Vec<RunResult>;
}

/// The scalar backend: each system runs to completion in turn, exactly as
/// [`System::run`] does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scalar;

impl ExecBackend for Scalar {
    fn lane_width(&self) -> usize {
        1
    }

    fn run_batch(&self, systems: Vec<System>) -> Vec<RunResult> {
        systems.into_iter().map(|mut sys| sys.run()).collect()
    }
}

/// The many-lane backend: up to `N` independent systems advance in
/// lockstep, one cycle per lane per iteration, with per-lane retirement
/// and refill from the batch queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lanes<const N: usize>;

/// One occupied lane: the batch index it will retire into, the system, and
/// its run cursor.
type Lane = (usize, System, RunProgress);

impl<const N: usize> ExecBackend for Lanes<N> {
    fn lane_width(&self) -> usize {
        N
    }

    fn run_batch(&self, systems: Vec<System>) -> Vec<RunResult> {
        assert!(N > 0, "a lane backend needs at least one lane");
        let total = systems.len();
        let mut results: Vec<Option<RunResult>> = (0..total).map(|_| None).collect();
        let mut queue = systems.into_iter().enumerate();
        let fill = |entry: Option<(usize, System)>| -> Option<Lane> {
            entry.map(|(i, sys)| {
                let progress = sys.begin_run();
                (i, sys, progress)
            })
        };
        let mut lanes: Vec<Option<Lane>> = (0..N).map(|_| fill(queue.next())).collect();
        let mut live = lanes.iter().filter(|l| l.is_some()).count();
        while live > 0 {
            for lane in &mut lanes {
                let Some((_, sys, progress)) = lane.as_mut() else { continue };
                if sys.step_cycle(progress) {
                    continue;
                }
                let (i, mut sys, progress) = lane.take().expect("lane was occupied");
                results[i] = Some(sys.finish_run(progress));
                *lane = fill(queue.next());
                if lane.is_none() {
                    live -= 1;
                }
            }
        }
        results.into_iter().map(|r| r.expect("every lane retired")).collect()
    }
}

/// Runtime-selected backend (the `--lanes` CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnyBackend {
    /// One system at a time ([`Scalar`]).
    #[default]
    Scalar,
    /// Two lockstep lanes ([`Lanes`]`<2>`).
    Lanes2,
    /// Four lockstep lanes ([`Lanes`]`<4>`).
    Lanes4,
}

impl AnyBackend {
    /// The backend for a lane count: 1 → scalar, 2/4 → lanes. Other widths
    /// are not provided (lane structs are monomorphized per width).
    #[must_use]
    pub fn from_lanes(n: usize) -> Option<Self> {
        match n {
            1 => Some(AnyBackend::Scalar),
            2 => Some(AnyBackend::Lanes2),
            4 => Some(AnyBackend::Lanes4),
            _ => None,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AnyBackend::Scalar => "scalar",
            AnyBackend::Lanes2 => "lanes2",
            AnyBackend::Lanes4 => "lanes4",
        }
    }
}

impl ExecBackend for AnyBackend {
    fn lane_width(&self) -> usize {
        match self {
            AnyBackend::Scalar => Scalar.lane_width(),
            AnyBackend::Lanes2 => Lanes::<2>.lane_width(),
            AnyBackend::Lanes4 => Lanes::<4>.lane_width(),
        }
    }

    fn run_batch(&self, systems: Vec<System>) -> Vec<RunResult> {
        match self {
            AnyBackend::Scalar => Scalar.run_batch(systems),
            AnyBackend::Lanes2 => Lanes::<2>.run_batch(systems),
            AnyBackend::Lanes4 => Lanes::<4>.run_batch(systems),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchedulerKind, SimConfig};
    use parbs_cpu::InstructionStream;
    use parbs_workloads::{by_name, SyntheticStream};

    fn quick_cfg(cores: usize) -> SimConfig {
        SimConfig { target_instructions: 900, ..SimConfig::for_cores(cores) }
    }

    fn build(names: &[&str], kind: &SchedulerKind) -> System {
        let cfg = quick_cfg(names.len());
        let streams: Vec<Box<dyn InstructionStream>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Box::new(SyntheticStream::new(
                    by_name(n).unwrap(),
                    cfg.geometry(),
                    cfg.seed,
                    i as u64,
                )) as Box<dyn InstructionStream>
            })
            .collect();
        System::new(cfg, streams, kind)
    }

    fn batch(kind: &SchedulerKind, copies: usize) -> Vec<System> {
        let mixes = [
            ["mcf", "libquantum", "lbm", "hmmer"],
            ["libquantum", "mcf", "GemsFDTD", "xalancbmk"],
            ["lbm", "lbm", "lbm", "lbm"],
        ];
        (0..copies).map(|i| build(&mixes[i % mixes.len()], kind)).collect()
    }

    #[test]
    fn lanes_match_scalar_bit_for_bit() {
        for kind in [SchedulerKind::FrFcfs, SchedulerKind::ParBs(Default::default())] {
            let expected = Scalar.run_batch(batch(&kind, 5));
            assert_eq!(Lanes::<2>.run_batch(batch(&kind, 5)), expected, "{}", kind.name());
            assert_eq!(Lanes::<4>.run_batch(batch(&kind, 5)), expected, "{}", kind.name());
        }
    }

    #[test]
    fn partial_and_empty_batches_work_at_any_width() {
        assert!(Lanes::<4>.run_batch(Vec::new()).is_empty());
        let kind = SchedulerKind::FrFcfs;
        for n in 1..=3 {
            let expected = Scalar.run_batch(batch(&kind, n));
            assert_eq!(Lanes::<4>.run_batch(batch(&kind, n)), expected, "batch of {n}");
        }
    }

    #[test]
    fn any_backend_parses_and_delegates() {
        assert_eq!(AnyBackend::from_lanes(1), Some(AnyBackend::Scalar));
        assert_eq!(AnyBackend::from_lanes(2), Some(AnyBackend::Lanes2));
        assert_eq!(AnyBackend::from_lanes(4), Some(AnyBackend::Lanes4));
        assert_eq!(AnyBackend::from_lanes(3), None);
        assert_eq!(AnyBackend::Lanes4.lane_width(), 4);
        let kind = SchedulerKind::FrFcfs;
        let expected = Scalar.run_batch(batch(&kind, 2));
        assert_eq!(AnyBackend::Lanes2.run_batch(batch(&kind, 2)), expected);
    }
}
