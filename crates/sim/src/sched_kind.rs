//! Scheduler selection: the five policies of the paper's evaluation plus
//! the post-PAR-BS zoo members (BLISS, ATLAS).

use parbs::{ParBsConfig, ParBsScheduler};
use parbs_baselines::{
    AtlasConfig, AtlasScheduler, BlissConfig, BlissScheduler, FcfsScheduler, FrFcfsScheduler,
    NfqScheduler, StfmScheduler,
};
use parbs_dram::{MemoryScheduler, ThreadId};

use crate::SimConfig;

/// One of the evaluated scheduling policies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come-first-serve.
    Fcfs,
    /// First-ready FCFS (the baseline controller).
    FrFcfs,
    /// Network fair queueing (FQ-VFTF).
    Nfq,
    /// Start-time fair queueing (Rafique et al., PACT 2007) — the NFQ
    /// improvement referenced in the paper's related work.
    Stfq,
    /// Stall-time fair memory scheduling.
    Stfm,
    /// Parallelism-aware batch scheduling with the given configuration.
    ParBs(ParBsConfig),
    /// Blacklisting scheduling (Subramanian et al.) with the given
    /// threshold and clearing interval.
    Bliss(BlissConfig),
    /// Adaptive per-thread least-attained-service scheduling (Kim et al.)
    /// with the given quantum.
    Atlas(AtlasConfig),
}

impl SchedulerKind {
    /// The five schedulers of Figures 5-10 in paper order, with PAR-BS in
    /// its default (Marking-Cap 5, full batching, Max-Total) configuration.
    #[must_use]
    pub fn paper_five() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::FrFcfs,
            SchedulerKind::Fcfs,
            SchedulerKind::Nfq,
            SchedulerKind::Stfm,
            SchedulerKind::ParBs(ParBsConfig::default()),
        ]
    }

    /// The full scheduler zoo: the paper's five followed by BLISS and ATLAS
    /// in their default configurations.
    #[must_use]
    pub fn zoo_seven() -> Vec<SchedulerKind> {
        let mut kinds = Self::paper_five();
        kinds.push(SchedulerKind::Bliss(BlissConfig::default()));
        kinds.push(SchedulerKind::Atlas(AtlasConfig::default()));
        kinds
    }

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::Nfq => "NFQ",
            SchedulerKind::Stfq => "STFQ",
            SchedulerKind::Stfm => "STFM",
            SchedulerKind::ParBs(_) => "PAR-BS",
            SchedulerKind::Bliss(_) => "BLISS",
            SchedulerKind::Atlas(_) => "ATLAS",
        }
    }

    /// Instantiates a scheduler for one memory controller, applying the
    /// per-thread weights (NFQ/STFM) or priorities (PAR-BS) in `cfg`.
    #[must_use]
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn MemoryScheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(FcfsScheduler::new()),
            SchedulerKind::FrFcfs => Box::new(FrFcfsScheduler::new()),
            SchedulerKind::Nfq => {
                let mut s = NfqScheduler::new();
                for t in 0..cfg.cores {
                    s.set_thread_weight(ThreadId(t), cfg.weight_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::Stfq => {
                let mut s = NfqScheduler::stfq();
                for t in 0..cfg.cores {
                    s.set_thread_weight(ThreadId(t), cfg.weight_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::Stfm => {
                let mut s = StfmScheduler::new();
                for t in 0..cfg.cores {
                    s.set_thread_weight(ThreadId(t), cfg.weight_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::ParBs(pc) => {
                let mut s = ParBsScheduler::new(*pc);
                for t in 0..cfg.cores {
                    s.set_thread_priority(ThreadId(t), cfg.priority_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::Bliss(bc) => Box::new(BlissScheduler::with_config(*bc)),
            SchedulerKind::Atlas(ac) => Box::new(AtlasScheduler::with_config(*ac)),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_five_in_figure_order() {
        let names: Vec<&str> =
            SchedulerKind::paper_five().iter().map(super::SchedulerKind::name).collect();
        assert_eq!(names, ["FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"]);
    }

    #[test]
    fn zoo_seven_extends_the_paper_order() {
        let names: Vec<&str> =
            SchedulerKind::zoo_seven().iter().map(super::SchedulerKind::name).collect();
        assert_eq!(names, ["FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS", "BLISS", "ATLAS"]);
    }

    #[test]
    fn build_produces_matching_names() {
        let cfg = SimConfig::for_cores(4);
        for kind in SchedulerKind::zoo_seven() {
            assert_eq!(kind.build(&cfg).name(), kind.name());
        }
        assert_eq!(SchedulerKind::Stfq.build(&cfg).name(), "STFQ");
    }
}
