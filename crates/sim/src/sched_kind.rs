//! Scheduler selection: the five policies of the paper's evaluation.

use parbs::{ParBsConfig, ParBsScheduler};
use parbs_baselines::{FcfsScheduler, FrFcfsScheduler, NfqScheduler, StfmScheduler};
use parbs_dram::{MemoryScheduler, ThreadId};

use crate::SimConfig;

/// One of the evaluated scheduling policies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come-first-serve.
    Fcfs,
    /// First-ready FCFS (the baseline controller).
    FrFcfs,
    /// Network fair queueing (FQ-VFTF).
    Nfq,
    /// Start-time fair queueing (Rafique et al., PACT 2007) — the NFQ
    /// improvement referenced in the paper's related work.
    Stfq,
    /// Stall-time fair memory scheduling.
    Stfm,
    /// Parallelism-aware batch scheduling with the given configuration.
    ParBs(ParBsConfig),
}

impl SchedulerKind {
    /// The five schedulers of Figures 5-10 in paper order, with PAR-BS in
    /// its default (Marking-Cap 5, full batching, Max-Total) configuration.
    #[must_use]
    pub fn paper_five() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::FrFcfs,
            SchedulerKind::Fcfs,
            SchedulerKind::Nfq,
            SchedulerKind::Stfm,
            SchedulerKind::ParBs(ParBsConfig::default()),
        ]
    }

    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::Nfq => "NFQ",
            SchedulerKind::Stfq => "STFQ",
            SchedulerKind::Stfm => "STFM",
            SchedulerKind::ParBs(_) => "PAR-BS",
        }
    }

    /// Instantiates a scheduler for one memory controller, applying the
    /// per-thread weights (NFQ/STFM) or priorities (PAR-BS) in `cfg`.
    #[must_use]
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn MemoryScheduler> {
        match self {
            SchedulerKind::Fcfs => Box::new(FcfsScheduler::new()),
            SchedulerKind::FrFcfs => Box::new(FrFcfsScheduler::new()),
            SchedulerKind::Nfq => {
                let mut s = NfqScheduler::new();
                for t in 0..cfg.cores {
                    s.set_thread_weight(ThreadId(t), cfg.weight_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::Stfq => {
                let mut s = NfqScheduler::stfq();
                for t in 0..cfg.cores {
                    s.set_thread_weight(ThreadId(t), cfg.weight_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::Stfm => {
                let mut s = StfmScheduler::new();
                for t in 0..cfg.cores {
                    s.set_thread_weight(ThreadId(t), cfg.weight_of(t));
                }
                Box::new(s)
            }
            SchedulerKind::ParBs(pc) => {
                let mut s = ParBsScheduler::new(*pc);
                for t in 0..cfg.cores {
                    s.set_thread_priority(ThreadId(t), cfg.priority_of(t));
                }
                Box::new(s)
            }
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_five_in_figure_order() {
        let names: Vec<&str> =
            SchedulerKind::paper_five().iter().map(super::SchedulerKind::name).collect();
        assert_eq!(names, ["FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"]);
    }

    #[test]
    fn build_produces_matching_names() {
        let cfg = SimConfig::for_cores(4);
        for kind in SchedulerKind::paper_five() {
            assert_eq!(kind.build(&cfg).name(), kind.name());
        }
        assert_eq!(SchedulerKind::Stfq.build(&cfg).name(), "STFQ");
    }
}
