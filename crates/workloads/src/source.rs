//! [`RequestSource`]: where DRAM requests come from.
//!
//! The simulator historically had exactly one answer — a closed-loop CPU
//! core per thread, which stalls when its window fills and therefore
//! self-limits its request rate. The datacenter-flow frontend needs the
//! opposite regime: **open-loop** arrivals that keep coming whether or not
//! the memory system keeps up, from a requester population far larger than
//! any core count. This trait abstracts over both so one driver loop can
//! host either.
//!
//! The contract is deliberately small:
//!
//! * [`RequestSource::poll`] advances the source to `now` and appends every
//!   request it wants issued by then. The driver owns backpressure — a
//!   request the memory system cannot accept yet is the driver's to buffer,
//!   never the source's to re-emit.
//! * Each emitted [`SourcedRequest`] carries an opaque `token`; the driver
//!   hands the token back through [`RequestSource::on_complete`] when the
//!   corresponding **read** finishes. Writes are posted, exactly as in the
//!   core model: no completion is reported for them.
//! * [`RequestSource::exhausted`] is the driver's stop condition: the
//!   source will never emit another request (and, for sources that track
//!   completions, everything it cares about has finished).

use parbs_cpu::{Core, CoreConfig, InstructionStream, MissId};
use parbs_dram::{RequestKind, ThreadId};

/// One memory request emitted by a [`RequestSource`], in line-address form
/// (the driver decodes it through the system's address mapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourcedRequest {
    /// The requester the memory system attributes this request to. Sparse
    /// ids are expected: a flow frontend hands out ids far beyond any core
    /// count, so consumers must not allocate dense per-thread state.
    pub thread: ThreadId,
    /// Cache-line address (pre-decode).
    pub line: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Opaque completion token, returned via [`RequestSource::on_complete`]
    /// when the read finishes. Meaningless for writes.
    pub token: u64,
}

/// A generator of DRAM requests: the frontend half of a simulation.
///
/// Implemented by the closed-loop CPU core adapter
/// ([`ClosedLoopSource`]) and the open-loop datacenter-flow generator
/// ([`crate::FlowSource`]).
pub trait RequestSource {
    /// Number of distinct requester (thread) ids this source may ever emit.
    /// Ids are `0..requesters()`, but at any instant only a small subset is
    /// typically active.
    fn requesters(&self) -> usize;

    /// Advances internal time to `now` and appends every request issued at
    /// or before `now` to `out`. Called once per driver cycle with strictly
    /// increasing `now`; the source must tolerate gaps (a driver may skip
    /// idle cycles).
    fn poll(&mut self, now: u64, out: &mut Vec<SourcedRequest>);

    /// A read previously emitted with this `token` completed at `now`.
    fn on_complete(&mut self, token: u64, now: u64);

    /// True once the source will emit no further requests and every
    /// completion it was waiting on has been delivered.
    fn exhausted(&self) -> bool;
}

/// Number of token bits reserved for the per-core miss id in
/// [`ClosedLoopSource`] tokens. 48 bits of misses per core is far beyond
/// any run length this simulator supports.
const MISS_BITS: u32 = 48;

/// The classic frontend as a [`RequestSource`]: one [`Core`] per thread,
/// each running an instruction stream, self-limited by its instruction
/// window and MSHRs.
///
/// This adapter exists to prove the core model fits the source API — the
/// full-system `System` keeps its own tightly-coupled loop (per-thread
/// stall feedback, BLP sampling) and remains the authoritative closed-loop
/// path. One intentional difference: where `System` leaves a miss inside
/// the core when the controller's buffer is full, this adapter emits it and
/// lets the driver buffer it, per the trait's backpressure contract.
pub struct ClosedLoopSource {
    cores: Vec<Core>,
    target_instructions: u64,
}

impl ClosedLoopSource {
    /// One core per instruction stream; the source is exhausted once every
    /// core has committed `target_instructions`.
    #[must_use]
    pub fn new(
        cfg: CoreConfig,
        streams: Vec<Box<dyn InstructionStream>>,
        target_instructions: u64,
    ) -> Self {
        let cores = streams.into_iter().map(|s| Core::new(cfg, s)).collect();
        ClosedLoopSource { cores, target_instructions }
    }

    /// Instructions committed by core `t` so far.
    #[must_use]
    pub fn committed(&self, t: usize) -> u64 {
        self.cores[t].stats().committed
    }
}

impl RequestSource for ClosedLoopSource {
    fn requesters(&self) -> usize {
        self.cores.len()
    }

    fn poll(&mut self, now: u64, out: &mut Vec<SourcedRequest>) {
        for (t, core) in self.cores.iter_mut().enumerate() {
            // A core that has hit its target goes idle: streams are
            // infinite, so ticking on would emit misses forever and the
            // drive would never quiesce.
            if core.stats().committed >= self.target_instructions {
                continue;
            }
            core.tick(now);
            while let Some((line, miss)) = core.pending_read() {
                debug_assert!(miss.0 < 1 << MISS_BITS, "miss id fits the token");
                out.push(SourcedRequest {
                    thread: ThreadId(t),
                    line,
                    kind: RequestKind::Read,
                    token: ((t as u64) << MISS_BITS) | miss.0,
                });
                core.read_issued(miss);
            }
            while let Some(line) = core.pending_write() {
                out.push(SourcedRequest {
                    thread: ThreadId(t),
                    line,
                    kind: RequestKind::Write,
                    token: 0,
                });
                core.write_issued();
            }
        }
    }

    fn on_complete(&mut self, token: u64, _now: u64) {
        let core = (token >> MISS_BITS) as usize;
        let miss = MissId(token & ((1 << MISS_BITS) - 1));
        self.cores[core].complete_read(miss);
    }

    fn exhausted(&self) -> bool {
        self.cores.iter().all(|c| c.stats().committed >= self.target_instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_cpu::Instr;

    /// One load every 4 instructions over 8 distinct lines.
    struct Toy(u64);
    impl InstructionStream for Toy {
        fn next_instr(&mut self) -> Instr {
            self.0 += 1;
            if self.0.is_multiple_of(4) {
                Instr::Load((self.0 / 4) % 8)
            } else {
                Instr::Compute
            }
        }
    }

    #[test]
    fn closed_loop_source_emits_and_completes_reads() {
        let streams: Vec<Box<dyn InstructionStream>> = vec![Box::new(Toy(0)), Box::new(Toy(100))];
        let mut src = ClosedLoopSource::new(CoreConfig::default(), streams, 200);
        assert_eq!(src.requesters(), 2);
        let mut out = Vec::new();
        // Drive with a zero-latency memory: complete each read immediately.
        let mut now = 0;
        while !src.exhausted() && now < 10_000 {
            src.poll(now, &mut out);
            for r in out.drain(..) {
                if r.kind == RequestKind::Read {
                    src.on_complete(r.token, now);
                }
            }
            now += 1;
        }
        assert!(src.exhausted(), "both cores reach the target");
        assert!(src.committed(0) >= 200 && src.committed(1) >= 200);
    }

    #[test]
    fn tokens_route_back_to_the_issuing_core() {
        let streams: Vec<Box<dyn InstructionStream>> = vec![Box::new(Toy(0)), Box::new(Toy(0))];
        let mut src = ClosedLoopSource::new(CoreConfig::default(), streams, u64::MAX);
        let mut out = Vec::new();
        for now in 0..50 {
            src.poll(now, &mut out);
        }
        assert!(!out.is_empty(), "the toy stream misses within 50 cycles");
        for r in &out {
            if r.kind == RequestKind::Read {
                assert_eq!((r.token >> MISS_BITS) as usize, r.thread.0);
            }
        }
    }
}
