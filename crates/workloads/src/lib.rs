//! Synthetic benchmark suite and multiprogrammed workload mixes replicating
//! the PAR-BS evaluation methodology (Mutlu & Moscibroda, ISCA 2008, §7).
//!
//! The paper evaluates 26 SPEC CPU2006 benchmarks plus two Windows desktop
//! applications, characterized in its Table 3 by memory intensity (MCPI and
//! L2 MPKI), row-buffer hit rate, and bank-level parallelism (BLP). Those
//! traces are proprietary; this crate substitutes **seeded synthetic
//! instruction streams** parameterized along exactly the axes the schedulers
//! are sensitive to:
//!
//! * `mpki` — L2 misses per kilo-instruction (memory intensity);
//! * `row_hit` — probability that the next miss in a bank stays in the
//!   current row (row-buffer locality);
//! * `blp` — mean number of concurrent misses to distinct banks per miss
//!   burst (intra-thread bank-level parallelism);
//! * `write_fraction` — writebacks per read miss.
//!
//! Each of the paper's 28 benchmarks gets a profile whose targets are taken
//! from Table 3, and the mix-construction rules of Section 7 (100 4-core,
//! 16 8-core, 12 16-core pseudo-random category combinations, plus the named
//! case-study workloads) are reproduced with a fixed seed.
//!
//! # Examples
//!
//! ```
//! use parbs_workloads::{by_name, StreamGeometry, SyntheticStream};
//! use parbs_cpu::InstructionStream;
//!
//! let mcf = by_name("mcf").unwrap();
//! assert!(mcf.blp > 4.0, "mcf has very high bank-level parallelism");
//! let mut stream = SyntheticStream::new(mcf, StreamGeometry::default(), 42, 0);
//! let _first = stream.next_instr();
//! ```

mod flow;
mod mixes;
mod profiles;
mod source;
mod synth;
mod trace;

pub use flow::{BoundedPareto, CompletedFlow, FlowConfig, FlowSource};
pub use mixes::{
    accel_case_study, case_study_1, case_study_2, case_study_3, cpu_accel_mixes, fig10_named,
    fig9_8core, random_mixes, MixSpec,
};
pub use profiles::{
    accelerators, all_benchmarks, by_name, by_number, classify, BenchmarkProfile, PaperRow,
    ACCEL_NUMBER_BASE, CATEGORIES,
};
pub use source::{ClosedLoopSource, RequestSource, SourcedRequest};
pub use synth::{StreamGeometry, SyntheticStream};
pub use trace::{format_trace, load_trace, parse_trace, ParseTraceError};
