//! Multiprogrammed workload-mix construction (Section 7 of the paper).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{accelerators, all_benchmarks, by_name, by_number, BenchmarkProfile, CATEGORIES};

/// A named multiprogrammed workload: one benchmark per core.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// Display name ("mix042", "CS1", "intensive16").
    pub name: String,
    /// The benchmark running on each core, in core order.
    pub benchmarks: Vec<&'static BenchmarkProfile>,
}

impl MixSpec {
    /// Builds a mix from benchmark short names.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown — mixes are static experiment
    /// definitions, so a typo should fail fast.
    #[must_use]
    pub fn from_names(name: &str, names: &[&str]) -> Self {
        let benchmarks = names
            .iter()
            .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
            .collect();
        MixSpec { name: name.to_owned(), benchmarks }
    }

    /// Number of cores this mix occupies.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.benchmarks.len()
    }

    /// Per-thread accelerator mask (`true` where the thread is a streaming
    /// accelerator agent), in core order — the shape
    /// `parbs_metrics::class_fairness` takes.
    #[must_use]
    pub fn accel_mask(&self) -> Vec<bool> {
        self.benchmarks.iter().map(|b| b.is_accelerator()).collect()
    }
}

/// Pseudo-random mixes following the paper's rule: each mix selects its
/// benchmarks from *different categories* (cycling through a shuffled
/// category order when `cores > 8`), "such that different category
/// combinations are evaluated". Deterministic in `seed`.
///
/// The paper uses 100 mixes for 4 cores, 16 for 8 cores and 12 for 16 cores.
#[must_use]
pub fn random_mixes(cores: usize, count: usize, seed: u64) -> Vec<MixSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut cats = CATEGORIES.to_vec();
            cats.shuffle(&mut rng);
            let benchmarks = (0..cores)
                .map(|j| {
                    let cat = cats[j % cats.len()];
                    let pool: Vec<&'static BenchmarkProfile> =
                        all_benchmarks().iter().filter(|b| b.category == cat).collect();
                    pool[rng.gen_range(0..pool.len())]
                })
                .collect();
            MixSpec { name: format!("mix{i:03}"), benchmarks }
        })
        .collect()
}

/// Mixed CPU/accelerator workloads for the scheduler-zoo comparison: each
/// mix runs `cores - 1` CPU benchmarks from distinct categories plus one
/// streaming-accelerator agent on the last core. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `cores < 2` — a mixed mix needs at least one CPU thread and
/// the accelerator.
#[must_use]
pub fn cpu_accel_mixes(cores: usize, count: usize, seed: u64) -> Vec<MixSpec> {
    assert!(cores >= 2, "a CPU/accelerator mix needs at least 2 cores");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut cats = CATEGORIES.to_vec();
            cats.shuffle(&mut rng);
            let mut benchmarks: Vec<&'static BenchmarkProfile> = (0..cores - 1)
                .map(|j| {
                    let cat = cats[j % cats.len()];
                    let pool: Vec<&'static BenchmarkProfile> =
                        all_benchmarks().iter().filter(|b| b.category == cat).collect();
                    pool[rng.gen_range(0..pool.len())]
                })
                .collect();
            benchmarks.push(&accelerators()[rng.gen_range(0..accelerators().len())]);
            MixSpec { name: format!("accel{i:03}"), benchmarks }
        })
        .collect()
}

/// The reference mixed CPU/accelerator case: the paper's Case Study I CPU
/// threads minus GemsFDTD, with a GPU streamer on the fourth core.
#[must_use]
pub fn accel_case_study() -> MixSpec {
    MixSpec::from_names("CSA", &["libquantum", "mcf", "xalancbmk", "gpu-stream"])
}

/// Case Study I (Fig. 5): a memory-intensive 4-core workload, one benchmark
/// with very high bank-level parallelism (mcf).
#[must_use]
pub fn case_study_1() -> MixSpec {
    MixSpec::from_names("CS1", &["libquantum", "mcf", "GemsFDTD", "xalancbmk"])
}

/// Case Study II (Fig. 6): three non-intensive benchmarks plus one intensive
/// one; only omnetpp has high bank-level parallelism.
#[must_use]
pub fn case_study_2() -> MixSpec {
    MixSpec::from_names("CS2", &["matlab", "h264ref", "omnetpp", "hmmer"])
}

/// Case Study III (Fig. 7): four identical copies of lbm — no fairness
/// problem, pure parallelism benefit.
#[must_use]
pub fn case_study_3() -> MixSpec {
    MixSpec::from_names("CS3", &["lbm", "lbm", "lbm", "lbm"])
}

/// The 8-core mixed workload of Fig. 9: 3 intensive + 5 non-intensive
/// applications, mcf being the only one with very high bank-parallelism.
#[must_use]
pub fn fig9_8core() -> MixSpec {
    MixSpec::from_names(
        "fig9",
        &["mcf", "xml-parser", "cactusADM", "astar", "hmmer", "h264ref", "gromacs", "bzip2"],
    )
}

/// The five named 16-core workloads of Fig. 10. Two are given by Table 3 row
/// numbers in the figure's x-axis labels; the other three are the 16 most
/// intensive, the middle 16, and the 16 least intensive benchmarks by the
/// paper's MCPI.
#[must_use]
pub fn fig10_named() -> Vec<MixSpec> {
    let numbered = |name: &str, numbers: &[u8]| MixSpec {
        name: name.to_owned(),
        benchmarks: numbers
            .iter()
            .map(|&n| by_number(n).unwrap_or_else(|| panic!("bad Table 3 number {n}")))
            .collect(),
    };
    let mut by_intensity: Vec<&'static BenchmarkProfile> = all_benchmarks().iter().collect();
    by_intensity.sort_by(|a, b| b.paper.mcpi.total_cmp(&a.paper.mcpi));
    let pick = |name: &str, range: std::ops::Range<usize>| MixSpec {
        name: name.to_owned(),
        benchmarks: by_intensity[range].to_vec(),
    };
    vec![
        numbered(
            "1,5,6,9,13-22,27,28",
            &[1, 5, 6, 9, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 27, 28],
        ),
        numbered("9,13-22,24-28", &[9, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 24, 25, 26, 27, 28]),
        pick("intensive16", 0..16),
        pick("middle16", 6..22),
        pick("non-intensive16", 12..28),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mixes_are_deterministic() {
        let a = random_mixes(4, 10, 7);
        let b = random_mixes(4, 10, 7);
        for (x, y) in a.iter().zip(&b) {
            let xn: Vec<_> = x.benchmarks.iter().map(|b| b.name).collect();
            let yn: Vec<_> = y.benchmarks.iter().map(|b| b.name).collect();
            assert_eq!(xn, yn);
        }
    }

    #[test]
    fn four_core_mixes_use_four_distinct_categories() {
        for mix in random_mixes(4, 100, 42) {
            assert_eq!(mix.cores(), 4);
            let mut cats: Vec<u8> = mix.benchmarks.iter().map(|b| b.category).collect();
            cats.sort_unstable();
            cats.dedup();
            assert_eq!(cats.len(), 4, "mix {} reuses a category", mix.name);
        }
    }

    #[test]
    fn eight_core_mixes_cover_all_categories() {
        for mix in random_mixes(8, 16, 42) {
            assert_eq!(mix.cores(), 8);
            let mut cats: Vec<u8> = mix.benchmarks.iter().map(|b| b.category).collect();
            cats.sort_unstable();
            cats.dedup();
            assert_eq!(cats.len(), 8);
        }
    }

    #[test]
    fn sixteen_core_mixes_have_sixteen_entries() {
        for mix in random_mixes(16, 12, 42) {
            assert_eq!(mix.cores(), 16);
        }
    }

    #[test]
    fn mixes_vary_across_index() {
        let mixes = random_mixes(4, 100, 42);
        let distinct: std::collections::HashSet<Vec<&str>> =
            mixes.iter().map(|m| m.benchmarks.iter().map(|b| b.name).collect()).collect();
        assert!(distinct.len() > 60, "only {} distinct mixes out of 100", distinct.len());
    }

    #[test]
    fn case_studies_match_paper() {
        assert_eq!(
            case_study_1().benchmarks.iter().map(|b| b.name).collect::<Vec<_>>(),
            ["libquantum", "mcf", "GemsFDTD", "xalancbmk"]
        );
        assert_eq!(
            case_study_2().benchmarks.iter().map(|b| b.name).collect::<Vec<_>>(),
            ["matlab", "h264ref", "omnetpp", "hmmer"]
        );
        assert!(case_study_3().benchmarks.iter().all(|b| b.name == "lbm"));
        assert_eq!(fig9_8core().cores(), 8);
    }

    #[test]
    fn fig10_named_are_16_core() {
        let named = fig10_named();
        assert_eq!(named.len(), 5);
        for mix in &named {
            assert_eq!(mix.cores(), 16, "{}", mix.name);
        }
        // intensive16 must contain the heaviest benchmarks.
        let intensive = &named[2];
        assert!(intensive.benchmarks.iter().any(|b| b.name == "mcf"));
        assert!(intensive.benchmarks.iter().any(|b| b.name == "matlab"));
        // non-intensive16 must not contain them.
        let light = &named[4];
        assert!(light.benchmarks.iter().all(|b| b.name != "mcf"));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn from_names_rejects_typos() {
        let _ = MixSpec::from_names("bad", &["mfc"]);
    }

    #[test]
    fn cpu_accel_mixes_put_one_accelerator_on_the_last_core() {
        let mixes = cpu_accel_mixes(4, 8, 11);
        assert_eq!(mixes.len(), 8);
        for mix in &mixes {
            assert_eq!(mix.cores(), 4);
            let mask = mix.accel_mask();
            assert_eq!(mask, [false, false, false, true], "{}", mix.name);
            let mut cats: Vec<u8> = mix.benchmarks[..3].iter().map(|b| b.category).collect();
            cats.sort_unstable();
            cats.dedup();
            assert_eq!(cats.len(), 3, "{}: CPU threads span distinct categories", mix.name);
        }
        // Determinism in the seed.
        let again = cpu_accel_mixes(4, 8, 11);
        for (a, b) in mixes.iter().zip(&again) {
            let an: Vec<_> = a.benchmarks.iter().map(|b| b.name).collect();
            let bn: Vec<_> = b.benchmarks.iter().map(|b| b.name).collect();
            assert_eq!(an, bn);
        }
    }

    #[test]
    fn accel_case_study_shape() {
        let mix = accel_case_study();
        assert_eq!(mix.cores(), 4);
        assert_eq!(mix.accel_mask(), [false, false, false, true]);
        assert_eq!(mix.benchmarks[3].name, "gpu-stream");
    }
}
