//! Trace-file workloads: run real (or externally generated) memory traces
//! instead of the synthetic benchmarks.
//!
//! The format is line-oriented text — one instruction group per line,
//! `#`-comments and blank lines ignored:
//!
//! ```text
//! # compute-count, then L2-miss loads/stores at cache-line granularity
//! C 12          # 12 non-memory instructions
//! L 0x1a2b      # independent load miss of line 0x1a2b
//! D 0x1a2c      # dependent load miss (waits for all older misses)
//! S 0x1a2b      # store (writeback)
//! ```
//!
//! Line addresses may be hexadecimal (`0x…`) or decimal. The trace loops
//! when the simulator runs longer than its length, matching the behaviour
//! of the synthetic streams.

use std::path::Path;

use parbs_cpu::{Instr, TraceStream};

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_addr(token: &str, line: usize) -> Result<u64, ParseTraceError> {
    let parsed = if let Some(hex) = token.strip_prefix("0x").or_else(|| token.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| ParseTraceError { line, message: format!("invalid address '{token}'") })
}

/// Parses the text trace format into an instruction sequence.
///
/// # Errors
///
/// Returns the first malformed line (unknown opcode, missing or invalid
/// operand). An entirely empty trace is an error — instruction streams must
/// be non-empty.
pub fn parse_trace(text: &str) -> Result<Vec<Instr>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line has a first token");
        let operand = parts.next().ok_or_else(|| ParseTraceError {
            line: line_no,
            message: format!("'{op}' needs an operand"),
        })?;
        if parts.next().is_some() {
            return Err(ParseTraceError {
                line: line_no,
                message: "trailing tokens after operand".into(),
            });
        }
        match op {
            "C" | "c" => {
                let n: u64 = operand.parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("invalid compute count '{operand}'"),
                })?;
                out.extend(std::iter::repeat_n(Instr::Compute, n as usize));
            }
            "L" | "l" => out.push(Instr::Load(parse_addr(operand, line_no)?)),
            "D" | "d" => out.push(Instr::DependentLoad(parse_addr(operand, line_no)?)),
            "S" | "s" => out.push(Instr::Store(parse_addr(operand, line_no)?)),
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    message: format!("unknown opcode '{other}' (expected C, L, D or S)"),
                })
            }
        }
    }
    if out.is_empty() {
        return Err(ParseTraceError { line: 0, message: "trace contains no instructions".into() });
    }
    Ok(out)
}

/// Loads a trace file into a looping [`TraceStream`].
///
/// # Errors
///
/// Returns an I/O error message or the first malformed line.
pub fn load_trace(path: &Path) -> Result<TraceStream, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let instrs = parse_trace(&text).map_err(|e| e.to_string())?;
    Ok(TraceStream::new(instrs))
}

/// Serializes an instruction sequence back to the text format (the inverse
/// of [`parse_trace`], with runs of compute instructions compacted).
#[must_use]
pub fn format_trace(instrs: &[Instr]) -> String {
    let mut out = String::new();
    let mut compute_run = 0u64;
    let flush = |out: &mut String, run: &mut u64| {
        if *run > 0 {
            out.push_str(&format!("C {run}\n"));
            *run = 0;
        }
    };
    for i in instrs {
        match i {
            Instr::Compute => compute_run += 1,
            Instr::Load(a) => {
                flush(&mut out, &mut compute_run);
                out.push_str(&format!("L 0x{a:x}\n"));
            }
            Instr::DependentLoad(a) => {
                flush(&mut out, &mut compute_run);
                out.push_str(&format!("D 0x{a:x}\n"));
            }
            Instr::Store(a) => {
                flush(&mut out, &mut compute_run);
                out.push_str(&format!("S 0x{a:x}\n"));
            }
        }
    }
    flush(&mut out, &mut compute_run);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_cpu::InstructionStream;

    #[test]
    fn parses_all_opcodes_and_comments() {
        let t = "# header\nC 3\nL 0x10\nD 16\nS 0x20  # inline comment\n\n";
        let v = parse_trace(t).unwrap();
        assert_eq!(
            v,
            vec![
                Instr::Compute,
                Instr::Compute,
                Instr::Compute,
                Instr::Load(0x10),
                Instr::DependentLoad(16),
                Instr::Store(0x20),
            ]
        );
    }

    #[test]
    fn rejects_unknown_opcode() {
        let e = parse_trace("X 5\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown opcode"));
    }

    #[test]
    fn rejects_missing_operand() {
        let e = parse_trace("C 1\nL\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_bad_address() {
        let e = parse_trace("L 0xzz\n").unwrap_err();
        assert!(e.message.contains("invalid address"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse_trace("L 0x10 0x20\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn rejects_empty_trace() {
        assert!(parse_trace("# only comments\n").is_err());
    }

    #[test]
    fn format_parse_round_trip() {
        let instrs = vec![
            Instr::Compute,
            Instr::Compute,
            Instr::Load(0x1a2b),
            Instr::Store(7),
            Instr::DependentLoad(0xff),
            Instr::Compute,
        ];
        let text = format_trace(&instrs);
        assert_eq!(parse_trace(&text).unwrap(), instrs);
    }

    #[test]
    fn load_trace_reads_a_file() {
        let path = std::env::temp_dir().join("parbs_trace_test.txt");
        std::fs::write(&path, "C 2\nL 0x40\n").unwrap();
        let mut stream = load_trace(&path).unwrap();
        assert_eq!(stream.next_instr(), Instr::Compute);
        assert_eq!(stream.next_instr(), Instr::Compute);
        assert_eq!(stream.next_instr(), Instr::Load(0x40));
        // Loops.
        assert_eq!(stream.next_instr(), Instr::Compute);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_trace_missing_file_errors() {
        let err = load_trace(Path::new("/nonexistent/parbs.trace")).unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
