//! Open-loop datacenter-flow frontend: a [`FlowSource`] emits requests for
//! tens of thousands of short-lived requesters instead of a handful of
//! long-lived cores.
//!
//! The model follows the standard flow-level traffic shape used in
//! datacenter network and storage studies: flows arrive by a Poisson
//! process, flow sizes are bounded-Pareto (heavy-tailed — most flows tiny,
//! a few huge), and each flow issues its requests back-to-back at a fixed
//! per-request gap. A flow maps to one DRAM **thread id**, so flow size
//! plays the role of per-thread bank load and the scheduler's fairness
//! machinery sees each flow as a distinct (usually short-lived) thread.
//!
//! Determinism: every random draw (size, base address, inter-arrival gap)
//! happens at **spawn time**, in arrival order, from one seeded generator.
//! The emitted request sequence therefore depends only on the config — not
//! on poll cadence, memory latency, or worker-thread count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parbs_dram::{RequestKind, ThreadId, ThreadTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::{RequestSource, SourcedRequest};

/// A bounded-Pareto distribution over `min..=max` with shape `alpha`.
///
/// Heavy-tailed but with a hard cap, so a single elephant flow cannot make
/// a bounded experiment unbounded. Sampling is by inverse CDF:
/// `x = L * (1 - u * (1 - (L/H)^alpha))^(-1/alpha)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Tail shape; smaller means heavier tail. Typical flow-size fits use
    /// 1.1–1.3.
    pub alpha: f64,
    /// Smallest value (inclusive), in requests.
    pub min: u64,
    /// Largest value (inclusive), in requests.
    pub max: u64,
}

impl BoundedPareto {
    /// Maps a uniform draw `u` in `[0, 1)` to a flow size. Monotone in `u`.
    #[must_use]
    pub fn sample(&self, u: f64) -> u64 {
        let l = self.min.max(1) as f64;
        let h = self.max.max(self.min.max(1)) as f64;
        let ratio = (l / h).powf(self.alpha);
        let x = l * (1.0 - u * (1.0 - ratio)).powf(-1.0 / self.alpha);
        (x.round() as u64).clamp(self.min.max(1), self.max.max(self.min.max(1)))
    }
}

/// Parameters of a [`FlowSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Total number of flows the source spawns over its lifetime. Each flow
    /// gets its own thread id in `0..requesters`, so this is also the
    /// thread-id space the memory system must tolerate.
    pub requesters: usize,
    /// Mean flow arrivals per DRAM cycle (Poisson process). `0.002` means
    /// one new flow every 500 cycles on average — about half the service
    /// capacity of one DDR2-800 channel at the default size distribution,
    /// the moderate-load regime an open-loop comparison wants.
    pub arrival_rate: f64,
    /// Flow size distribution, in requests per flow.
    pub size: BoundedPareto,
    /// Cycles between consecutive request issues within one flow.
    pub request_gap: u64,
    /// Number of distinct cache lines flows draw base addresses from.
    /// Consecutive requests of a flow walk consecutive lines from its base,
    /// which the address mapper spreads across banks — flow size ≈ the bank
    /// load that flow presents.
    pub line_space: u64,
    /// RNG seed; two sources with equal configs emit identical traffic.
    pub seed: u64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            requesters: 1024,
            arrival_rate: 0.002,
            size: BoundedPareto { alpha: 1.2, min: 2, max: 256 },
            request_gap: 4,
            line_space: 1 << 24,
            seed: 1,
        }
    }
}

/// A flow that finished: everything needed for flow-completion-time and
/// slowdown metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedFlow {
    /// The thread id the flow ran under.
    pub thread: ThreadId,
    /// Cycle the flow arrived (first request became issuable).
    pub arrival: u64,
    /// Cycle the flow's last read completed.
    pub finish: u64,
    /// Requests the flow issued.
    pub size: u64,
}

impl CompletedFlow {
    /// Flow completion time in cycles.
    #[must_use]
    pub fn fct(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }
}

/// Per-flow live state. Retired from the table the moment the flow's last
/// read completes, so the table size tracks *concurrent* flows — the whole
/// point of the sparse [`ThreadTable`] representation.
#[derive(Debug, Clone, Copy)]
struct FlowState {
    /// Requests not yet emitted.
    remaining: u64,
    /// Emitted reads whose completions are still outstanding.
    outstanding: u64,
    /// Line address of the next request.
    next_line: u64,
    /// Spawn cycle.
    arrival: u64,
    /// Total size, for the completion record.
    size: u64,
}

/// Open-loop Poisson/bounded-Pareto flow generator implementing
/// [`RequestSource`].
pub struct FlowSource {
    cfg: FlowConfig,
    rng: StdRng,
    /// Live flows, keyed by thread id — dogfoods the sparse-state API the
    /// schedulers use for the same population.
    flows: ThreadTable<FlowState>,
    /// Pending request-issue events: `(cycle, flow id)`, min-first. One
    /// entry per live flow that still has requests to emit, so each emit is
    /// `O(log concurrent-flows)` regardless of `requesters`.
    issue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Arrival cycle of the next unspawned flow.
    next_arrival: u64,
    /// Flows spawned so far; also the next flow's thread id.
    spawned: usize,
    /// Flows finished, awaiting [`FlowSource::take_completed`].
    completed: Vec<CompletedFlow>,
    /// Running count of all finished flows (survives `take_completed`).
    finished: usize,
}

impl FlowSource {
    /// Builds the source; the first flow arrives after one exponential
    /// inter-arrival gap from cycle 0.
    #[must_use]
    pub fn new(cfg: FlowConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let first = exp_gap(&mut rng, cfg.arrival_rate);
        FlowSource {
            cfg,
            rng,
            flows: ThreadTable::new(),
            issue: BinaryHeap::new(),
            next_arrival: first,
            spawned: 0,
            completed: Vec::new(),
            finished: 0,
        }
    }

    /// Flows currently in flight (spawned, not yet fully completed).
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Flows spawned so far.
    #[must_use]
    pub fn spawned(&self) -> usize {
        self.spawned
    }

    /// Flows fully completed so far.
    #[must_use]
    pub fn finished(&self) -> usize {
        self.finished
    }

    /// Drains the records of flows that completed since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    fn spawn_flow(&mut self, arrival: u64) {
        let id = self.spawned;
        self.spawned += 1;
        let size = self.cfg.size.sample(self.rng.gen::<f64>());
        let base = self.rng.gen::<f64>();
        let next_line = (base * self.cfg.line_space.max(1) as f64) as u64;
        self.flows.insert(
            ThreadId(id),
            FlowState { remaining: size, outstanding: 0, next_line, arrival, size },
        );
        self.issue.push(Reverse((arrival, id)));
        // Draw the next inter-arrival now, in arrival order, so the spawn
        // schedule never depends on when the driver polls.
        self.next_arrival = arrival + exp_gap(&mut self.rng, self.cfg.arrival_rate);
    }
}

/// One exponential inter-arrival gap in whole cycles (at least 1).
fn exp_gap(rng: &mut StdRng, rate: f64) -> u64 {
    let rate = rate.max(1e-12);
    let u: f64 = rng.gen();
    let gap = (-(1.0 - u).ln() / rate).ceil();
    (gap as u64).max(1)
}

impl RequestSource for FlowSource {
    fn requesters(&self) -> usize {
        self.cfg.requesters
    }

    fn poll(&mut self, now: u64, out: &mut Vec<SourcedRequest>) {
        while self.spawned < self.cfg.requesters && self.next_arrival <= now {
            let at = self.next_arrival;
            self.spawn_flow(at);
        }
        while let Some(&Reverse((when, id))) = self.issue.peek() {
            if when > now {
                break;
            }
            self.issue.pop();
            let cfg_gap = self.cfg.request_gap;
            let Some(flow) = self.flows.get_mut(ThreadId(id)) else { continue };
            debug_assert!(flow.remaining > 0, "issue events exist only while requests remain");
            out.push(SourcedRequest {
                thread: ThreadId(id),
                line: flow.next_line,
                kind: RequestKind::Read,
                token: id as u64,
            });
            flow.next_line += 1;
            flow.remaining -= 1;
            flow.outstanding += 1;
            if flow.remaining > 0 {
                self.issue.push(Reverse((when + cfg_gap.max(1), id)));
            }
        }
    }

    fn on_complete(&mut self, token: u64, now: u64) {
        let id = ThreadId(token as usize);
        let done = {
            let Some(flow) = self.flows.get_mut(id) else { return };
            flow.outstanding = flow.outstanding.saturating_sub(1);
            flow.outstanding == 0 && flow.remaining == 0
        };
        if done {
            if let Some(flow) = self.flows.retire(id) {
                self.completed.push(CompletedFlow {
                    thread: id,
                    arrival: flow.arrival,
                    finish: now,
                    size: flow.size,
                });
                self.finished += 1;
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.spawned == self.cfg.requesters && self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FlowConfig {
        FlowConfig {
            requesters: 64,
            arrival_rate: 0.05,
            size: BoundedPareto { alpha: 1.2, min: 2, max: 32 },
            request_gap: 2,
            line_space: 1 << 16,
            seed: 7,
        }
    }

    /// Runs the source against an immediate-completion memory, returning
    /// the full emission trace.
    fn drain(cfg: FlowConfig, poll_stride: u64) -> (Vec<SourcedRequest>, Vec<CompletedFlow>) {
        let mut src = FlowSource::new(cfg);
        let mut trace = Vec::new();
        let mut out = Vec::new();
        let mut now = 0;
        while !src.exhausted() {
            assert!(now < 10_000_000, "source must terminate");
            src.poll(now, &mut out);
            for r in out.drain(..) {
                trace.push(r);
                src.on_complete(r.token, now);
            }
            now += poll_stride;
        }
        let completed = src.take_completed();
        (trace, completed)
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_tail() {
        let d = BoundedPareto { alpha: 1.2, min: 2, max: 256 };
        assert_eq!(d.sample(0.0), 2);
        assert_eq!(d.sample(0.999_999_9), 256);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..4_000).map(|_| d.sample(rng.gen())).collect();
        assert!(samples.iter().all(|&s| (2..=256).contains(&s)));
        let small = samples.iter().filter(|&&s| s <= 8).count();
        let huge = samples.iter().filter(|&&s| s >= 128).count();
        assert!(small > samples.len() / 2, "most flows are mice: {small}");
        assert!(huge > 0, "the tail produces elephants");
    }

    #[test]
    fn flows_complete_and_cover_the_id_space() {
        let cfg = small_cfg();
        let (trace, completed) = drain(cfg, 1);
        assert_eq!(completed.len(), cfg.requesters);
        let total: u64 = completed.iter().map(|f| f.size).sum();
        assert_eq!(trace.len() as u64, total, "one request per unit of flow size");
        // Thread ids are exactly 0..requesters, each finishing once.
        let mut ids: Vec<usize> = completed.iter().map(|f| f.thread.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..cfg.requesters).collect::<Vec<_>>());
        for f in &completed {
            assert!(f.finish >= f.arrival);
            assert!(f.fct() >= (f.size - 1) * cfg.request_gap, "gap bounds the best-case FCT");
        }
    }

    #[test]
    fn emission_is_independent_of_poll_cadence() {
        let cfg = small_cfg();
        let (a, _) = drain(cfg, 1);
        let (b, _) = drain(cfg, 7);
        assert_eq!(a, b, "coarser polling reorders nothing");
    }

    #[test]
    fn seeds_change_traffic_but_configs_reproduce_it() {
        let cfg = small_cfg();
        let (a, _) = drain(cfg, 1);
        let (same, _) = drain(cfg, 1);
        assert_eq!(a, same);
        let (other, _) = drain(FlowConfig { seed: 8, ..cfg }, 1);
        assert_ne!(a, other);
    }

    #[test]
    fn live_state_tracks_concurrent_flows_only() {
        let mut src = FlowSource::new(FlowConfig { requesters: 10_000, ..small_cfg() });
        let mut out = Vec::new();
        // Let arrivals pile up without completing anything for a while...
        for now in 0..2_000 {
            src.poll(now, &mut out);
        }
        let live = src.active_flows();
        assert!(live > 0 && live <= src.spawned());
        // ...then complete everything emitted so far: the table shrinks to
        // just the flows still holding unemitted requests.
        for r in out.drain(..) {
            src.on_complete(r.token, 2_000);
        }
        assert!(src.active_flows() <= live);
        assert_eq!(src.finished() + src.active_flows(), src.spawned());
    }
}
