//! The synthetic instruction-stream generator.
//!
//! Misses are emitted in *bursts*: a burst touches `k` distinct banks
//! (where `k` is sampled around the profile's BLP target), with a handful of
//! compute instructions between the loads so they land close together in the
//! instruction window and can overlap in DRAM. Between bursts the generator
//! emits enough compute instructions to hit the profile's MPKI target. Each
//! bank keeps a `(row, column)` cursor; with probability `row_hit` the next
//! miss continues sequentially in the current row, otherwise it jumps to a
//! random row — giving direct control over row-buffer locality.

use parbs_cpu::{Instr, InstructionStream};
use parbs_dram::{AddressMapper, LineAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use crate::BenchmarkProfile;

/// The DRAM geometry a stream generates addresses for, plus the private
/// row region of each thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamGeometry {
    /// Channels in the target system.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Cache lines per row.
    pub cols_per_row: u64,
    /// Rows in each thread's private region (threads never share rows).
    pub region_rows: u64,
}

impl StreamGeometry {
    /// Geometry matching [`parbs_dram::DramConfig::baseline_4core`].
    #[must_use]
    pub fn baseline_4core() -> Self {
        StreamGeometry { channels: 1, banks_per_channel: 8, cols_per_row: 32, region_rows: 1024 }
    }

    /// Geometry matching `DramConfig::for_cores(cores)`.
    #[must_use]
    pub fn for_cores(cores: usize) -> Self {
        let mut g = Self::baseline_4core();
        g.channels = (cores / 4).max(1).next_power_of_two();
        g
    }

    /// Total independent bank slots across all channels.
    #[must_use]
    pub fn bank_slots(&self) -> usize {
        self.channels * self.banks_per_channel
    }
}

impl Default for StreamGeometry {
    fn default() -> Self {
        Self::baseline_4core()
    }
}

#[derive(Debug, Clone, Copy)]
struct BankCursor {
    row: u64,
    col: u64,
}

/// A seeded, infinite instruction stream with the given benchmark's memory
/// characteristics. Deterministic for a fixed `(profile, geometry, seed,
/// thread_salt)` tuple.
pub struct SyntheticStream {
    profile: BenchmarkProfile,
    geometry: StreamGeometry,
    mapper: AddressMapper,
    /// Row offset of this thread's private region.
    region_base: u64,
    rng: StdRng,
    cursors: Vec<BankCursor>,
    /// Sticky bank slots of the thread's concurrent miss streams: a stream
    /// keeps returning to its bank (continuing its open row) until a row
    /// jump moves it elsewhere — the access pattern that lets a
    /// high-locality thread capture a bank under row-hit-first policies.
    active: Vec<usize>,
    queue: VecDeque<Instr>,
    /// Fractional compute-gap carry so long-run MPKI is exact.
    gap_carry: f64,
    /// Episodes emitted so far (for stream-depth fencing).
    episodes: u64,
}

impl std::fmt::Debug for SyntheticStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticStream")
            .field("benchmark", &self.profile.name)
            .field("queued", &self.queue.len())
            .finish()
    }
}

/// Compute instructions inserted between the loads of one burst, keeping the
/// burst inside the 128-entry window while modeling short dependence chains.
const INTRA_BURST_GAP: usize = 2;

impl SyntheticStream {
    /// Creates the stream. `thread_salt` selects the thread's private row
    /// region and perturbs the RNG so identical benchmarks on different
    /// cores (e.g. 4 copies of `lbm`, Fig. 7) produce distinct but
    /// statistically identical streams.
    #[must_use]
    pub fn new(
        profile: &BenchmarkProfile,
        geometry: StreamGeometry,
        seed: u64,
        thread_salt: u64,
    ) -> Self {
        let mapper = AddressMapper::canonical(
            geometry.channels,
            geometry.banks_per_channel,
            geometry.cols_per_row,
        )
        .expect("stream geometries are power-of-two shapes");
        let mut rng = StdRng::seed_from_u64(
            seed ^ (u64::from(profile.number) << 32) ^ thread_salt.wrapping_mul(0x9E37_79B9),
        );
        let cursors = (0..geometry.bank_slots())
            .map(|_| BankCursor {
                row: rng.gen_range(0..geometry.region_rows),
                col: rng.gen_range(0..geometry.cols_per_row),
            })
            .collect();
        SyntheticStream {
            profile: *profile,
            geometry,
            mapper,
            region_base: thread_salt * geometry.region_rows,
            rng,
            cursors,
            active: Vec::new(),
            queue: VecDeque::new(),
            gap_carry: 0.0,
            episodes: 0,
        }
    }

    /// The benchmark this stream models.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn sample_burst_width(&mut self) -> usize {
        let blp = self.profile.blp.max(1.0);
        let base = blp.floor() as usize;
        let frac = blp - blp.floor();
        let k = base + usize::from(self.rng.gen_bool(frac));
        k.min(self.geometry.bank_slots()).max(1)
    }

    /// Advances a bank cursor per the row-locality model and returns the
    /// line address of the next miss on that bank slot, plus whether the
    /// stream jumped to a new row (and should move to a new bank).
    fn next_line(&mut self, slot: usize) -> (u64, bool) {
        let cols = self.geometry.cols_per_row;
        let rows = self.geometry.region_rows;
        let cur = &mut self.cursors[slot];
        let jumped = !self.rng.gen_bool(self.profile.row_hit.clamp(0.0, 1.0));
        if jumped {
            cur.row = self.rng.gen_range(0..rows);
            cur.col = self.rng.gen_range(0..cols);
        } else {
            cur.col = (cur.col + 1) % cols;
        }
        let channel = slot / self.geometry.banks_per_channel;
        let bank = slot % self.geometry.banks_per_channel;
        let line = self.mapper.encode(LineAddr {
            channel,
            bank,
            row: self.region_base + cur.row,
            col: cur.col,
        });
        (line, jumped)
    }

    /// A random bank slot not currently used by another stream.
    fn fresh_slot(&mut self) -> usize {
        let slots = self.geometry.bank_slots();
        loop {
            let s = self.rng.gen_range(0..slots);
            if !self.active.contains(&s) || self.active.len() >= slots {
                return s;
            }
        }
    }

    fn refill(&mut self) {
        let k = self.sample_burst_width();
        // Maintain k sticky, distinct stream slots.
        while self.active.len() < k {
            let slot = self.fresh_slot();
            self.active.push(slot);
        }
        self.active.truncate(k);
        let mut lines = Vec::with_capacity(k);
        for i in 0..k {
            let slot = self.active[i];
            let (line, jumped) = self.next_line(slot);
            lines.push(line);
            if jumped {
                // The stream moved to a new row; continue it on a different
                // bank so the thread's footprint rotates over the banks.
                let fresh = self.fresh_slot();
                self.active[i] = fresh;
            }
        }
        // A dependence fence starts every `stream_depth`-th episode: a
        // pointer-chaser fences every episode (serial chain of k-wide
        // bursts); a streaming benchmark keeps several episodes in flight.
        let fence = self.episodes.is_multiple_of(self.profile.stream_depth());
        self.episodes += 1;
        let mut burst_len = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if i == 0 && fence {
                self.queue.push_back(Instr::DependentLoad(*line));
            } else {
                self.queue.push_back(Instr::Load(*line));
            }
            burst_len += 1;
            if i + 1 < lines.len() {
                for _ in 0..INTRA_BURST_GAP {
                    self.queue.push_back(Instr::Compute);
                    burst_len += 1;
                }
            }
        }
        // Writebacks: each miss evicts a dirty line with probability
        // `write_fraction`, posting a store to a line the burst touched.
        let wf = self.profile.write_fraction.clamp(0.0, 1.0);
        for &line in &lines {
            if self.rng.gen_bool(wf) {
                self.queue.push_back(Instr::Store(line));
                burst_len += 1;
            }
        }
        // Inter-burst compute gap: m misses per (m * 1000/mpki) instructions.
        let mpki = self.profile.mpki.max(0.001);
        let target = lines.len() as f64 * (1000.0 / mpki) + self.gap_carry;
        let gap = (target - burst_len as f64).max(0.0);
        let whole = gap.floor();
        self.gap_carry = gap - whole;
        for _ in 0..whole as u64 {
            self.queue.push_back(Instr::Compute);
        }
    }
}

impl InstructionStream for SyntheticStream {
    fn next_instr(&mut self) -> Instr {
        loop {
            if let Some(i) = self.queue.pop_front() {
                return i;
            }
            self.refill();
        }
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.rng.state());
        w.put(&self.cursors);
        w.put(&self.active);
        w.put(&self.queue);
        w.f64(self.gap_carry);
        w.u64(self.episodes);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let rng_state: [u64; 4] = r.get()?;
        let cursors: Vec<BankCursor> = r.get()?;
        if cursors.len() != self.cursors.len() {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "stream bank-cursor count",
                expected: self.cursors.len() as u64,
                found: cursors.len() as u64,
            });
        }
        self.rng = StdRng::from_state(rng_state);
        self.cursors = cursors;
        self.active = r.get()?;
        self.queue = r.get()?;
        self.gap_carry = r.f64()?;
        self.episodes = r.u64()?;
        Ok(())
    }
}

impl parbs_snap::Snap for BankCursor {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.row);
        w.u64(self.col);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(BankCursor { row: r.u64()?, col: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    fn collect(name: &str, seed: u64, salt: u64, n: usize) -> Vec<Instr> {
        let mut s =
            SyntheticStream::new(by_name(name).unwrap(), StreamGeometry::default(), seed, salt);
        (0..n).map(|_| s.next_instr()).collect()
    }

    fn mpki_of(instrs: &[Instr]) -> f64 {
        let loads =
            instrs.iter().filter(|i| matches!(i, Instr::Load(_) | Instr::DependentLoad(_))).count();
        loads as f64 * 1000.0 / instrs.len() as f64
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(collect("mcf", 1, 0, 5_000), collect("mcf", 1, 0, 5_000));
    }

    #[test]
    fn different_salts_differ() {
        assert_ne!(collect("mcf", 1, 0, 5_000), collect("mcf", 1, 1, 5_000));
    }

    #[test]
    fn mpki_matches_target_for_intensive_benchmark() {
        let instrs = collect("mcf", 7, 0, 200_000);
        let measured = mpki_of(&instrs);
        let target = by_name("mcf").unwrap().mpki;
        assert!(
            (measured - target).abs() / target < 0.15,
            "mcf MPKI: measured {measured:.1}, target {target:.1}"
        );
    }

    #[test]
    fn mpki_matches_target_for_moderate_benchmark() {
        let instrs = collect("hmmer", 7, 0, 400_000);
        let measured = mpki_of(&instrs);
        let target = by_name("hmmer").unwrap().mpki;
        assert!(
            (measured - target).abs() / target < 0.15,
            "hmmer MPKI: measured {measured:.2}, target {target:.2}"
        );
    }

    #[test]
    fn high_blp_benchmark_bursts_across_banks() {
        // Count distinct banks touched within each burst window for mcf
        // (BLP target 4.75) vs matlab (BLP target 1.08).
        let geometry = StreamGeometry::default();
        let mapper = AddressMapper::canonical(1, 8, 32).unwrap();
        let burst_banks = |name: &str| {
            let mut s = SyntheticStream::new(by_name(name).unwrap(), geometry, 3, 0);
            let mut widths = Vec::new();
            let mut current: Vec<usize> = Vec::new();
            let mut gap = 0;
            for _ in 0..200_000 {
                match s.next_instr() {
                    Instr::Load(line) | Instr::DependentLoad(line) => {
                        gap = 0;
                        let b = mapper.decode(line).bank;
                        if !current.contains(&b) {
                            current.push(b);
                        }
                    }
                    _ => {
                        gap += 1;
                        if gap > 8 && !current.is_empty() {
                            widths.push(current.len());
                            current.clear();
                        }
                    }
                }
            }
            widths.iter().sum::<usize>() as f64 / widths.len() as f64
        };
        let mcf = burst_banks("mcf");
        let matlab = burst_banks("matlab");
        assert!(mcf > 4.0, "mcf burst width = {mcf:.2}");
        assert!(matlab < 1.5, "matlab burst width = {matlab:.2}");
    }

    #[test]
    fn row_locality_knob_changes_address_stream() {
        // libquantum (row_hit .984) should mostly continue within rows;
        // sjeng (row_hit .168) should mostly jump.
        let mapper = AddressMapper::canonical(1, 8, 32).unwrap();
        let same_row_fraction = |name: &str| {
            let instrs = collect(name, 9, 0, 300_000);
            let mut last: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
            let (mut same, mut total) = (0u64, 0u64);
            for i in instrs {
                if let Instr::Load(line) | Instr::DependentLoad(line) = i {
                    let a = mapper.decode(line);
                    if let Some(&row) = last.get(&a.bank) {
                        total += 1;
                        if row == a.row {
                            same += 1;
                        }
                    }
                    last.insert(a.bank, a.row);
                }
            }
            same as f64 / total as f64
        };
        assert!(same_row_fraction("libquantum") > 0.9);
        assert!(same_row_fraction("sjeng") < 0.4);
    }

    #[test]
    fn stores_appear_roughly_at_write_fraction() {
        let instrs = collect("lbm", 11, 0, 300_000);
        let loads =
            instrs.iter().filter(|i| matches!(i, Instr::Load(_) | Instr::DependentLoad(_))).count()
                as f64;
        let stores = instrs.iter().filter(|i| matches!(i, Instr::Store(_))).count() as f64;
        let wf = by_name("lbm").unwrap().write_fraction;
        assert!(
            (stores / loads - wf).abs() < 0.1,
            "write fraction: measured {:.2}, target {wf:.2}",
            stores / loads
        );
    }

    #[test]
    fn addresses_stay_in_thread_region() {
        let geometry = StreamGeometry::default();
        let mapper = AddressMapper::canonical(1, 8, 32).unwrap();
        for salt in [0u64, 3] {
            let mut s = SyntheticStream::new(by_name("mcf").unwrap(), geometry, 5, salt);
            for _ in 0..50_000 {
                if let Instr::Load(line) | Instr::DependentLoad(line) = s.next_instr() {
                    let a = mapper.decode(line);
                    let base = salt * geometry.region_rows;
                    assert!(a.row >= base && a.row < base + geometry.region_rows);
                }
            }
        }
    }
}
