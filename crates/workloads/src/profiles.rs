//! The 28 benchmark profiles of the paper's Table 3, plus the streaming
//! accelerator agent class (GPU-like requestors) used by the scheduler-zoo
//! experiments.

/// The paper's measured characteristics for a benchmark (Table 3), kept for
/// side-by-side paper-vs-measured reporting (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Memory cycles per instruction.
    pub mcpi: f64,
    /// L2 misses per 1000 instructions.
    pub mpki: f64,
    /// Row-buffer hit rate (0..1).
    pub rb_hit: f64,
    /// Bank-level parallelism.
    pub blp: f64,
    /// Average stall time per DRAM request (processor cycles).
    pub ast_per_req: f64,
}

/// A synthetic benchmark: generation targets plus the paper's reference row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Table 3 row number (1-28).
    pub number: u8,
    /// Short benchmark name as used in the paper's figures ("mcf", "lbm").
    pub name: &'static str,
    /// Table 3 category, 3 bits: (MCPI-high, RB-hit-high, BLP-high).
    pub category: u8,
    /// Target L2 misses per 1000 instructions.
    pub mpki: f64,
    /// Target probability that a bank's next miss stays in its current row.
    pub row_hit: f64,
    /// Target miss-burst width (concurrent misses to distinct banks).
    pub blp: f64,
    /// Writebacks generated per read miss.
    pub write_fraction: f64,
    /// The paper's measured characteristics, for comparison.
    pub paper: PaperRow,
}

/// The 8 category codes (3 bits: MCPI, RB hit rate, BLP; 1 = high).
pub const CATEGORIES: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

macro_rules! bench {
    ($num:expr, $name:expr, $cat:expr, mpki: $mpki:expr, rb: $rb:expr, blp: $blp:expr,
     wf: $wf:expr, paper: ($pmcpi:expr, $pmpki:expr, $prb:expr, $pblp:expr, $past:expr)) => {
        BenchmarkProfile {
            number: $num,
            name: $name,
            category: $cat,
            mpki: $mpki,
            row_hit: $rb,
            blp: $blp,
            write_fraction: $wf,
            paper: PaperRow {
                mcpi: $pmcpi,
                mpki: $pmpki,
                rb_hit: $prb,
                blp: $pblp,
                ast_per_req: $past,
            },
        }
    };
}

/// All 28 benchmarks in Table 3 order. Generation targets (`mpki`, `row_hit`,
/// `blp`) are set to the paper's measured values; the synthetic generator
/// reproduces the *stream* characteristics, and MCPI/AST emerge from the
/// simulation.
static BENCHMARKS: [BenchmarkProfile; 28] = [
    bench!(1, "leslie3d", 7, mpki: 51.52, rb: 0.628, blp: 1.90, wf: 0.25,
        paper: (7.30, 51.52, 0.628, 1.90, 139.0)),
    bench!(2, "soplex", 7, mpki: 47.58, rb: 0.788, blp: 1.81, wf: 0.25,
        paper: (6.18, 47.58, 0.788, 1.81, 125.0)),
    bench!(3, "lbm", 7, mpki: 43.59, rb: 0.611, blp: 3.37, wf: 0.40,
        paper: (3.57, 43.59, 0.611, 3.37, 77.0)),
    bench!(4, "sphinx3", 7, mpki: 24.89, rb: 0.750, blp: 1.89, wf: 0.15,
        paper: (3.05, 24.89, 0.750, 1.89, 117.0)),
    bench!(5, "matlab", 6, mpki: 78.36, rb: 0.937, blp: 1.08, wf: 0.30,
        paper: (15.4, 78.36, 0.937, 1.08, 192.0)),
    bench!(6, "libquantum", 6, mpki: 50.00, rb: 0.984, blp: 1.10, wf: 0.30,
        paper: (9.10, 50.00, 0.984, 1.10, 181.0)),
    bench!(7, "milc", 6, mpki: 32.48, rb: 0.864, blp: 1.51, wf: 0.25,
        paper: (4.65, 32.48, 0.864, 1.51, 139.0)),
    bench!(8, "xml-parser", 6, mpki: 18.23, rb: 0.953, blp: 1.32, wf: 0.20,
        paper: (2.92, 18.23, 0.953, 1.32, 158.0)),
    bench!(9, "mcf", 5, mpki: 98.68, rb: 0.415, blp: 4.75, wf: 0.20,
        paper: (6.45, 98.68, 0.415, 4.75, 64.0)),
    bench!(10, "GemsFDTD", 5, mpki: 29.95, rb: 0.204, blp: 2.40, wf: 0.25,
        paper: (4.08, 29.95, 0.204, 2.40, 126.0)),
    bench!(11, "xalancbmk", 5, mpki: 23.52, rb: 0.598, blp: 2.27, wf: 0.15,
        paper: (2.80, 23.52, 0.598, 2.27, 113.0)),
    bench!(12, "cactusADM", 4, mpki: 11.68, rb: 0.068, blp: 1.60, wf: 0.25,
        paper: (2.78, 11.68, 0.0675, 1.60, 219.0)),
    bench!(13, "gcc", 3, mpki: 0.37, rb: 0.639, blp: 1.87, wf: 0.20,
        paper: (0.05, 0.37, 0.639, 1.87, 127.0)),
    bench!(14, "tonto", 3, mpki: 0.13, rb: 0.707, blp: 1.92, wf: 0.20,
        paper: (0.02, 0.13, 0.707, 1.92, 108.0)),
    bench!(15, "povray", 3, mpki: 0.03, rb: 0.799, blp: 1.75, wf: 0.20,
        paper: (0.00, 0.03, 0.799, 1.75, 123.0)),
    bench!(16, "h264ref", 2, mpki: 2.65, rb: 0.765, blp: 1.29, wf: 0.20,
        paper: (0.48, 2.65, 0.765, 1.29, 161.0)),
    bench!(17, "gobmk", 2, mpki: 0.60, rb: 0.611, blp: 1.46, wf: 0.20,
        paper: (0.11, 0.60, 0.611, 1.46, 162.0)),
    bench!(18, "dealII", 2, mpki: 0.41, rb: 0.903, blp: 1.21, wf: 0.20,
        paper: (0.07, 0.41, 0.903, 1.21, 133.0)),
    bench!(19, "namd", 2, mpki: 0.33, rb: 0.866, blp: 1.27, wf: 0.20,
        paper: (0.06, 0.33, 0.866, 1.27, 160.0)),
    bench!(20, "wrf", 2, mpki: 0.28, rb: 0.836, blp: 1.20, wf: 0.20,
        paper: (0.05, 0.28, 0.836, 1.20, 164.0)),
    bench!(21, "calculix", 2, mpki: 0.19, rb: 0.759, blp: 1.30, wf: 0.20,
        paper: (0.04, 0.19, 0.759, 1.30, 157.0)),
    bench!(22, "perlbench", 2, mpki: 0.13, rb: 0.754, blp: 1.69, wf: 0.20,
        paper: (0.02, 0.13, 0.754, 1.69, 128.0)),
    bench!(23, "omnetpp", 1, mpki: 22.15, rb: 0.267, blp: 3.78, wf: 0.20,
        paper: (1.96, 22.15, 0.267, 3.78, 86.0)),
    bench!(24, "bzip2", 1, mpki: 3.56, rb: 0.520, blp: 2.05, wf: 0.25,
        paper: (0.49, 3.56, 0.520, 2.05, 127.0)),
    bench!(25, "astar", 0, mpki: 9.25, rb: 0.502, blp: 1.45, wf: 0.20,
        paper: (1.82, 9.25, 0.502, 1.45, 177.0)),
    bench!(26, "hmmer", 0, mpki: 5.67, rb: 0.338, blp: 1.26, wf: 0.20,
        paper: (1.50, 5.67, 0.338, 1.26, 231.0)),
    bench!(27, "gromacs", 0, mpki: 0.68, rb: 0.582, blp: 1.04, wf: 0.20,
        paper: (0.18, 0.68, 0.582, 1.04, 220.0)),
    bench!(28, "sjeng", 0, mpki: 0.41, rb: 0.168, blp: 1.53, wf: 0.20,
        paper: (0.10, 0.41, 0.168, 1.53, 192.0)),
];

/// Profile numbers at or above this are streaming-accelerator agents, not
/// Table 3 benchmarks.
pub const ACCEL_NUMBER_BASE: u8 = 100;

/// The streaming-accelerator agent class: GPU-like requestors that are
/// bandwidth-bound rather than latency-bound — very high memory intensity,
/// high row-buffer locality (long sequential strides), and high bank-level
/// parallelism. Under row-hit-first scheduling they capture banks for long
/// streaks and starve latency-sensitive CPU threads; that interference is
/// exactly what the zoo-sweep experiments measure. Numbers start at
/// [`ACCEL_NUMBER_BASE`] so they can never collide with Table 3 rows (the
/// stream generator salts its RNG with the profile number).
///
/// The `paper` rows here are *not* from Table 3 — they restate the synthetic
/// targets so paper-vs-measured reporting stays well-formed.
static ACCELERATORS: [BenchmarkProfile; 3] = [
    // A GPU shader-core style streamer: long unit-stride vector fetches.
    bench!(101, "gpu-stream", 7, mpki: 180.00, rb: 0.92, blp: 6.00, wf: 0.30,
        paper: (20.0, 180.00, 0.92, 6.00, 60.0)),
    // Texture sampling: slightly less local, still bandwidth-hungry.
    bench!(102, "gpu-texture", 7, mpki: 120.00, rb: 0.85, blp: 4.50, wf: 0.10,
        paper: (14.0, 120.00, 0.85, 4.50, 70.0)),
    // A copy engine: reads and writes in equal measure, near-perfect rows.
    bench!(103, "dma-copy", 7, mpki: 220.00, rb: 0.96, blp: 3.00, wf: 0.50,
        paper: (24.0, 220.00, 0.96, 3.00, 55.0)),
];

/// All benchmarks, in Table 3 order (ordered by category as in the paper's
/// figures). Does *not* include the accelerator agents — paper-facing
/// experiments iterate this, and the agents are not part of Table 3.
#[must_use]
pub fn all_benchmarks() -> &'static [BenchmarkProfile] {
    &BENCHMARKS
}

/// The streaming-accelerator agent profiles.
#[must_use]
pub fn accelerators() -> &'static [BenchmarkProfile] {
    &ACCELERATORS
}

/// Looks up a benchmark or accelerator agent by its short name ("mcf",
/// "libquantum", "gpu-stream", ...).
#[must_use]
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    BENCHMARKS.iter().chain(&ACCELERATORS).find(|b| b.name == name)
}

/// Looks up a benchmark by its Table 3 row number (1-28) or an accelerator
/// agent by its number (101+).
#[must_use]
pub fn by_number(number: u8) -> Option<&'static BenchmarkProfile> {
    BENCHMARKS.iter().chain(&ACCELERATORS).find(|b| b.number == number)
}

impl BenchmarkProfile {
    /// How many miss *episodes* may be in flight concurrently. Streaming
    /// benchmarks (high memory intensity with high row-buffer locality —
    /// categories 6 and 7) issue long runs of independent accesses and keep
    /// several misses outstanding per bank, which is what lets them capture
    /// banks under row-hit-first scheduling; pointer-chasing codes (mcf,
    /// omnetpp, GemsFDTD, ...) serialize on a dependence chain, so their
    /// episodes (of `blp` parallel misses) issue strictly one at a time.
    #[must_use]
    pub fn stream_depth(&self) -> u64 {
        // Accelerator agents are not bound by an instruction window at all:
        // their request FIFOs keep dozens of misses in flight.
        if self.is_accelerator() {
            return 32;
        }
        match self.category {
            // Streaming categories issue until the instruction window fills;
            // the 128-entry window itself caps outstanding misses.
            6 => 12,
            7 => 8,
            _ if self.row_hit >= 0.70 => 3,
            _ => 1,
        }
    }

    /// Whether this profile is a streaming-accelerator agent (GPU-like
    /// requestor) rather than a Table 3 CPU benchmark.
    #[must_use]
    pub fn is_accelerator(&self) -> bool {
        self.number >= ACCEL_NUMBER_BASE
    }
}

/// Classifies measured characteristics into the paper's 3-bit category:
/// bit 2 = MCPI high (≥ 2.5), bit 1 = row-buffer hit rate high (≥ 0.60),
/// bit 0 = BLP high (≥ 1.72). Thresholds reverse-engineered from Table 3
/// (e.g. omnetpp's MCPI 1.96 is "low" while cactusADM's 2.78 is "high";
/// xalancbmk's RB 0.598 is "low" while gobmk's 0.611 is "high"; perlbench's
/// BLP 1.69 is "low" while povray's 1.75 is "high").
#[must_use]
pub fn classify(mcpi: f64, rb_hit: f64, blp: f64) -> u8 {
    (u8::from(mcpi >= 2.5) << 2) | (u8::from(rb_hit >= 0.60) << 1) | u8::from(blp >= 1.72)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_28_benchmarks_with_unique_names_and_numbers() {
        assert_eq!(all_benchmarks().len(), 28);
        for (i, a) in all_benchmarks().iter().enumerate() {
            assert_eq!(a.number as usize, i + 1, "numbers follow Table 3 order");
            for b in &all_benchmarks()[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn lookups_work() {
        assert_eq!(by_name("mcf").unwrap().number, 9);
        assert_eq!(by_number(9).unwrap().name, "mcf");
        assert!(by_name("nonexistent").is_none());
        assert!(by_number(0).is_none());
        assert!(by_number(29).is_none());
    }

    #[test]
    fn every_category_is_populated() {
        for cat in CATEGORIES {
            assert!(
                all_benchmarks().iter().any(|b| b.category == cat),
                "category {cat} must have at least one benchmark"
            );
        }
    }

    #[test]
    fn paper_categories_match_classifier() {
        // The classifier thresholds must reproduce every Table 3 category
        // from the paper's own measured values.
        for b in all_benchmarks() {
            let c = classify(b.paper.mcpi, b.paper.rb_hit, b.paper.blp);
            assert_eq!(c, b.category, "{}: classify() = {c}, Table 3 = {}", b.name, b.category);
        }
    }

    #[test]
    fn profile_targets_match_paper_rows() {
        for b in all_benchmarks() {
            assert_eq!(b.mpki, b.paper.mpki, "{}", b.name);
            assert!((b.row_hit - b.paper.rb_hit).abs() < 0.01, "{}", b.name);
            assert_eq!(b.blp, b.paper.blp, "{}", b.name);
        }
    }

    #[test]
    fn mcf_is_the_most_intensive_with_highest_blp() {
        let mcf = by_name("mcf").unwrap();
        for b in all_benchmarks() {
            assert!(b.mpki <= mcf.mpki);
            assert!(b.blp <= mcf.blp);
        }
    }

    #[test]
    fn accelerators_live_outside_the_table3_namespace() {
        assert!(!accelerators().is_empty());
        for (i, a) in accelerators().iter().enumerate() {
            assert!(a.number >= ACCEL_NUMBER_BASE, "{}: number {}", a.name, a.number);
            assert!(a.is_accelerator());
            assert!(all_benchmarks().iter().all(|b| b.name != a.name && b.number != a.number));
            for other in &accelerators()[i + 1..] {
                assert_ne!(a.name, other.name);
                assert_ne!(a.number, other.number);
            }
        }
        assert!(all_benchmarks().iter().all(|b| !b.is_accelerator()));
    }

    #[test]
    fn accelerator_lookups_and_class_shape() {
        let gpu = by_name("gpu-stream").unwrap();
        assert_eq!(by_number(gpu.number).unwrap().name, "gpu-stream");
        for a in accelerators() {
            assert_eq!(
                classify(a.paper.mcpi, a.paper.rb_hit, a.paper.blp),
                7,
                "{}: accelerators are intensive, row-local and bank-parallel",
                a.name
            );
            // Bandwidth-bound: more outstanding misses than any CPU profile.
            assert!(all_benchmarks().iter().all(|b| b.stream_depth() < a.stream_depth()));
            // More intensive than the most intensive CPU benchmark (mcf).
            assert!(a.mpki > by_name("mcf").unwrap().mpki);
        }
    }
}
