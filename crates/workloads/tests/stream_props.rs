//! Property-based tests on the synthetic stream generator: every profile,
//! at any seed, produces streams with the promised structural properties.

use parbs_cpu::{Instr, InstructionStream};
use parbs_dram::AddressMapper;
use parbs_workloads::{all_benchmarks, StreamGeometry, SyntheticStream};
use proptest::prelude::*;

fn is_load(i: &Instr) -> bool {
    matches!(i, Instr::Load(_) | Instr::DependentLoad(_))
}

fn line_of(i: &Instr) -> Option<u64> {
    match i {
        Instr::Load(l) | Instr::DependentLoad(l) | Instr::Store(l) => Some(*l),
        Instr::Compute => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_profile_any_seed_stays_in_region(
        bench_idx in 0usize..28,
        seed in any::<u64>(),
        salt in 0u64..16,
    ) {
        let bench = &all_benchmarks()[bench_idx];
        let geometry = StreamGeometry::baseline_4core();
        let mapper = AddressMapper::canonical(1, 8, 32).unwrap();
        let mut s = SyntheticStream::new(bench, geometry, seed, salt);
        let base = salt * geometry.region_rows;
        for _ in 0..20_000 {
            if let Some(line) = line_of(&s.next_instr()) {
                let a = mapper.decode(line);
                prop_assert!(
                    a.row >= base && a.row < base + geometry.region_rows,
                    "{}: row {} outside region [{}, {})",
                    bench.name, a.row, base, base + geometry.region_rows
                );
            }
        }
    }

    #[test]
    fn mpki_tracks_target_for_intensive_profiles(
        bench_idx in 0usize..28,
        seed in any::<u64>(),
    ) {
        let bench = &all_benchmarks()[bench_idx];
        // Only check profiles intense enough for tight statistics.
        prop_assume!(bench.mpki >= 5.0);
        let mut s = SyntheticStream::new(bench, StreamGeometry::baseline_4core(), seed, 0);
        let n = 300_000usize;
        let loads = (0..n).filter(|_| is_load(&s.next_instr())).count();
        let measured = loads as f64 * 1000.0 / n as f64;
        prop_assert!(
            (measured - bench.mpki).abs() / bench.mpki < 0.2,
            "{}: measured MPKI {measured:.2} vs target {:.2}",
            bench.name, bench.mpki
        );
    }

    #[test]
    fn multi_channel_geometry_covers_all_channels(seed in any::<u64>()) {
        let geometry = StreamGeometry::for_cores(16);
        let mapper = AddressMapper::canonical(geometry.channels, geometry.banks_per_channel, 32).unwrap();
        let bench = parbs_workloads::by_name("mcf").unwrap();
        let mut s = SyntheticStream::new(bench, geometry, seed, 0);
        let mut seen = vec![false; geometry.channels];
        for _ in 0..100_000 {
            if let Some(line) = line_of(&s.next_instr()) {
                seen[mapper.decode(line).channel] = true;
            }
        }
        prop_assert!(seen.iter().all(|&c| c), "mcf should touch all {} channels", geometry.channels);
    }

    #[test]
    fn pointer_chasers_fence_every_episode(seed in any::<u64>()) {
        // mcf has stream depth 1: every burst's first load is dependent.
        let bench = parbs_workloads::by_name("mcf").unwrap();
        prop_assume!(bench.stream_depth() == 1);
        let mut s = SyntheticStream::new(bench, StreamGeometry::baseline_4core(), seed, 0);
        let mut saw_fence = false;
        let mut independent_run = 0usize;
        let mut max_run = 0usize;
        for _ in 0..50_000 {
            match s.next_instr() {
                Instr::DependentLoad(_) => {
                    saw_fence = true;
                    independent_run = 0;
                }
                Instr::Load(_) => {
                    independent_run += 1;
                    max_run = max_run.max(independent_run);
                }
                _ => {}
            }
        }
        prop_assert!(saw_fence, "mcf must emit dependence fences");
        // Independent loads between fences are bounded by the burst width.
        prop_assert!(max_run <= 8, "independent run {max_run} exceeds burst bound");
    }
}

#[test]
fn streaming_profiles_keep_multiple_episodes_in_flight() {
    // libquantum (depth 12): fences are rare relative to loads.
    let bench = parbs_workloads::by_name("libquantum").unwrap();
    assert!(bench.stream_depth() > 1);
    let mut s = SyntheticStream::new(bench, StreamGeometry::baseline_4core(), 3, 0);
    let (mut fences, mut loads) = (0u32, 0u32);
    for _ in 0..200_000 {
        match s.next_instr() {
            Instr::DependentLoad(_) => fences += 1,
            Instr::Load(_) => loads += 1,
            _ => {}
        }
    }
    assert!(loads > fences * 4, "streaming: {loads} independent vs {fences} fences");
}
