//! # parbs-monitor — declarative stream monitoring over the obs event bus
//!
//! A small RTLola-style specification language of named streams over
//! [`parbs_obs::Event`]: **input** streams filter the event bus, derived
//! state streams (**map**s, **counter**s, **hold**s, sliding/tumbling
//! **window**s in cycles) aggregate it incrementally with sparse
//! O(active-keys) state, and **trigger**s raise alarms with severity and
//! message templates. Specs compile through a hand-rolled parser to a
//! typed IR; a [`Monitor`] evaluates the IR as a `parbs_obs::EventSink`,
//! so the same spec runs **online** (attached to a live simulation) or
//! **offline** (replayed over a recorded JSONL trace) with identical
//! verdicts.
//!
//! ## The language, by example
//!
//! ```text
//! # inputs filter the bus by event kind plus an optional guard
//! input enq  := enqueued when !write
//! input done := completed
//! input bus  := bus_sample
//!
//! # keyed state: maps set, counters add/sub, both evict sparsely
//! map row_of[request] := row on enq, remove on done
//! counter inflight := add 1 on enq, sub 1 on done
//!
//! # scalars and windows
//! hold last_seen := at on done init 0
//! window lat[thread] := sum latency over done in 10000
//!
//! # triggers raise alarms; {exprs} interpolate into the message
//! trigger warn "deep-queue" on bus when queued_reads > 64 message "queue at {queued_reads}"
//! ```
//!
//! Bare names resolve to the firing event's **fields first**, then to
//! 0-key streams (field shadows stream). Expressions are `Int`/`Bool`
//! typed; division by zero yields 0. Per event, updates and triggers run
//! interleaved in declaration order against pre-update guards, and
//! `remove`/`reset` arms run last — the exact semantics that let the
//! [`prelude::INVARIANTS`] spec reproduce `parbs_obs::InvariantSink`
//! verdict-for-verdict.
//!
//! ## Entry points
//!
//! - [`Spec::compile`] — parse + typecheck; errors carry `line:col`.
//! - [`Spec::monitor`] / [`Monitor`] — incremental online evaluation.
//! - [`replay_jsonl`] — offline evaluation over a `JsonlSink` trace.
//! - [`prelude`] — built-in specs (`invariants`, `qos`).

mod ast;
mod check;
mod eval;
mod fields;
mod ir;
mod lex;
mod parse;
pub mod prelude;
mod replay;

use std::sync::Arc;

pub use ast::Severity;
pub use eval::{Alarm, Monitor};
pub use replay::{replay_jsonl, ReplayError};

/// A compile error, positioned at a 1-based `line:col` in the spec source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    line: u32,
    col: u32,
    message: String,
}

impl SpecError {
    pub(crate) fn at(line: u32, col: u32, message: impl Into<String>) -> SpecError {
        SpecError { line, col, message: message.into() }
    }

    /// 1-based source line of the error.
    #[must_use]
    pub fn line(&self) -> u32 {
        self.line
    }

    /// 1-based source column of the error.
    #[must_use]
    pub fn col(&self) -> u32 {
        self.col
    }

    /// The description, without the position prefix.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for SpecError {}

/// A compiled monitor spec.
///
/// Cheap to clone (`Arc`-backed) and `Send + Sync`, so one compiled spec
/// can fan out to per-channel [`Monitor`]s across parallel sweep workers.
#[derive(Debug, Clone)]
pub struct Spec {
    ir: Arc<ir::SpecIr>,
}

impl Spec {
    /// Parses and type-checks `src`.
    ///
    /// # Errors
    ///
    /// Returns the first lexical, syntactic, resolution or type error,
    /// positioned at its 1-based `line:col`.
    pub fn compile(src: &str) -> Result<Spec, SpecError> {
        Ok(Spec { ir: Arc::new(check::compile(src)?) })
    }

    /// Creates a fresh online evaluator for this spec.
    #[must_use]
    pub fn monitor(&self) -> Monitor {
        Monitor::new(self)
    }

    /// Non-fatal observations from compilation (unused streams, very
    /// large sliding windows, trigger-free specs).
    #[must_use]
    pub fn lints(&self) -> &[String] {
        &self.ir.lints
    }

    /// Declared triggers as `(name, severity)`, in declaration order.
    #[must_use]
    pub fn triggers(&self) -> Vec<(String, Severity)> {
        self.ir.triggers.iter().map(|t| (t.name.clone(), t.severity)).collect()
    }

    /// Declared state streams rendered one per line, for `check-spec`
    /// output: `name[arity] : ty (shape)`.
    #[must_use]
    pub fn streams(&self) -> Vec<String> {
        self.ir
            .states
            .iter()
            .map(|s| {
                let shape = match s.kind {
                    ir::StateKind::Table { .. } => "table".to_owned(),
                    ir::StateKind::Sliding { len } => format!("sliding window, {len} cycles"),
                    ir::StateKind::Tumbling { len } => format!("tumbling window, {len} cycles"),
                };
                format!("{}[{} key(s)] : {} ({shape})", s.name, s.arity, s.ty.name())
            })
            .collect()
    }

    /// One-line shape description for `check-spec` output.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} input(s), {} state stream(s), {} trigger(s)",
            self.ir.inputs.len(),
            self.ir.states.len(),
            self.ir.triggers.len()
        )
    }

    pub(crate) fn ir(&self) -> &ir::SpecIr {
        &self.ir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_obs::{Event, EventSink};

    fn spec(src: &str) -> Spec {
        Spec::compile(src).expect("spec compiles")
    }

    fn bus(at: u64, reads: u32, writes: u32) -> Event {
        Event::BusSample { at, busy_banks: 0, queued_reads: reads, queued_writes: writes }
    }

    #[test]
    fn spec_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Spec>();
    }

    #[test]
    fn triggers_render_message_templates() {
        let s = spec(
            "input bus := bus_sample\n\
             trigger warn \"deep\" on bus when queued_reads > 2 \
             message \"reads={queued_reads} writes={queued_writes} deep={queued_reads > 2}\"",
        );
        let mut m = s.monitor();
        m.record(&bus(5, 1, 0));
        m.record(&bus(6, 7, 3));
        assert_eq!(m.events, 2);
        assert_eq!(m.alarms().len(), 1);
        let alarm = &m.alarms()[0];
        assert_eq!(alarm.message, "reads=7 writes=3 deep=true");
        assert_eq!(alarm.at, 6);
        assert_eq!(alarm.severity, Severity::Warn);
        assert!(m.ok(), "warnings do not fail the verdict");
        assert_eq!(m.trigger_counts(), vec![("deep", Severity::Warn, 1)]);
    }

    #[test]
    fn counters_maps_and_removals_follow_two_phase_order() {
        // On `done`, the sub arm reads row_of BEFORE its removal purges it.
        let s = spec(
            "input enq := enqueued when !write\n\
             input done := completed\n\
             map row_of[request] := row on enq, remove on done\n\
             counter per_row[row_of[request]] := add 1 on enq, sub 1 on done\n\
             trigger error \"lingering\" on done when per_row[row_of[request]] > 0 message \"x\"",
        );
        let mut m = s.monitor();
        let enq = |at, request, row| Event::Enqueued {
            at,
            request,
            thread: 0,
            write: false,
            rank: 0,
            bank: 0,
            row,
        };
        let done = |at, request| Event::Completed {
            at,
            request,
            thread: 0,
            write: false,
            arrival: 0,
            finish: at,
        };
        m.record(&enq(0, 1, 9));
        m.record(&enq(1, 2, 9));
        m.record(&done(2, 1));
        // per_row[9] was 2, the sub arm (phase 1) dropped it to 1 before the
        // trigger read it, and row_of[1] was still alive for the keying.
        assert_eq!(m.alarms().len(), 1);
        m.record(&done(3, 2));
        assert_eq!(m.alarms().len(), 1, "second completion empties the row");
    }

    #[test]
    fn sliding_and_tumbling_windows_age_out() {
        let s = spec(
            "input bus := bus_sample\n\
             window slide := sum queued_reads over bus in 10\n\
             window tumble := sum queued_reads over bus in 10 tumbling\n\
             trigger warn \"s\" on bus when slide > 10 message \"{slide}\"\n\
             trigger warn \"t\" on bus when tumble > 10 message \"{tumble}\"",
        );
        let mut m = s.monitor();
        m.record(&bus(1, 8, 0)); // slide 8, tumble 8 (bucket 0)
        m.record(&bus(9, 4, 0)); // slide 12, tumble 12 -> both fire
        m.record(&bus(12, 1, 0)); // slide: entry@1 aged out -> 5; tumble: bucket 1 -> 1
        let fired: Vec<(&str, u64)> = m.alarms().iter().map(|a| (a.name.as_str(), a.at)).collect();
        assert_eq!(fired, vec![("s", 9), ("t", 9)]);
        let slide_msgs: Vec<&str> = m.alarms().iter().map(|a| a.message.as_str()).collect();
        assert_eq!(slide_msgs, vec!["12", "12"]);
    }

    #[test]
    fn guards_see_pre_update_state() {
        // The guard compares against the hold's value from BEFORE this
        // event's own update arm runs.
        let s = spec(
            "input bus := bus_sample when queued_reads > high\n\
             hold high := queued_reads on bus init 0\n\
             trigger warn \"new-high\" on bus when true message \"{queued_reads}\"",
        );
        let mut m = s.monitor();
        m.record(&bus(0, 5, 0)); // 5 > 0: fires, high := 5
        m.record(&bus(1, 3, 0)); // 3 > 5: no
        m.record(&bus(2, 9, 0)); // 9 > 5: fires
        let highs: Vec<&str> = m.alarms().iter().map(|a| a.message.as_str()).collect();
        assert_eq!(highs, vec!["5", "9"]);
    }

    #[test]
    fn size_counts_live_entries() {
        let s = spec(
            "input enq := enqueued\n\
             input done := completed\n\
             map live[request] := 1 on enq, remove on done\n\
             trigger warn \"depth\" on enq when size(live) >= 2 message \"{size(live)}\"",
        );
        let mut m = s.monitor();
        let enq = |at, request| Event::Enqueued {
            at,
            request,
            thread: 0,
            write: false,
            rank: 0,
            bank: 0,
            row: 0,
        };
        m.record(&enq(0, 1));
        m.record(&enq(1, 2));
        assert_eq!(m.alarms().len(), 1);
        assert_eq!(m.alarms()[0].message, "2");
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let s = spec(
            "input bus := bus_sample\n\
             trigger warn \"d\" on bus when queued_reads / queued_writes == 0 && queued_reads % queued_writes == 0 message \"x\"",
        );
        let mut m = s.monitor();
        m.record(&bus(0, 5, 0));
        assert_eq!(m.alarms().len(), 1);
    }
}
