//! Name resolution and type checking: [`ADecl`] list → [`SpecIr`].
//!
//! Two passes. Pass 1 registers every stream name (inputs and states share
//! one namespace) and resolves event kinds. Pass 2 walks declarations in
//! order, resolving expressions against the event kind of the input each
//! arm fires on — a bare name resolves to an event **field first**, then to
//! a 0-key state stream (field shadows state), so `cap` means the payload
//! field inside a `batch_formed` arm and the hold elsewhere.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::ast::{ADecl, AExpr, AInit, BinOp, Sp, UnOp};
use crate::fields::{self, EventKind, Ty, ALL_KINDS};
use crate::ir::{
    Action, Expr, InputDef, Part, Removal, SpecIr, StateDef, StateKind, Step, TriggerDef,
};
use crate::lex::lex;
use crate::parse::Parser;
use crate::SpecError;

/// Compiles spec source to IR.
pub(crate) fn compile(src: &str) -> Result<SpecIr, SpecError> {
    let decls = Parser::new(lex(src, 1)?).spec()?;
    Checker::default().run(decls)
}

/// Pass-1 metadata for one state stream; `ty` stays `None` for a hold with
/// no `init` until its own declaration is checked.
struct StateMeta {
    name: String,
    arity: usize,
    ty: Option<Ty>,
    kind: StateKind,
    /// True for maps and counters (the only `size()`-able streams).
    sizeable: bool,
    len_lint: Option<u64>,
}

#[derive(Default)]
struct Checker {
    inputs: Vec<InputDef>,
    input_names: HashMap<String, usize>,
    states: Vec<StateMeta>,
    state_names: HashMap<String, usize>,
    steps: Vec<Step>,
    removals: Vec<Removal>,
    triggers: Vec<TriggerDef>,
    read_states: HashSet<usize>,
    used_inputs: HashSet<usize>,
}

fn err(line: u32, col: u32, message: impl Into<String>) -> SpecError {
    SpecError::at(line, col, message)
}

impl Checker {
    fn run(mut self, decls: Vec<ADecl>) -> Result<SpecIr, SpecError> {
        self.declare(&decls)?;
        for decl in &decls {
            self.resolve_decl(decl)?;
        }
        let lints = self.lints();
        let states = self
            .states
            .into_iter()
            .map(|m| StateDef {
                name: m.name,
                arity: m.arity,
                ty: m.ty.unwrap_or(Ty::Int),
                kind: m.kind,
            })
            .collect();
        Ok(SpecIr {
            inputs: self.inputs,
            states,
            steps: self.steps,
            removals: self.removals,
            triggers: self.triggers,
            lints,
        })
    }

    /// Pass 1: register every name; resolve event kinds and window shapes.
    fn declare(&mut self, decls: &[ADecl]) -> Result<(), SpecError> {
        for decl in decls {
            match decl {
                ADecl::Input { name, kind, .. } => {
                    self.fresh(name)?;
                    let Some(kind_id) = EventKind::parse(&kind.node) else {
                        let known: Vec<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
                        return Err(err(
                            kind.line,
                            kind.col,
                            format!(
                                "unknown event kind '{}' (expected one of {})",
                                kind.node,
                                known.join(", ")
                            ),
                        ));
                    };
                    self.input_names.insert(name.node.clone(), self.inputs.len());
                    self.inputs.push(InputDef {
                        name: name.node.clone(),
                        kind: kind_id,
                        guard: None,
                    });
                }
                ADecl::Map { name, keys, .. } => {
                    self.add_state(
                        name,
                        keys.len(),
                        Some(Ty::Int),
                        StateKind::Table { default: 0 },
                        true,
                        None,
                    )?;
                }
                ADecl::Counter { name, keys, .. } => {
                    self.add_state(
                        name,
                        keys.len(),
                        Some(Ty::Int),
                        StateKind::Table { default: 0 },
                        true,
                        None,
                    )?;
                }
                ADecl::Hold { name, init, .. } => {
                    let (ty, default) = match init.as_ref().map(|i| i.node) {
                        Some(AInit::Int(n)) => (Some(Ty::Int), n),
                        Some(AInit::Bool(b)) => (Some(Ty::Bool), i64::from(b)),
                        None => (None, 0),
                    };
                    self.add_state(name, 0, ty, StateKind::Table { default }, false, None)?;
                }
                ADecl::Window { name, keys, len, tumbling, .. } => {
                    if len.node <= 0 {
                        return Err(err(
                            len.line,
                            len.col,
                            format!("window '{}' length must be positive", name.node),
                        ));
                    }
                    let cycles = u64::try_from(len.node).expect("length was checked positive");
                    let kind = if *tumbling {
                        StateKind::Tumbling { len: cycles }
                    } else {
                        StateKind::Sliding { len: cycles }
                    };
                    self.add_state(name, keys.len(), Some(Ty::Int), kind, false, Some(cycles))?;
                }
                ADecl::Trigger { .. } => {}
            }
        }
        Ok(())
    }

    fn fresh(&mut self, name: &Sp<String>) -> Result<(), SpecError> {
        if self.input_names.contains_key(&name.node) || self.state_names.contains_key(&name.node) {
            return Err(err(name.line, name.col, format!("duplicate stream name '{}'", name.node)));
        }
        Ok(())
    }

    fn add_state(
        &mut self,
        name: &Sp<String>,
        arity: usize,
        ty: Option<Ty>,
        kind: StateKind,
        sizeable: bool,
        len_lint: Option<u64>,
    ) -> Result<(), SpecError> {
        self.fresh(name)?;
        self.state_names.insert(name.node.clone(), self.states.len());
        self.states.push(StateMeta {
            name: name.node.clone(),
            arity,
            ty,
            kind,
            sizeable,
            len_lint,
        });
        Ok(())
    }

    /// Resolves an `on <input>` target, marking the input used.
    fn input_idx(&mut self, name: &Sp<String>) -> Result<usize, SpecError> {
        if let Some(&i) = self.input_names.get(&name.node) {
            self.used_inputs.insert(i);
            return Ok(i);
        }
        if self.state_names.contains_key(&name.node) {
            return Err(err(
                name.line,
                name.col,
                format!("'{}' is not an input stream", name.node),
            ));
        }
        Err(err(name.line, name.col, format!("unknown input '{}'", name.node)))
    }

    /// Pass 2: resolve one declaration's expressions and emit IR.
    fn resolve_decl(&mut self, decl: &ADecl) -> Result<(), SpecError> {
        match decl {
            ADecl::Input { name, guard, .. } => {
                if let Some(g) = guard {
                    let idx = self.input_names[&name.node];
                    let kind = self.inputs[idx].kind;
                    let (ge, ty) = self.resolve(g, kind)?;
                    if ty != Ty::Bool {
                        return Err(err(
                            g.line,
                            g.col,
                            format!("input guard must be Bool, found {}", ty.name()),
                        ));
                    }
                    self.inputs[idx].guard = Some(ge);
                }
            }
            ADecl::Map { name, keys, arms, removes } => {
                let state = self.state_names[&name.node];
                for arm in arms {
                    let input = self.input_idx(&arm.input)?;
                    let kind = self.inputs[input].kind;
                    let rkeys = self.resolve_keys(keys, kind)?;
                    let (value, ty) = self.resolve(&arm.value, kind)?;
                    if ty != Ty::Int {
                        return Err(err(
                            arm.value.line,
                            arm.value.col,
                            format!("map value must be Int, found {}", ty.name()),
                        ));
                    }
                    self.steps
                        .push(Step { input, action: Action::Set { state, keys: rkeys, value } });
                }
                for target in removes {
                    let input = self.input_idx(target)?;
                    let kind = self.inputs[input].kind;
                    let rkeys = self.resolve_keys(keys, kind)?;
                    self.removals.push(Removal::Entry { input, state, keys: rkeys });
                }
            }
            ADecl::Counter { name, keys, arms, resets } => {
                let state = self.state_names[&name.node];
                for arm in arms {
                    let input = self.input_idx(&arm.input)?;
                    let kind = self.inputs[input].kind;
                    let rkeys = self.resolve_keys(keys, kind)?;
                    let (value, ty) = self.resolve(&arm.value, kind)?;
                    if ty != Ty::Int {
                        return Err(err(
                            arm.value.line,
                            arm.value.col,
                            format!("counter delta must be Int, found {}", ty.name()),
                        ));
                    }
                    self.steps.push(Step {
                        input,
                        action: Action::Add { state, keys: rkeys, value, neg: arm.neg },
                    });
                }
                for target in resets {
                    let input = self.input_idx(target)?;
                    self.removals.push(Removal::Clear { input, state });
                }
            }
            ADecl::Hold { name, arms, .. } => {
                let state = self.state_names[&name.node];
                for arm in arms {
                    let input = self.input_idx(&arm.input)?;
                    let kind = self.inputs[input].kind;
                    let (value, ty) = self.resolve(&arm.value, kind)?;
                    match self.states[state].ty {
                        None => self.states[state].ty = Some(ty),
                        Some(expected) if expected != ty => {
                            return Err(err(
                                arm.value.line,
                                arm.value.col,
                                format!(
                                    "hold '{}' is {}, found {}",
                                    name.node,
                                    expected.name(),
                                    ty.name()
                                ),
                            ));
                        }
                        Some(_) => {}
                    }
                    self.steps.push(Step {
                        input,
                        action: Action::Set { state, keys: Vec::new(), value },
                    });
                }
            }
            ADecl::Window { name, keys, sum, input, .. } => {
                let state = self.state_names[&name.node];
                let input = self.input_idx(input)?;
                let kind = self.inputs[input].kind;
                let rkeys = self.resolve_keys(keys, kind)?;
                let value = match sum {
                    None => Expr::Int(1),
                    Some(e) => {
                        let (ve, ty) = self.resolve(e, kind)?;
                        if ty != Ty::Int {
                            return Err(err(
                                e.line,
                                e.col,
                                format!("window sum must be Int, found {}", ty.name()),
                            ));
                        }
                        ve
                    }
                };
                self.steps.push(Step { input, action: Action::Push { state, keys: rkeys, value } });
            }
            ADecl::Trigger { severity, name, input, cond, message } => {
                let input = self.input_idx(input)?;
                let kind = self.inputs[input].kind;
                let (ce, ty) = self.resolve(cond, kind)?;
                if ty != Ty::Bool {
                    return Err(err(
                        cond.line,
                        cond.col,
                        format!("trigger condition must be Bool, found {}", ty.name()),
                    ));
                }
                let parts = match message {
                    Some(template) => self.template(template, kind)?,
                    None => vec![Part::Lit(name.node.clone())],
                };
                let trigger = self.triggers.len();
                self.triggers.push(TriggerDef {
                    severity: *severity,
                    name: name.node.clone(),
                    cond: ce,
                    message: parts,
                });
                self.steps.push(Step { input, action: Action::Fire { trigger } });
            }
        }
        Ok(())
    }

    fn resolve_keys(
        &mut self,
        keys: &[Sp<AExpr>],
        kind: EventKind,
    ) -> Result<Vec<Expr>, SpecError> {
        keys.iter()
            .map(|k| {
                let (ke, ty) = self.resolve(k, kind)?;
                if ty != Ty::Int {
                    return Err(err(
                        k.line,
                        k.col,
                        format!("stream keys must be Int, found {}", ty.name()),
                    ));
                }
                Ok(ke)
            })
            .collect()
    }

    #[allow(clippy::too_many_lines)]
    fn resolve(&mut self, e: &Sp<AExpr>, kind: EventKind) -> Result<(Expr, Ty), SpecError> {
        match &e.node {
            AExpr::Int(n) => Ok((Expr::Int(*n), Ty::Int)),
            AExpr::Bool(b) => Ok((Expr::Bool(*b), Ty::Bool)),
            AExpr::Name(n) => {
                if let Some((f, ty)) = fields::lookup(kind, n) {
                    return Ok((Expr::Field(f), ty));
                }
                if let Some(&si) = self.state_names.get(n) {
                    let (arity, ty) = (self.states[si].arity, self.states[si].ty);
                    if arity != 0 {
                        return Err(err(e.line, e.col, format!("'{n}' expects {arity} key(s)")));
                    }
                    let Some(ty) = ty else {
                        return Err(err(
                            e.line,
                            e.col,
                            format!(
                                "hold '{n}' is read before its type is known (declare it \
                                 earlier or give it an 'init')"
                            ),
                        ));
                    };
                    self.read_states.insert(si);
                    return Ok((Expr::Read { state: si, keys: Vec::new() }, ty));
                }
                if self.input_names.contains_key(n) {
                    return Err(err(
                        e.line,
                        e.col,
                        format!("'{n}' is an input stream, not a value"),
                    ));
                }
                Err(err(
                    e.line,
                    e.col,
                    format!("unknown name '{n}' on event kind '{}'", kind.name()),
                ))
            }
            AExpr::Index(n, keys) => {
                let Some(&si) = self.state_names.get(n) else {
                    if fields::lookup(kind, n).is_some() {
                        return Err(err(
                            e.line,
                            e.col,
                            format!("'{n}' is an event field, not a keyed stream"),
                        ));
                    }
                    return Err(err(e.line, e.col, format!("unknown stream '{n}'")));
                };
                let (arity, ty) = (self.states[si].arity, self.states[si].ty);
                if arity != keys.len() {
                    return Err(err(
                        e.line,
                        e.col,
                        format!("'{n}' expects {arity} key(s), got {}", keys.len()),
                    ));
                }
                self.read_states.insert(si);
                let rkeys = self.resolve_keys(keys, kind)?;
                Ok((Expr::Read { state: si, keys: rkeys }, ty.unwrap_or(Ty::Int)))
            }
            AExpr::Size(name) => {
                let Some(&si) = self.state_names.get(&name.node) else {
                    return Err(err(
                        name.line,
                        name.col,
                        format!("unknown stream '{}'", name.node),
                    ));
                };
                if !self.states[si].sizeable || self.states[si].arity == 0 {
                    return Err(err(
                        name.line,
                        name.col,
                        format!(
                            "size() expects a keyed map or counter, '{}' is not one",
                            name.node
                        ),
                    ));
                }
                self.read_states.insert(si);
                Ok((Expr::Size(si), Ty::Int))
            }
            AExpr::Un(op, inner) => {
                let (ie, ty) = self.resolve(inner, kind)?;
                match op {
                    UnOp::Not if ty != Ty::Bool => Err(err(
                        e.line,
                        e.col,
                        format!("'!' expects a Bool operand, found {}", ty.name()),
                    )),
                    UnOp::Neg if ty != Ty::Int => Err(err(
                        e.line,
                        e.col,
                        format!("unary '-' expects an Int operand, found {}", ty.name()),
                    )),
                    _ => Ok((Expr::Un(*op, Box::new(ie)), ty)),
                }
            }
            AExpr::Bin(op, lhs, rhs) => {
                let (le, lty) = self.resolve(lhs, kind)?;
                let (re, rty) = self.resolve(rhs, kind)?;
                let expr = Expr::Bin(*op, Box::new(le), Box::new(re));
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        if lty != Ty::Int || rty != Ty::Int {
                            let bad = if lty == Ty::Int { rty } else { lty };
                            return Err(err(
                                e.line,
                                e.col,
                                format!(
                                    "'{}' expects Int operands, found {}",
                                    op.glyph(),
                                    bad.name()
                                ),
                            ));
                        }
                        Ok((expr, Ty::Int))
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if lty != Ty::Int || rty != Ty::Int {
                            let bad = if lty == Ty::Int { rty } else { lty };
                            return Err(err(
                                e.line,
                                e.col,
                                format!(
                                    "'{}' expects Int operands, found {}",
                                    op.glyph(),
                                    bad.name()
                                ),
                            ));
                        }
                        Ok((expr, Ty::Bool))
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lty != rty {
                            return Err(err(
                                e.line,
                                e.col,
                                format!("cannot compare {} with {}", lty.name(), rty.name()),
                            ));
                        }
                        Ok((expr, Ty::Bool))
                    }
                    BinOp::And | BinOp::Or => {
                        if lty != Ty::Bool || rty != Ty::Bool {
                            let bad = if lty == Ty::Bool { rty } else { lty };
                            return Err(err(
                                e.line,
                                e.col,
                                format!(
                                    "'{}' expects Bool operands, found {}",
                                    op.glyph(),
                                    bad.name()
                                ),
                            ));
                        }
                        Ok((expr, Ty::Bool))
                    }
                }
            }
        }
    }

    /// Splits a message template into literal and `{expr}` parts; hole
    /// errors are re-reported at the template string's position.
    fn template(&mut self, s: &Sp<String>, kind: EventKind) -> Result<Vec<Part>, SpecError> {
        let wrap = |inner: SpecError| {
            err(s.line, s.col, format!("in message template: {}", inner.message()))
        };
        let mut parts = Vec::new();
        let mut lit = String::new();
        let mut chars = s.node.chars();
        while let Some(c) = chars.next() {
            if c != '{' {
                lit.push(c);
                continue;
            }
            let mut hole = String::new();
            loop {
                match chars.next() {
                    None => return Err(err(s.line, s.col, "unterminated '{' in message template")),
                    Some('}') => break,
                    Some(c) => hole.push(c),
                }
            }
            if !lit.is_empty() {
                parts.push(Part::Lit(std::mem::take(&mut lit)));
            }
            let aexpr = (|| {
                let mut parser = Parser::new(lex(&hole, 1)?);
                let aexpr = parser.expr()?;
                if !parser.at_eof() {
                    return Err(SpecError::at(1, 1, "trailing tokens after expression"));
                }
                Ok(aexpr)
            })()
            .map_err(wrap)?;
            let (expr, ty) = self.resolve(&aexpr, kind).map_err(wrap)?;
            parts.push(Part::Expr(expr, ty));
        }
        if !lit.is_empty() {
            parts.push(Part::Lit(lit));
        }
        Ok(parts)
    }

    /// Non-fatal observations for `check-spec`.
    fn lints(&self) -> Vec<String> {
        let mut lints = Vec::new();
        if self.triggers.is_empty() {
            lints.push("spec declares no triggers; it can never raise an alarm".to_owned());
        }
        for (i, input) in self.inputs.iter().enumerate() {
            if !self.used_inputs.contains(&i) {
                lints.push(format!("input '{}' is never used", input.name));
            }
        }
        for (i, state) in self.states.iter().enumerate() {
            if !self.read_states.contains(&i) {
                lints.push(format!("stream '{}' is never read", state.name));
            }
            if let Some(len) = state.len_lint {
                if len >= 1_000_000 && matches!(state.kind, StateKind::Sliding { .. }) {
                    lints.push(format!(
                        "window '{}' spans {len} cycles; sliding windows buffer every \
                         event in the span, consider a tumbling window",
                        state.name
                    ));
                }
            }
        }
        lints
    }
}
