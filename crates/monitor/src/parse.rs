//! Recursive-descent parser: token stream → untyped [`ADecl`] list.
//!
//! Expressions use Pratt-style precedence climbing:
//! `||` < `&&` < comparisons < `+ -` < `* / %` < unary `! -`.

use crate::ast::{ACounterArm, ADecl, AExpr, AInit, AValueArm, BinOp, Severity, Sp, UnOp};
use crate::lex::{Tok, Token};
use crate::SpecError;

pub(crate) struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(toks: Vec<Token>) -> Parser {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.advance();
            true
        } else {
            false
        }
    }

    fn err_here(&self, message: impl Into<String>) -> SpecError {
        let t = self.peek();
        SpecError::at(t.line, t.col, message)
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Token, SpecError> {
        if &self.peek().tok == tok {
            Ok(self.advance())
        } else {
            Err(self.err_here(format!("expected {what}, found {}", self.peek().tok.describe())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Sp<String>, SpecError> {
        let t = self.peek().clone();
        if let Tok::Ident(name) = t.tok {
            self.advance();
            Ok(Sp::new(name, t.line, t.col))
        } else {
            Err(self.err_here(format!("expected {what}, found {}", t.tok.describe())))
        }
    }

    fn string(&mut self, what: &str) -> Result<Sp<String>, SpecError> {
        let t = self.peek().clone();
        if let Tok::Str(s) = t.tok {
            self.advance();
            Ok(Sp::new(s, t.line, t.col))
        } else {
            Err(self.err_here(format!("expected {what}, found {}", t.tok.describe())))
        }
    }

    /// Parses the whole token stream into declarations.
    pub(crate) fn spec(&mut self) -> Result<Vec<ADecl>, SpecError> {
        let mut decls = Vec::new();
        loop {
            match self.peek().tok {
                Tok::Eof => return Ok(decls),
                Tok::KwInput => decls.push(self.input()?),
                Tok::KwMap => decls.push(self.map()?),
                Tok::KwCounter => decls.push(self.counter()?),
                Tok::KwHold => decls.push(self.hold()?),
                Tok::KwWindow => decls.push(self.window()?),
                Tok::KwTrigger => decls.push(self.trigger()?),
                _ => {
                    return Err(self.err_here(format!(
                        "expected a declaration (input, map, counter, hold, window or trigger), \
                         found {}",
                        self.peek().tok.describe()
                    )))
                }
            }
        }
    }

    fn input(&mut self) -> Result<ADecl, SpecError> {
        self.advance();
        let name = self.ident("stream name after 'input'")?;
        self.expect(&Tok::Assign, "':=' after stream name")?;
        let kind = self.ident("an event kind")?;
        let guard = if self.eat(&Tok::KwWhen) { Some(self.expr()?) } else { None };
        Ok(ADecl::Input { name, kind, guard })
    }

    /// Parses `[k1, k2]` after a state name; empty when absent.
    fn key_list(&mut self) -> Result<Vec<Sp<AExpr>>, SpecError> {
        let mut keys = Vec::new();
        if self.eat(&Tok::LBracket) {
            loop {
                keys.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBracket, "']' after key list")?;
        }
        Ok(keys)
    }

    fn on_input(&mut self) -> Result<Sp<String>, SpecError> {
        self.expect(&Tok::KwOn, "'on'")?;
        self.ident("an input stream name after 'on'")
    }

    fn map(&mut self) -> Result<ADecl, SpecError> {
        self.advance();
        let name = self.ident("stream name after 'map'")?;
        let keys = self.key_list()?;
        self.expect(&Tok::Assign, "':=' after stream name")?;
        let mut arms = Vec::new();
        let mut removes = Vec::new();
        loop {
            if self.eat(&Tok::KwRemove) {
                removes.push(self.on_input()?);
            } else {
                let value = self.expr()?;
                let input = self.on_input()?;
                arms.push(AValueArm { value, input });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(ADecl::Map { name, keys, arms, removes })
    }

    fn counter(&mut self) -> Result<ADecl, SpecError> {
        self.advance();
        let name = self.ident("stream name after 'counter'")?;
        let keys = self.key_list()?;
        self.expect(&Tok::Assign, "':=' after stream name")?;
        let mut arms = Vec::new();
        let mut resets = Vec::new();
        loop {
            if self.eat(&Tok::KwReset) {
                resets.push(self.on_input()?);
            } else {
                let neg = match &self.peek().tok {
                    Tok::KwAdd => false,
                    Tok::KwSub => true,
                    other => {
                        return Err(self.err_here(format!(
                            "expected 'add', 'sub' or 'reset' in counter arm, found {}",
                            other.describe()
                        )))
                    }
                };
                self.advance();
                let value = self.expr()?;
                let input = self.on_input()?;
                arms.push(ACounterArm { neg, value, input });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(ADecl::Counter { name, keys, arms, resets })
    }

    fn hold(&mut self) -> Result<ADecl, SpecError> {
        self.advance();
        let name = self.ident("stream name after 'hold'")?;
        self.expect(&Tok::Assign, "':=' after stream name")?;
        let mut arms = Vec::new();
        loop {
            let value = self.expr()?;
            let input = self.on_input()?;
            arms.push(AValueArm { value, input });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let init = if self.eat(&Tok::KwInit) {
            let (line, col) = (self.peek().line, self.peek().col);
            let lit = match self.peek().tok.clone() {
                Tok::Int(n) => {
                    self.advance();
                    AInit::Int(n)
                }
                Tok::Minus => {
                    self.advance();
                    let Tok::Int(n) = self.peek().tok.clone() else {
                        return Err(self.err_here(format!(
                            "expected an integer after '-', found {}",
                            self.peek().tok.describe()
                        )));
                    };
                    self.advance();
                    AInit::Int(-n)
                }
                Tok::True => {
                    self.advance();
                    AInit::Bool(true)
                }
                Tok::False => {
                    self.advance();
                    AInit::Bool(false)
                }
                other => {
                    return Err(self.err_here(format!(
                        "expected a literal after 'init', found {}",
                        other.describe()
                    )))
                }
            };
            Some(Sp::new(lit, line, col))
        } else {
            None
        };
        Ok(ADecl::Hold { name, arms, init })
    }

    fn window(&mut self) -> Result<ADecl, SpecError> {
        self.advance();
        let name = self.ident("stream name after 'window'")?;
        let keys = self.key_list()?;
        self.expect(&Tok::Assign, "':=' after stream name")?;
        let sum = match &self.peek().tok {
            Tok::KwCount => {
                self.advance();
                None
            }
            Tok::KwSum => {
                self.advance();
                Some(self.expr()?)
            }
            other => {
                return Err(self.err_here(format!(
                    "expected 'count' or 'sum' in window declaration, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(&Tok::KwOver, "'over'")?;
        let input = self.ident("an input stream name after 'over'")?;
        self.expect(&Tok::KwIn, "'in'")?;
        let t = self.peek().clone();
        let Tok::Int(n) = t.tok else {
            return Err(self.err_here(format!(
                "expected a window length in cycles, found {}",
                t.tok.describe()
            )));
        };
        self.advance();
        let len = Sp::new(n, t.line, t.col);
        let tumbling = self.eat(&Tok::KwTumbling);
        Ok(ADecl::Window { name, keys, sum, input, len, tumbling })
    }

    fn trigger(&mut self) -> Result<ADecl, SpecError> {
        self.advance();
        let severity = match &self.peek().tok {
            Tok::KwWarn => Severity::Warn,
            Tok::KwError => Severity::Error,
            other => {
                return Err(self.err_here(format!(
                    "expected 'warn' or 'error' after 'trigger', found {}",
                    other.describe()
                )))
            }
        };
        self.advance();
        let name = self.string("a quoted trigger name")?;
        let input = self.on_input()?;
        self.expect(&Tok::KwWhen, "'when'")?;
        let cond = self.expr()?;
        let message = if self.eat(&Tok::KwMessage) {
            Some(self.string("a quoted message template")?)
        } else {
            None
        };
        Ok(ADecl::Trigger { severity, name, input, cond, message })
    }

    /// Parses one expression (entry point also used for message-template holes).
    pub(crate) fn expr(&mut self) -> Result<Sp<AExpr>, SpecError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_bp: u8) -> Result<Sp<AExpr>, SpecError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match &self.peek().tok {
                Tok::OrOr => (BinOp::Or, 1),
                Tok::AndAnd => (BinOp::And, 2),
                Tok::Lt => (BinOp::Lt, 3),
                Tok::Le => (BinOp::Le, 3),
                Tok::Gt => (BinOp::Gt, 3),
                Tok::Ge => (BinOp::Ge, 3),
                Tok::EqEq => (BinOp::Eq, 3),
                Tok::Ne => (BinOp::Ne, 3),
                Tok::Plus => (BinOp::Add, 4),
                Tok::Minus => (BinOp::Sub, 4),
                Tok::Star => (BinOp::Mul, 5),
                Tok::Slash => (BinOp::Div, 5),
                Tok::Percent => (BinOp::Mod, 5),
                _ => return Ok(lhs),
            };
            let (bin, bp) = op;
            if bp < min_bp {
                return Ok(lhs);
            }
            self.advance();
            let rhs = self.bin_expr(bp + 1)?;
            let (line, col) = (lhs.line, lhs.col);
            lhs = Sp::new(AExpr::Bin(bin, Box::new(lhs), Box::new(rhs)), line, col);
        }
    }

    fn unary(&mut self) -> Result<Sp<AExpr>, SpecError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Bang => {
                self.advance();
                let inner = self.unary()?;
                Ok(Sp::new(AExpr::Un(UnOp::Not, Box::new(inner)), t.line, t.col))
            }
            Tok::Minus => {
                self.advance();
                let inner = self.unary()?;
                Ok(Sp::new(AExpr::Un(UnOp::Neg, Box::new(inner)), t.line, t.col))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Sp<AExpr>, SpecError> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Int(n) => {
                self.advance();
                Ok(Sp::new(AExpr::Int(n), t.line, t.col))
            }
            Tok::True => {
                self.advance();
                Ok(Sp::new(AExpr::Bool(true), t.line, t.col))
            }
            Tok::False => {
                self.advance();
                Ok(Sp::new(AExpr::Bool(false), t.line, t.col))
            }
            Tok::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Tok::KwSize => {
                self.advance();
                self.expect(&Tok::LParen, "'(' after 'size'")?;
                let name = self.ident("a stream name inside size(..)")?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Sp::new(AExpr::Size(name), t.line, t.col))
            }
            Tok::Ident(name) => {
                self.advance();
                if self.peek().tok == Tok::LBracket {
                    self.advance();
                    let mut keys = Vec::new();
                    loop {
                        keys.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RBracket, "']' after key list")?;
                    Ok(Sp::new(AExpr::Index(name, keys), t.line, t.col))
                } else {
                    Ok(Sp::new(AExpr::Name(name), t.line, t.col))
                }
            }
            other => {
                Err(self.err_here(format!("expected an expression, found {}", other.describe())))
            }
        }
    }

    /// True when every token has been consumed (used for template holes).
    pub(crate) fn at_eof(&self) -> bool {
        self.peek().tok == Tok::Eof
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> Result<Vec<ADecl>, SpecError> {
        Parser::new(lex(src, 1)?).spec()
    }

    #[test]
    fn parses_each_declaration_form() {
        let decls = parse(
            "input enq := enqueued when !write\n\
             map row_of[request] := row on enq, remove on enq\n\
             counter marks[thread, bank] := add 1 on enq, sub 2 on enq, reset on enq\n\
             hold cap := cap on enq init 0\n\
             window svc[thread] := count over enq in 10000 tumbling\n\
             trigger error \"x-y\" on enq when 1 + 2 * 3 == 7 message \"t={thread}\"\n",
        )
        .unwrap();
        assert_eq!(decls.len(), 6);
        let ADecl::Trigger { cond, .. } = &decls[5] else { panic!("trigger") };
        // Precedence: 1 + (2 * 3) == 7.
        let AExpr::Bin(BinOp::Eq, lhs, _) = &cond.node else { panic!("== at top") };
        let AExpr::Bin(BinOp::Add, _, mul) = &lhs.node else { panic!("+ under ==") };
        assert!(matches!(mul.node, AExpr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn reports_positions_in_parse_errors() {
        let err = parse("map x := 1 over y").unwrap_err();
        assert_eq!(err.to_string(), "1:12: expected 'on', found 'over'");
        let err = parse("trigger info \"x\" on y when true").unwrap_err();
        assert_eq!(
            err.to_string(),
            "1:9: expected 'warn' or 'error' after 'trigger', found 'info'"
        );
        let err = parse("input x := ").unwrap_err();
        assert_eq!(err.to_string(), "1:12: expected an event kind, found end of spec");
    }
}
