//! The field catalog: which names a spec may read on each event kind, and
//! how they project to `i64` at evaluation time.
//!
//! Most fields are verbatim event payload; a few are *derived* so specs can
//! express checks that need structured payloads (`rank_permutation` /
//! `rank_sorted` fold the `RankComputed` entry list exactly the way
//! `parbs_obs::InvariantSink` does, which is what makes the invariant
//! prelude verdict-identical).

use parbs_obs::{CmdKind, Event, ServiceClass};

/// Expression types in the spec language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Boolean (stored as 0/1 at runtime).
    Bool,
}

impl Ty {
    /// Lower-case name for error messages.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Ty::Int => "Int",
            Ty::Bool => "Bool",
        }
    }
}

/// The thirteen event kinds a spec may name after `input name :=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// `enqueued`
    Enqueued,
    /// `marked`
    Marked,
    /// `batch_formed`
    BatchFormed,
    /// `batch_drained`
    BatchDrained,
    /// `rank_computed`
    RankComputed,
    /// `command_issued`
    CommandIssued,
    /// `completed`
    Completed,
    /// `write_drain`
    WriteDrain,
    /// `refresh`
    Refresh,
    /// `bus_sample`
    BusSample,
    /// `blacklist_set`
    BlacklistSet,
    /// `blacklist_cleared`
    BlacklistCleared,
    /// `quantum_rolled`
    QuantumRolled,
}

/// All kinds, in catalog order (used for "expected one of" error text).
pub const ALL_KINDS: [EventKind; 13] = [
    EventKind::Enqueued,
    EventKind::Marked,
    EventKind::BatchFormed,
    EventKind::BatchDrained,
    EventKind::RankComputed,
    EventKind::CommandIssued,
    EventKind::Completed,
    EventKind::WriteDrain,
    EventKind::Refresh,
    EventKind::BusSample,
    EventKind::BlacklistSet,
    EventKind::BlacklistCleared,
    EventKind::QuantumRolled,
];

impl EventKind {
    /// The spec-language name of this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enqueued => "enqueued",
            EventKind::Marked => "marked",
            EventKind::BatchFormed => "batch_formed",
            EventKind::BatchDrained => "batch_drained",
            EventKind::RankComputed => "rank_computed",
            EventKind::CommandIssued => "command_issued",
            EventKind::Completed => "completed",
            EventKind::WriteDrain => "write_drain",
            EventKind::Refresh => "refresh",
            EventKind::BusSample => "bus_sample",
            EventKind::BlacklistSet => "blacklist_set",
            EventKind::BlacklistCleared => "blacklist_cleared",
            EventKind::QuantumRolled => "quantum_rolled",
        }
    }

    /// Parses a spec-language kind name.
    #[must_use]
    pub fn parse(name: &str) -> Option<EventKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// The kind of a concrete event.
    #[must_use]
    pub fn of(event: &Event) -> EventKind {
        match event {
            Event::Enqueued { .. } => EventKind::Enqueued,
            Event::Marked { .. } => EventKind::Marked,
            Event::BatchFormed { .. } => EventKind::BatchFormed,
            Event::BatchDrained { .. } => EventKind::BatchDrained,
            Event::RankComputed { .. } => EventKind::RankComputed,
            Event::CommandIssued { .. } => EventKind::CommandIssued,
            Event::Completed { .. } => EventKind::Completed,
            Event::WriteDrain { .. } => EventKind::WriteDrain,
            Event::Refresh { .. } => EventKind::Refresh,
            Event::BusSample { .. } => EventKind::BusSample,
            Event::BlacklistSet { .. } => EventKind::BlacklistSet,
            Event::BlacklistCleared { .. } => EventKind::BlacklistCleared,
            Event::QuantumRolled { .. } => EventKind::QuantumRolled,
        }
    }
}

/// A resolved field selector. One flat enum across all kinds; which
/// selectors are legal on which kind is governed by [`catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Cycle of the event (every kind).
    At,
    /// Request id.
    Request,
    /// Thread index.
    Thread,
    /// Write flag (`enqueued` / `completed`).
    Write,
    /// DRAM rank index.
    Rank,
    /// Bank index.
    Bank,
    /// Row address.
    Row,
    /// Column address (`command_issued`).
    Col,
    /// Marked flag on `command_issued`.
    MarkedFlag,
    /// Batch id (`batch_formed` / `batch_drained`).
    Id,
    /// Number of requests marked by a `batch_formed`.
    MarkedCount,
    /// Marking-Cap (0 when uncapped; see [`Field::HasCap`]).
    Cap,
    /// True when the batch announced a Marking-Cap.
    HasCap,
    /// Exclusive-batch flag.
    Exclusive,
    /// Number of threads listed in the payload.
    Threads,
    /// Formation cycle echoed by `batch_drained`.
    FormedAt,
    /// `at - formed_at` of a `batch_drained`.
    Span,
    /// Batch id of a `rank_computed`.
    Batch,
    /// Max-Total scheme flag.
    MaxTotal,
    /// Derived: the ranking's ranks are a permutation of `0..n`.
    RankPermutation,
    /// Derived: rank order is non-decreasing (max-bank-load, total-load).
    RankSorted,
    /// Command is a column read.
    Rd,
    /// Command is a column write.
    Wr,
    /// Command is an activate.
    Act,
    /// Command is a precharge.
    Pre,
    /// Service class is row-hit.
    Hit,
    /// Service class is row-closed.
    Closed,
    /// Service class is row-conflict.
    Conflict,
    /// A service class was recorded.
    HasService,
    /// A data-end cycle was recorded.
    HasDataEnd,
    /// Data-end cycle (0 when absent; see [`Field::HasDataEnd`]).
    DataEnd,
    /// Arrival cycle of a `completed`.
    Arrival,
    /// Finish cycle of a `completed`.
    Finish,
    /// `finish - arrival` of a `completed`.
    Latency,
    /// Write-drain start/stop flag.
    Start,
    /// Queued writes at a `write_drain` edge.
    Queued,
    /// Busy banks in a `bus_sample`.
    BusyBanks,
    /// Queued reads in a `bus_sample`.
    QueuedReads,
    /// Queued writes in a `bus_sample`.
    QueuedWrites,
    /// Consecutive-request count of a `blacklist_set`.
    Consecutive,
    /// Threads cleared by a `blacklist_cleared`.
    Cleared,
    /// Quantum index of a `quantum_rolled`.
    Quantum,
}

/// The readable fields of `kind`, as `(name, selector, type)` triples.
#[must_use]
pub fn catalog(kind: EventKind) -> &'static [(&'static str, Field, Ty)] {
    use Field as F;
    use Ty::{Bool, Int};
    match kind {
        EventKind::Enqueued => &[
            ("at", F::At, Int),
            ("request", F::Request, Int),
            ("thread", F::Thread, Int),
            ("write", F::Write, Bool),
            ("rank", F::Rank, Int),
            ("bank", F::Bank, Int),
            ("row", F::Row, Int),
        ],
        EventKind::Marked => &[
            ("at", F::At, Int),
            ("request", F::Request, Int),
            ("thread", F::Thread, Int),
            ("rank", F::Rank, Int),
            ("bank", F::Bank, Int),
        ],
        EventKind::BatchFormed => &[
            ("at", F::At, Int),
            ("id", F::Id, Int),
            ("marked", F::MarkedCount, Int),
            ("cap", F::Cap, Int),
            ("has_cap", F::HasCap, Bool),
            ("exclusive", F::Exclusive, Bool),
            ("threads", F::Threads, Int),
        ],
        EventKind::BatchDrained => &[
            ("at", F::At, Int),
            ("id", F::Id, Int),
            ("formed_at", F::FormedAt, Int),
            ("span", F::Span, Int),
        ],
        EventKind::RankComputed => &[
            ("at", F::At, Int),
            ("batch", F::Batch, Int),
            ("max_total", F::MaxTotal, Bool),
            ("threads", F::Threads, Int),
            ("rank_permutation", F::RankPermutation, Bool),
            ("rank_sorted", F::RankSorted, Bool),
        ],
        EventKind::CommandIssued => &[
            ("at", F::At, Int),
            ("request", F::Request, Int),
            ("thread", F::Thread, Int),
            ("rank", F::Rank, Int),
            ("bank", F::Bank, Int),
            ("row", F::Row, Int),
            ("col", F::Col, Int),
            ("marked", F::MarkedFlag, Bool),
            ("rd", F::Rd, Bool),
            ("wr", F::Wr, Bool),
            ("act", F::Act, Bool),
            ("pre", F::Pre, Bool),
            ("hit", F::Hit, Bool),
            ("closed", F::Closed, Bool),
            ("conflict", F::Conflict, Bool),
            ("has_service", F::HasService, Bool),
            ("has_data_end", F::HasDataEnd, Bool),
            ("data_end", F::DataEnd, Int),
        ],
        EventKind::Completed => &[
            ("at", F::At, Int),
            ("request", F::Request, Int),
            ("thread", F::Thread, Int),
            ("write", F::Write, Bool),
            ("arrival", F::Arrival, Int),
            ("finish", F::Finish, Int),
            ("latency", F::Latency, Int),
        ],
        EventKind::WriteDrain => {
            &[("at", F::At, Int), ("start", F::Start, Bool), ("queued", F::Queued, Int)]
        }
        EventKind::Refresh => &[("at", F::At, Int), ("rank", F::Rank, Int)],
        EventKind::BusSample => &[
            ("at", F::At, Int),
            ("busy_banks", F::BusyBanks, Int),
            ("queued_reads", F::QueuedReads, Int),
            ("queued_writes", F::QueuedWrites, Int),
        ],
        EventKind::BlacklistSet => {
            &[("at", F::At, Int), ("thread", F::Thread, Int), ("consecutive", F::Consecutive, Int)]
        }
        EventKind::BlacklistCleared => &[("at", F::At, Int), ("cleared", F::Cleared, Int)],
        EventKind::QuantumRolled => {
            &[("at", F::At, Int), ("quantum", F::Quantum, Int), ("threads", F::Threads, Int)]
        }
    }
}

/// Looks up `name` among the fields of `kind`.
#[must_use]
pub fn lookup(kind: EventKind, name: &str) -> Option<(Field, Ty)> {
    catalog(kind).iter().find(|(n, _, _)| *n == name).map(|&(_, f, ty)| (f, ty))
}

fn clamp_u64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn clamp_usize(v: usize) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Derived `rank_permutation`: ranks are exactly `0..n`, each once.
///
/// Mirrors `InvariantSink`'s permutation check verbatim.
fn rank_permutation(entries: &[parbs_obs::RankEntry]) -> bool {
    let mut ranks: Vec<u32> = entries.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.iter().enumerate().all(|(i, &r)| u64::from(r) == i as u64)
}

/// Derived `rank_sorted`: walking the entries in rank order, the
/// `(max_bank_load, total_load)` pairs never decrease.
///
/// Mirrors `InvariantSink`'s Max-Total (shortest-job-first) check verbatim.
fn rank_sorted(entries: &[parbs_obs::RankEntry]) -> bool {
    let mut by_rank: Vec<&parbs_obs::RankEntry> = entries.iter().collect();
    by_rank.sort_by_key(|e| e.rank);
    by_rank.windows(2).all(|pair| {
        (pair[0].max_bank_load, pair[0].total_load) <= (pair[1].max_bank_load, pair[1].total_load)
    })
}

/// Projects one field of `event` to `i64` (booleans as 0/1).
///
/// The checker guarantees `field` is legal for the event's kind; an illegal
/// combination evaluates to 0.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn value(event: &Event, field: Field) -> i64 {
    use Field as F;
    if field == F::At {
        return clamp_u64(event.at());
    }
    match event {
        Event::Enqueued { request, thread, write, rank, bank, row, .. } => match field {
            F::Request => clamp_u64(*request),
            F::Thread => clamp_usize(*thread),
            F::Write => i64::from(*write),
            F::Rank => clamp_usize(*rank),
            F::Bank => clamp_usize(*bank),
            F::Row => clamp_u64(*row),
            _ => 0,
        },
        Event::Marked { request, thread, rank, bank, .. } => match field {
            F::Request => clamp_u64(*request),
            F::Thread => clamp_usize(*thread),
            F::Rank => clamp_usize(*rank),
            F::Bank => clamp_usize(*bank),
            _ => 0,
        },
        Event::BatchFormed { id, marked, cap, exclusive, per_thread, .. } => match field {
            F::Id => clamp_u64(*id),
            F::MarkedCount => i64::from(*marked),
            F::Cap => cap.map_or(0, i64::from),
            F::HasCap => i64::from(cap.is_some()),
            F::Exclusive => i64::from(*exclusive),
            F::Threads => clamp_usize(per_thread.len()),
            _ => 0,
        },
        Event::BatchDrained { at, id, formed_at } => match field {
            F::Id => clamp_u64(*id),
            F::FormedAt => clamp_u64(*formed_at),
            F::Span => clamp_u64(at.saturating_sub(*formed_at)),
            _ => 0,
        },
        Event::RankComputed { batch, max_total, entries, .. } => match field {
            F::Batch => clamp_u64(*batch),
            F::MaxTotal => i64::from(*max_total),
            F::Threads => clamp_usize(entries.len()),
            F::RankPermutation => i64::from(rank_permutation(entries)),
            F::RankSorted => i64::from(rank_sorted(entries)),
            _ => 0,
        },
        Event::CommandIssued {
            request,
            thread,
            kind,
            rank,
            bank,
            row,
            col,
            marked,
            service,
            data_end,
            ..
        } => match field {
            F::Request => clamp_u64(*request),
            F::Thread => clamp_usize(*thread),
            F::Rank => clamp_usize(*rank),
            F::Bank => clamp_usize(*bank),
            F::Row => clamp_u64(*row),
            F::Col => clamp_u64(*col),
            F::MarkedFlag => i64::from(*marked),
            F::Rd => i64::from(*kind == CmdKind::Read),
            F::Wr => i64::from(*kind == CmdKind::Write),
            F::Act => i64::from(*kind == CmdKind::Activate),
            F::Pre => i64::from(*kind == CmdKind::Precharge),
            F::Hit => i64::from(*service == Some(ServiceClass::Hit)),
            F::Closed => i64::from(*service == Some(ServiceClass::Closed)),
            F::Conflict => i64::from(*service == Some(ServiceClass::Conflict)),
            F::HasService => i64::from(service.is_some()),
            F::HasDataEnd => i64::from(data_end.is_some()),
            F::DataEnd => data_end.map_or(0, clamp_u64),
            _ => 0,
        },
        Event::Completed { request, thread, write, arrival, finish, .. } => match field {
            F::Request => clamp_u64(*request),
            F::Thread => clamp_usize(*thread),
            F::Write => i64::from(*write),
            F::Arrival => clamp_u64(*arrival),
            F::Finish => clamp_u64(*finish),
            F::Latency => clamp_u64(finish.saturating_sub(*arrival)),
            _ => 0,
        },
        Event::WriteDrain { start, queued, .. } => match field {
            F::Start => i64::from(*start),
            F::Queued => i64::from(*queued),
            _ => 0,
        },
        Event::Refresh { rank, .. } => match field {
            F::Rank => clamp_usize(*rank),
            _ => 0,
        },
        Event::BusSample { busy_banks, queued_reads, queued_writes, .. } => match field {
            F::BusyBanks => i64::from(*busy_banks),
            F::QueuedReads => i64::from(*queued_reads),
            F::QueuedWrites => i64::from(*queued_writes),
            _ => 0,
        },
        Event::BlacklistSet { thread, consecutive, .. } => match field {
            F::Thread => clamp_usize(*thread),
            F::Consecutive => i64::from(*consecutive),
            _ => 0,
        },
        Event::BlacklistCleared { cleared, .. } => match field {
            F::Cleared => i64::from(*cleared),
            _ => 0,
        },
        Event::QuantumRolled { quantum, ranking, .. } => match field {
            F::Quantum => clamp_u64(*quantum),
            F::Threads => clamp_usize(ranking.len()),
            _ => 0,
        },
    }
}

/// The thread an event concerns, when it names exactly one.
///
/// Alarms carry this so monitor verdicts can be compared to
/// `InvariantSink` violations per thread.
#[must_use]
pub fn thread_of(event: &Event) -> Option<usize> {
    match event {
        Event::Enqueued { thread, .. }
        | Event::Marked { thread, .. }
        | Event::CommandIssued { thread, .. }
        | Event::Completed { thread, .. }
        | Event::BlacklistSet { thread, .. } => Some(*thread),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_obs::RankEntry;

    #[test]
    fn every_kind_name_round_trips() {
        for kind in ALL_KINDS {
            assert_eq!(EventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::parse("enqueue"), None);
    }

    #[test]
    fn catalog_fields_are_unique_and_include_at() {
        for kind in ALL_KINDS {
            let cat = catalog(kind);
            assert_eq!(cat[0].0, "at");
            for (i, (name, _, _)) in cat.iter().enumerate() {
                assert!(
                    cat[i + 1..].iter().all(|(n, _, _)| n != name),
                    "duplicate field {name} on {}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn derived_rank_fields_match_invariant_semantics() {
        let entry = |thread, rank, max, total| RankEntry {
            thread,
            rank,
            max_bank_load: max,
            total_load: total,
        };
        let sorted = vec![entry(1, 0, 1, 1), entry(0, 1, 4, 4)];
        let unsorted = vec![entry(0, 0, 4, 4), entry(1, 1, 1, 1)];
        let dup = vec![entry(0, 0, 1, 1), entry(1, 0, 1, 1)];
        assert!(rank_permutation(&sorted) && rank_sorted(&sorted));
        assert!(rank_permutation(&unsorted) && !rank_sorted(&unsorted));
        assert!(!rank_permutation(&dup));
    }

    #[test]
    fn latency_and_span_are_derived() {
        let done =
            Event::Completed { at: 9, request: 1, thread: 2, write: false, arrival: 3, finish: 9 };
        assert_eq!(value(&done, Field::Latency), 6);
        let drained = Event::BatchDrained { at: 50, id: 1, formed_at: 20 };
        assert_eq!(value(&drained, Field::Span), 30);
        assert_eq!(thread_of(&done), Some(2));
        assert_eq!(thread_of(&drained), None);
    }
}
