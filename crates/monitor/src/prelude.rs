//! Built-in specs shipped with the crate.
//!
//! [`INVARIANTS`] re-expresses the four PAR-BS batching invariants in the
//! spec language, verdict-identical to `parbs_obs::InvariantSink` on
//! `(rule, cycle, thread)` triples (the workspace test
//! `tests/monitor_identity.rs` enforces this across the scheduler zoo,
//! online and via JSONL replay). [`QOS`] goes beyond the invariant sink:
//! windowed attained-service share, BLISS blacklist staleness, and flow
//! backlog high-water alerts.

use crate::Spec;

/// The four PAR-BS batching invariants as a monitor spec.
///
/// Trigger names match `InvariantRule::name()`: `marked-first`,
/// `marking-cap`, `batch-exclusive`, `rank-order`.
pub const INVARIANTS: &str = r#"
# PAR-BS batching invariants (Mutlu & Moscibroda, ISCA 2008), re-expressed
# as streams. Verdict-identical to parbs_obs::InvariantSink.

input enq    := enqueued when !write
input mark   := marked
input done   := completed
input formed := batch_formed
input rdcmd  := command_issued when rd && !marked
input ranked := rank_computed

# Per-request geometry, live between enqueue and completion. Only
# non-write reads are tracked, mirroring the checker's blocker filter.
map in_flight[request] := 1 on enq, remove on done
map bank_of[request]   := bank on enq, remove on done
map row_of[request]    := row on enq, remove on done

# Outstanding marked reads, total and per (bank, row). The add amount is
# gated so writes, untracked ids and re-marks all contribute zero; these
# counters read was_marked *before* it is set below (declaration order).
counter marked_out := add in_flight[request] * (1 - was_marked[request]) on mark, sub was_marked[request] on done
counter marked_queued[bank_of[request], row_of[request]] := add in_flight[request] * (1 - was_marked[request]) on mark, sub was_marked[request] on done
map was_marked[request] := in_flight[request] on mark, remove on done

# Marking-Cap accounting for the current batch. The marks table clears on
# every batch formation, exactly like the checker.
hold cap     := cap on formed init 0
hold has_cap := has_cap on formed
counter marks[thread, bank] := add 1 on mark, reset on formed

# Rule 2 (batched-first): no unmarked read may be serviced while a marked
# read to the same (bank, row) is queued. Subtracting was_marked[request]
# excludes the serviced request itself.
trigger error "marked-first" on rdcmd when marked_queued[bank, row] > was_marked[request] message "unmarked read req {request} (thread {thread}) serviced at bank {bank} row {row} while {marked_queued[bank, row]} marked read(s) to the same bank+row were queued"

# Rule 1 (Marking-Cap): at most cap marks per (thread, bank) per batch.
# The counter arm above runs first, so the trigger sees the post-increment
# value — the checker's increment-then-check.
trigger error "marking-cap" on mark when has_cap && marks[thread, bank] > cap message "thread {thread} has {marks[thread, bank]} marked requests at bank {bank}, exceeding Marking-Cap {cap}"

# Rule 1 (exclusivity): no new exclusive batch before the previous drained.
trigger error "batch-exclusive" on formed when exclusive && marked_out > 0 message "batch {id} formed while {marked_out} marked request(s) of the previous batch were still outstanding"

# Rule 3 (Max-Total): the ranking must be a permutation of 0..n and, when
# the Max-Total scheme is claimed, in shortest-job-first order.
trigger error "rank-order" on ranked when !rank_permutation || (max_total && !rank_sorted) message "batch {batch} ranking of {threads} thread(s) violates Max-Total order (permutation={rank_permutation}, sorted={rank_sorted})"
"#;

/// QoS alerts beyond the invariant checker.
pub const QOS: &str = r#"
# Quality-of-service alerts: fairness and backlog signals the invariant
# checker does not cover.

input svc_cmd  := command_issued when rd || wr
input bl_set   := blacklist_set
input bl_clear := blacklist_cleared
input bus      := bus_sample

# A thread holding more than 3/4 of all column commands in the last 10k
# cycles is starving the others (only meaningful once the bus is busy).
window svc[thread] := count over svc_cmd in 10000
window svc_all     := count over svc_cmd in 10000
trigger warn "attained-share" on svc_cmd when svc_all > 200 && svc[thread] * 4 > svc_all * 3 message "thread {thread} holds {svc[thread]}/{svc_all} of data-bus service in the last 10k cycles"

# BLISS clears its blacklist every Clearing Interval; a set long after the
# last clear means the interval is not being honored.
hold last_clear := at on bl_clear init 0
trigger warn "blacklist-stale" on bl_set when at - last_clear > 20000 message "thread {thread} blacklisted {at - last_clear} cycles after the last blacklist clear"

# Open-loop flow backlog high-water mark.
trigger warn "backlog-high" on bus when queued_reads + queued_writes > 96 message "flow backlog high-water: {queued_reads} reads + {queued_writes} writes queued"
"#;

/// Names accepted by [`by_name`] (and `--spec prelude:<name>` in the CLI).
pub const NAMES: [&str; 2] = ["invariants", "qos"];

/// The compiled invariant prelude.
///
/// # Panics
///
/// Never — the prelude source is compiled in this crate's tests.
#[must_use]
pub fn invariants() -> Spec {
    Spec::compile(INVARIANTS).expect("the invariant prelude compiles")
}

/// The compiled QoS prelude.
///
/// # Panics
///
/// Never — the prelude source is compiled in this crate's tests.
#[must_use]
pub fn qos() -> Spec {
    Spec::compile(QOS).expect("the QoS prelude compiles")
}

/// Looks up a prelude spec by name (`invariants` or `qos`).
#[must_use]
pub fn by_name(name: &str) -> Option<Spec> {
    match name {
        "invariants" => Some(invariants()),
        "qos" => Some(qos()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Severity;

    #[test]
    fn preludes_compile_clean() {
        for name in NAMES {
            let spec = by_name(name).unwrap();
            assert!(
                spec.lints().is_empty(),
                "prelude '{name}' should lint clean: {:?}",
                spec.lints()
            );
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn invariant_trigger_names_match_the_checker_rules() {
        let spec = invariants();
        let names: Vec<(String, Severity)> = spec.triggers();
        let expect = ["marked-first", "marking-cap", "batch-exclusive", "rank-order"];
        assert_eq!(names.len(), expect.len());
        for ((name, severity), want) in names.iter().zip(expect) {
            assert_eq!(name, want);
            assert_eq!(*severity, Severity::Error);
        }
    }
}
