//! The incremental evaluator: a [`Monitor`] instantiates a compiled
//! [`Spec`](crate::Spec) and consumes events as a `parbs_obs::EventSink`,
//! so it drops into every simulator entry point that takes a sink.
//!
//! Per event, evaluation is two-phase (the order is load-bearing for
//! verdict identity with `InvariantSink` — see `ir.rs`):
//!
//! 1. match inputs against **pre-update** state (guards),
//! 2. run updates and triggers interleaved in declaration order,
//! 3. run removals and resets last.
//!
//! All keyed state is sparse: hash tables keyed by the evaluated key
//! tuples, so cost scales with *active* threads/banks/requests, never with
//! the configured maximum.

use std::collections::HashMap;
use std::collections::VecDeque;

use parbs_obs::{Event, EventSink};

use crate::ast::{BinOp, Severity, UnOp};
use crate::fields::{self, EventKind, Ty};
use crate::ir::{Action, Expr, Part, Removal, StateDef, StateKind};
use crate::Spec;

/// One raised trigger instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Severity declared by the trigger.
    pub severity: Severity,
    /// The trigger's quoted name.
    pub name: String,
    /// Cycle of the event that fired the trigger.
    pub at: u64,
    /// The thread the firing event concerns, when it names exactly one
    /// (used to compare verdicts against `InvariantSink` violations).
    pub thread: Option<usize>,
    /// Rendered message template.
    pub message: String,
}

impl std::fmt::Display for Alarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} cycle {}: {}", self.severity, self.name, self.at, self.message)
    }
}

/// Sliding-window state for one key: the retained events and their total.
#[derive(Debug, Default)]
struct SlideBuf {
    buf: VecDeque<(u64, i64)>,
    total: i64,
}

/// Runtime storage for one state stream.
#[derive(Debug)]
enum Cell {
    Table { map: HashMap<Vec<i64>, i64>, default: i64 },
    Sliding { len: u64, per_key: HashMap<Vec<i64>, SlideBuf> },
    Tumbling { len: u64, per_key: HashMap<Vec<i64>, (u64, i64)> },
}

impl Cell {
    fn new(def: &StateDef) -> Cell {
        match def.kind {
            StateKind::Table { default } => Cell::Table { map: HashMap::new(), default },
            StateKind::Sliding { len } => Cell::Sliding { len, per_key: HashMap::new() },
            StateKind::Tumbling { len } => Cell::Tumbling { len, per_key: HashMap::new() },
        }
    }
}

/// Drops sliding-window entries outside `(now - len, now]`.
fn prune(s: &mut SlideBuf, len: u64, now: u64) {
    while let Some(&(t, v)) = s.buf.front() {
        if t.saturating_add(len) <= now {
            s.total = s.total.wrapping_sub(v);
            s.buf.pop_front();
        } else {
            break;
        }
    }
}

fn read_cell(cell: &mut Cell, keys: &[i64], now: u64) -> i64 {
    match cell {
        Cell::Table { map, default } => map.get(keys).copied().unwrap_or(*default),
        Cell::Sliding { len, per_key } => per_key.get_mut(keys).map_or(0, |s| {
            prune(s, *len, now);
            s.total
        }),
        Cell::Tumbling { len, per_key } => {
            per_key
                .get(keys)
                .map_or(0, |&(bucket, total)| if now / *len == bucket { total } else { 0 })
        }
    }
}

fn eval_keys(keys: &[Expr], event: &Event, at: u64, cells: &mut [Cell]) -> Vec<i64> {
    keys.iter().map(|k| eval(k, event, at, cells)).collect()
}

/// Evaluates an expression to `i64` (booleans as 0/1). Reads may prune
/// sliding windows, hence `&mut` cells.
fn eval(e: &Expr, event: &Event, at: u64, cells: &mut [Cell]) -> i64 {
    match e {
        Expr::Int(n) => *n,
        Expr::Bool(b) => i64::from(*b),
        Expr::Field(f) => fields::value(event, *f),
        Expr::Read { state, keys } => {
            let k = eval_keys(keys, event, at, cells);
            read_cell(&mut cells[*state], &k, at)
        }
        Expr::Size(state) => match &cells[*state] {
            Cell::Table { map, .. } => i64::try_from(map.len()).unwrap_or(i64::MAX),
            Cell::Sliding { .. } | Cell::Tumbling { .. } => 0,
        },
        Expr::Un(UnOp::Not, a) => i64::from(eval(a, event, at, cells) == 0),
        Expr::Un(UnOp::Neg, a) => eval(a, event, at, cells).wrapping_neg(),
        Expr::Bin(BinOp::And, a, b) => {
            if eval(a, event, at, cells) == 0 {
                0
            } else {
                i64::from(eval(b, event, at, cells) != 0)
            }
        }
        Expr::Bin(BinOp::Or, a, b) => {
            if eval(a, event, at, cells) != 0 {
                1
            } else {
                i64::from(eval(b, event, at, cells) != 0)
            }
        }
        Expr::Bin(op, a, b) => {
            let x = eval(a, event, at, cells);
            let y = eval(b, event, at, cells);
            match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Mod => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::Lt => i64::from(x < y),
                BinOp::Le => i64::from(x <= y),
                BinOp::Gt => i64::from(x > y),
                BinOp::Ge => i64::from(x >= y),
                BinOp::Eq => i64::from(x == y),
                BinOp::Ne => i64::from(x != y),
                BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
            }
        }
    }
}

/// An online evaluator for one compiled spec over one event stream.
///
/// Implements [`EventSink`], so it attaches anywhere an `InvariantSink` or
/// `JsonlSink` does: `run_observed`, the flow driver, sweeps, or offline
/// replay of a recorded JSONL trace.
#[derive(Debug)]
pub struct Monitor {
    spec: Spec,
    cells: Vec<Cell>,
    matched: Vec<bool>,
    alarms: Vec<Alarm>,
    counts: Vec<u64>,
    /// Total events observed.
    pub events: u64,
}

impl Monitor {
    /// Creates a fresh evaluator for `spec`.
    #[must_use]
    pub fn new(spec: &Spec) -> Monitor {
        let ir = spec.ir();
        Monitor {
            spec: spec.clone(),
            cells: ir.states.iter().map(Cell::new).collect(),
            matched: vec![false; ir.inputs.len()],
            alarms: Vec::new(),
            counts: vec![0; ir.triggers.len()],
            events: 0,
        }
    }

    /// The alarms raised so far, in firing order.
    #[must_use]
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// True when no **error**-severity alarm has fired (warnings are
    /// advisory and do not fail the verdict).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.alarms.iter().all(|a| a.severity != Severity::Error)
    }

    /// Per-trigger firing counts, in declaration order.
    #[must_use]
    pub fn trigger_counts(&self) -> Vec<(&str, Severity, u64)> {
        self.spec
            .ir()
            .triggers
            .iter()
            .zip(&self.counts)
            .map(|(t, &n)| (t.name.as_str(), t.severity, n))
            .collect()
    }

    /// One-line verdict for CLI output.
    #[must_use]
    pub fn summary(&self) -> String {
        let errors = self.alarms.iter().filter(|a| a.severity == Severity::Error).count();
        let warns = self.alarms.len() - errors;
        if self.alarms.is_empty() {
            format!("{} events monitored, 0 alarms", self.events)
        } else {
            format!(
                "{} events monitored, {} ALARM(S) ({errors} error, {warns} warn)",
                self.events,
                self.alarms.len()
            )
        }
    }
}

impl EventSink for Monitor {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        let spec = self.spec.clone();
        let ir = spec.ir();
        let kind = EventKind::of(event);
        let at = event.at();

        for (slot, input) in self.matched.iter_mut().zip(&ir.inputs) {
            *slot = input.kind == kind;
        }
        // Guards see pre-update state; evaluated after the kind screen so
        // off-kind events never touch guard expressions.
        for (i, input) in ir.inputs.iter().enumerate() {
            if self.matched[i] {
                if let Some(guard) = &input.guard {
                    self.matched[i] = eval(guard, event, at, &mut self.cells) != 0;
                }
            }
        }

        for step in &ir.steps {
            if !self.matched[step.input] {
                continue;
            }
            match &step.action {
                Action::Set { state, keys, value } => {
                    let v = eval(value, event, at, &mut self.cells);
                    let k = eval_keys(keys, event, at, &mut self.cells);
                    if let Cell::Table { map, .. } = &mut self.cells[*state] {
                        map.insert(k, v);
                    }
                }
                Action::Add { state, keys, value, neg } => {
                    let mut v = eval(value, event, at, &mut self.cells);
                    if *neg {
                        v = v.wrapping_neg();
                    }
                    let k = eval_keys(keys, event, at, &mut self.cells);
                    if let Cell::Table { map, .. } = &mut self.cells[*state] {
                        let slot = map.entry(k).or_insert(0);
                        *slot = slot.wrapping_add(v);
                    }
                }
                Action::Push { state, keys, value } => {
                    let v = eval(value, event, at, &mut self.cells);
                    let k = eval_keys(keys, event, at, &mut self.cells);
                    match &mut self.cells[*state] {
                        Cell::Sliding { len, per_key } => {
                            let s = per_key.entry(k).or_default();
                            prune(s, *len, at);
                            s.buf.push_back((at, v));
                            s.total = s.total.wrapping_add(v);
                        }
                        Cell::Tumbling { len, per_key } => {
                            let bucket = at / *len;
                            let slot = per_key.entry(k).or_insert((bucket, 0));
                            if slot.0 != bucket {
                                *slot = (bucket, 0);
                            }
                            slot.1 = slot.1.wrapping_add(v);
                        }
                        Cell::Table { .. } => {}
                    }
                }
                Action::Fire { trigger } => {
                    let def = &ir.triggers[*trigger];
                    if eval(&def.cond, event, at, &mut self.cells) == 0 {
                        continue;
                    }
                    let mut message = String::new();
                    for part in &def.message {
                        match part {
                            Part::Lit(s) => message.push_str(s),
                            Part::Expr(e, ty) => {
                                let v = eval(e, event, at, &mut self.cells);
                                match ty {
                                    Ty::Bool => {
                                        message.push_str(if v != 0 { "true" } else { "false" });
                                    }
                                    Ty::Int => message.push_str(&v.to_string()),
                                }
                            }
                        }
                    }
                    self.counts[*trigger] += 1;
                    self.alarms.push(Alarm {
                        severity: def.severity,
                        name: def.name.clone(),
                        at,
                        thread: fields::thread_of(event),
                        message,
                    });
                }
            }
        }

        for removal in &ir.removals {
            match removal {
                Removal::Entry { input, state, keys } => {
                    if self.matched[*input] {
                        let k = eval_keys(keys, event, at, &mut self.cells);
                        if let Cell::Table { map, .. } = &mut self.cells[*state] {
                            map.remove(&k);
                        }
                    }
                }
                Removal::Clear { input, state } => {
                    if self.matched[*input] {
                        if let Cell::Table { map, .. } = &mut self.cells[*state] {
                            map.clear();
                        }
                    }
                }
            }
        }
    }
}
