//! Untyped syntax tree produced by the parser, consumed by the checker.
//!
//! Every node carries the 1-based line/column of its first token so the
//! checker can report resolution and type errors at the exact source spot.

/// A node plus the position of its first token.
#[derive(Debug, Clone, PartialEq)]
pub struct Sp<T> {
    /// The wrapped node.
    pub node: T,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl<T> Sp<T> {
    /// Wraps `node` with a position.
    pub fn new(node: T, line: u32, col: u32) -> Self {
        Sp { node, line, col }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Integer negation (`-`).
    Neg,
    /// Boolean negation (`!`).
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields 0)
    Div,
    /// `%` (modulo by zero yields 0)
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Operator glyph for error messages.
    pub fn glyph(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An unresolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Bare name: an event field or a 0-key stream (field shadows stream).
    Name(String),
    /// Keyed stream read: `name[k1, k2]`.
    Index(String, Vec<Sp<AExpr>>),
    /// `size(name)` — number of live entries in a keyed map or counter.
    Size(Sp<String>),
    /// Unary operation.
    Un(UnOp, Box<Sp<AExpr>>),
    /// Binary operation.
    Bin(BinOp, Box<Sp<AExpr>>, Box<Sp<AExpr>>),
}

/// One `value on input` arm of a map or hold declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AValueArm {
    /// Value to store when the input fires.
    pub value: Sp<AExpr>,
    /// Input stream that drives this arm.
    pub input: Sp<String>,
}

/// One `add expr on input` / `sub expr on input` arm of a counter.
#[derive(Debug, Clone, PartialEq)]
pub struct ACounterArm {
    /// True for `sub`, false for `add`.
    pub neg: bool,
    /// Delta to apply when the input fires.
    pub value: Sp<AExpr>,
    /// Input stream that drives this arm.
    pub input: Sp<String>,
}

/// Hold initial value: integer or boolean literal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AInit {
    /// Integer literal initial value.
    Int(i64),
    /// Boolean literal initial value.
    Bool(bool),
}

/// Trigger severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Advisory; does not fail [`crate::Monitor::ok`].
    Warn,
    /// A violation; fails [`crate::Monitor::ok`].
    Error,
}

impl Severity {
    /// Lower-case name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ADecl {
    /// `input name := event_kind [when guard]`
    Input {
        /// Stream name.
        name: Sp<String>,
        /// Event kind name (checked against the catalog later).
        kind: Sp<String>,
        /// Optional guard; the input fires only when it holds.
        guard: Option<Sp<AExpr>>,
    },
    /// `map name[keys] := v on i, ..., remove on j`
    Map {
        /// Stream name.
        name: Sp<String>,
        /// Key expressions (may be empty for a scalar map).
        keys: Vec<Sp<AExpr>>,
        /// Value arms in declaration order.
        arms: Vec<AValueArm>,
        /// Inputs whose firing removes the entry at the evaluated keys.
        removes: Vec<Sp<String>>,
    },
    /// `counter name[keys] := add v on i, sub w on j, reset on k`
    Counter {
        /// Stream name.
        name: Sp<String>,
        /// Key expressions (may be empty for a scalar counter).
        keys: Vec<Sp<AExpr>>,
        /// Add/sub arms in declaration order.
        arms: Vec<ACounterArm>,
        /// Inputs whose firing clears the whole table.
        resets: Vec<Sp<String>>,
    },
    /// `hold name := v on i [init lit]`
    Hold {
        /// Stream name.
        name: Sp<String>,
        /// Value arms in declaration order.
        arms: Vec<AValueArm>,
        /// Value before any arm fires (default `0` / `false`).
        init: Option<Sp<AInit>>,
    },
    /// `window name[keys] := count|sum v over i in N [tumbling]`
    Window {
        /// Stream name.
        name: Sp<String>,
        /// Key expressions (may be empty for a global window).
        keys: Vec<Sp<AExpr>>,
        /// `None` for `count`, `Some(expr)` for `sum expr`.
        sum: Option<Sp<AExpr>>,
        /// Input stream whose firings populate the window.
        input: Sp<String>,
        /// Window length in cycles.
        len: Sp<i64>,
        /// Tumbling (bucketed) instead of sliding.
        tumbling: bool,
    },
    /// `trigger warn|error "name" on i when cond [message "..."]`
    Trigger {
        /// Severity of raised alarms.
        severity: Severity,
        /// Trigger name (quoted; may contain hyphens).
        name: Sp<String>,
        /// Input stream whose firings evaluate the condition.
        input: Sp<String>,
        /// Boolean condition.
        cond: Sp<AExpr>,
        /// Optional message template with `{expr}` holes.
        message: Option<Sp<String>>,
    },
}
