//! Typed, name-resolved intermediate representation a compiled spec
//! evaluates from. Produced by `check`, consumed by `eval`.
//!
//! Evaluation contract (two phases per event, see `eval`):
//!
//! 1. Inputs are matched (kind + guard) against **pre-update** state.
//! 2. [`Step`]s run in declaration order — state updates and trigger
//!    evaluations interleave, so a trigger declared after a counter arm
//!    sees the post-update value (this is what lets the Marking-Cap
//!    trigger reproduce `InvariantSink`'s increment-then-check).
//! 3. [`Removal`]s run last, so same-event readers (e.g. a `sub` arm
//!    keyed through a map the event also removes from) still see the
//!    entry.

use crate::ast::{BinOp, Severity, UnOp};
use crate::fields::{EventKind, Field, Ty};

/// A resolved, typed expression.
#[derive(Debug, Clone)]
pub(crate) enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Event field projection.
    Field(Field),
    /// Read of state `state` at the evaluated keys (empty for scalars).
    Read { state: usize, keys: Vec<Expr> },
    /// Number of live entries of a keyed map or counter.
    Size(usize),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation (short-circuit for `&&` / `||`).
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A matched input stream: an event kind plus an optional guard.
#[derive(Debug, Clone)]
pub(crate) struct InputDef {
    pub name: String,
    pub kind: EventKind,
    pub guard: Option<Expr>,
}

/// Backing storage shape of a state stream.
#[derive(Debug, Clone)]
pub(crate) enum StateKind {
    /// Maps, counters and holds: key tuple → value, absent = `default`.
    Table { default: i64 },
    /// Sliding window: per key, the events of the last `len` cycles.
    Sliding { len: u64 },
    /// Tumbling window: per key, a running total reset every `len` cycles.
    Tumbling { len: u64 },
}

/// One declared state stream.
#[derive(Debug, Clone)]
pub(crate) struct StateDef {
    pub name: String,
    pub arity: usize,
    pub ty: Ty,
    pub kind: StateKind,
}

/// A phase-1 action, bound to the input whose firing executes it.
#[derive(Debug, Clone)]
pub(crate) enum Action {
    /// Store `value` at `keys` (maps, holds).
    Set { state: usize, keys: Vec<Expr>, value: Expr },
    /// Add (`neg` = subtract) `value` at `keys` (counters).
    Add { state: usize, keys: Vec<Expr>, value: Expr, neg: bool },
    /// Append `(at, value)` at `keys` (windows; `count` pushes 1).
    Push { state: usize, keys: Vec<Expr>, value: Expr },
    /// Evaluate trigger `trigger`'s condition; raise an alarm if true.
    Fire { trigger: usize },
}

/// One phase-1 step.
#[derive(Debug, Clone)]
pub(crate) struct Step {
    pub input: usize,
    pub action: Action,
}

/// A phase-2 removal.
#[derive(Debug, Clone)]
pub(crate) enum Removal {
    /// Drop the entry at the evaluated keys (`remove on` arms).
    Entry { input: usize, state: usize, keys: Vec<Expr> },
    /// Drop every entry (`reset on` arms).
    Clear { input: usize, state: usize },
}

/// One fragment of a rendered alarm message.
#[derive(Debug, Clone)]
pub(crate) enum Part {
    /// Literal text.
    Lit(String),
    /// `{expr}` hole; `Ty` picks integer vs `true`/`false` rendering.
    Expr(Expr, Ty),
}

/// One compiled trigger.
#[derive(Debug, Clone)]
pub(crate) struct TriggerDef {
    pub severity: Severity,
    pub name: String,
    pub cond: Expr,
    pub message: Vec<Part>,
}

/// A fully compiled spec.
#[derive(Debug, Clone)]
pub(crate) struct SpecIr {
    pub inputs: Vec<InputDef>,
    pub states: Vec<StateDef>,
    pub steps: Vec<Step>,
    pub removals: Vec<Removal>,
    pub triggers: Vec<TriggerDef>,
    /// Non-fatal observations (unused streams, very large windows) for
    /// `parbs-analyze check-spec`.
    pub lints: Vec<String>,
}
