//! Offline replay: run a compiled spec over a recorded JSONL event trace
//! (as written by `parbs_obs::JsonlSink`) and return the finished monitor.
//!
//! Because the evaluator consumes the same `Event` values online and
//! offline, replaying a trace yields the **same verdicts** as monitoring
//! the live run that produced it — the workspace identity test and the CI
//! `monitor-smoke` job both diff the two.

use parbs_obs::{parse_jsonl, EventSink};

use crate::{Monitor, Spec};

/// A malformed line in a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line number of the malformed record.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReplayError {}

/// Replays a JSONL trace through a fresh monitor for `spec`.
///
/// Blank lines are skipped; events are fed in file order.
///
/// # Errors
///
/// Returns the first malformed line, with its 1-based line number.
pub fn replay_jsonl(spec: &Spec, text: &str) -> Result<Monitor, ReplayError> {
    let events =
        parse_jsonl(text).map_err(|(line, e)| ReplayError { line, message: e.to_string() })?;
    let mut monitor = spec.monitor();
    for event in &events {
        monitor.record(event);
    }
    Ok(monitor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_online_feeding() {
        let spec = crate::prelude::invariants();
        let trace = "\
{\"type\":\"enqueued\",\"at\":0,\"req\":1,\"thread\":0,\"write\":false,\"rank\":0,\"bank\":0,\"row\":5}
{\"type\":\"marked\",\"at\":1,\"req\":1,\"thread\":0,\"rank\":0,\"bank\":0}
{\"type\":\"command_issued\",\"at\":2,\"req\":2,\"thread\":1,\"cmd\":\"RD\",\"rank\":0,\"bank\":0,\"row\":5,\"col\":0,\"marked\":false}
";
        let monitor = replay_jsonl(&spec, trace).unwrap();
        assert_eq!(monitor.events, 3);
        assert_eq!(monitor.alarms().len(), 1);
        assert_eq!(monitor.alarms()[0].name, "marked-first");
        assert_eq!(monitor.alarms()[0].at, 2);
        assert_eq!(monitor.alarms()[0].thread, Some(1));
    }

    #[test]
    fn malformed_lines_are_reported_with_their_number() {
        let spec = crate::prelude::invariants();
        let err = replay_jsonl(&spec, "\n{\"type\":\"nope\"}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2:"), "{err}");
    }
}
