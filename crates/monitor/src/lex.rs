//! Tokenizer for the monitor spec language.
//!
//! Line-and-column spans are tracked per token (1-based) so every parse and
//! type error can point at the offending spot; the golden tests in
//! `tests/spec_errors.rs` pin the exact rendered positions down.

use crate::SpecError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (stream, field or event-kind name).
    Ident(String),
    /// Double-quoted string literal (trigger names, message templates).
    Str(String),
    /// Unsigned integer literal (fits i64).
    Int(i64),
    /// `input`
    KwInput,
    /// `map`
    KwMap,
    /// `counter`
    KwCounter,
    /// `hold`
    KwHold,
    /// `window`
    KwWindow,
    /// `trigger`
    KwTrigger,
    /// `when`
    KwWhen,
    /// `on`
    KwOn,
    /// `remove`
    KwRemove,
    /// `add`
    KwAdd,
    /// `sub`
    KwSub,
    /// `reset`
    KwReset,
    /// `init`
    KwInit,
    /// `over`
    KwOver,
    /// `in`
    KwIn,
    /// `tumbling`
    KwTumbling,
    /// `count`
    KwCount,
    /// `sum`
    KwSum,
    /// `size`
    KwSize,
    /// `message`
    KwMessage,
    /// `warn`
    KwWarn,
    /// `error`
    KwError,
    /// `true`
    True,
    /// `false`
    False,
    /// `:=`
    Assign,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl Tok {
    /// How the token reads in an error message.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Str(_) => "string literal".to_owned(),
            Tok::Int(n) => format!("'{n}'"),
            Tok::Eof => "end of spec".to_owned(),
            other => format!("'{}'", other.glyph()),
        }
    }

    fn glyph(&self) -> &'static str {
        match self {
            Tok::KwInput => "input",
            Tok::KwMap => "map",
            Tok::KwCounter => "counter",
            Tok::KwHold => "hold",
            Tok::KwWindow => "window",
            Tok::KwTrigger => "trigger",
            Tok::KwWhen => "when",
            Tok::KwOn => "on",
            Tok::KwRemove => "remove",
            Tok::KwAdd => "add",
            Tok::KwSub => "sub",
            Tok::KwReset => "reset",
            Tok::KwInit => "init",
            Tok::KwOver => "over",
            Tok::KwIn => "in",
            Tok::KwTumbling => "tumbling",
            Tok::KwCount => "count",
            Tok::KwSum => "sum",
            Tok::KwSize => "size",
            Tok::KwMessage => "message",
            Tok::KwWarn => "warn",
            Tok::KwError => "error",
            Tok::True => "true",
            Tok::False => "false",
            Tok::Assign => ":=",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Comma => ",",
            Tok::Bang => "!",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Ident(_) | Tok::Str(_) | Tok::Int(_) | Tok::Eof => unreachable!(),
        }
    }
}

/// A token plus the 1-based position of its first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "input" => Tok::KwInput,
        "map" => Tok::KwMap,
        "counter" => Tok::KwCounter,
        "hold" => Tok::KwHold,
        "window" => Tok::KwWindow,
        "trigger" => Tok::KwTrigger,
        "when" => Tok::KwWhen,
        "on" => Tok::KwOn,
        "remove" => Tok::KwRemove,
        "add" => Tok::KwAdd,
        "sub" => Tok::KwSub,
        "reset" => Tok::KwReset,
        "init" => Tok::KwInit,
        "over" => Tok::KwOver,
        "in" => Tok::KwIn,
        "tumbling" => Tok::KwTumbling,
        "count" => Tok::KwCount,
        "sum" => Tok::KwSum,
        "size" => Tok::KwSize,
        "message" => Tok::KwMessage,
        "warn" => Tok::KwWarn,
        "error" => Tok::KwError,
        "true" => Tok::True,
        "false" => Tok::False,
        _ => return None,
    })
}

/// Tokenizes `src`, ending the stream with an [`Tok::Eof`] token.
///
/// `#` starts a comment running to end of line. Offsets in the returned
/// tokens are relative to `(base_line, base col 1)` so templates embedded in
/// strings can be re-lexed with their own origin.
pub fn lex(src: &str, base_line: u32) -> Result<Vec<Token>, SpecError> {
    let mut out = Vec::new();
    let mut line = base_line;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();
    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }
    loop {
        let (tline, tcol) = (line, col);
        let Some(&c) = chars.peek() else {
            out.push(Token { tok: Tok::Eof, line, col });
            return Ok(out);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match chars.peek() {
                        None | Some('\n') => {
                            return Err(SpecError::at(tline, tcol, "unterminated string literal"))
                        }
                        Some('"') => {
                            bump!();
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            bump!();
                        }
                    }
                }
                out.push(Token { tok: Tok::Str(s), line: tline, col: tcol });
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&c) = chars.peek() {
                    let Some(d) = c.to_digit(10) else { break };
                    n = n.checked_mul(10).and_then(|n| n.checked_add(i64::from(d))).ok_or_else(
                        || SpecError::at(tline, tcol, "integer literal does not fit in i64"),
                    )?;
                    bump!();
                }
                out.push(Token { tok: Tok::Int(n), line: tline, col: tcol });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        word.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let tok = keyword(&word).unwrap_or(Tok::Ident(word));
                out.push(Token { tok, line: tline, col: tcol });
            }
            _ => {
                bump!();
                let next = chars.peek().copied();
                let tok = match c {
                    ':' if next == Some('=') => {
                        bump!();
                        Tok::Assign
                    }
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ',' => Tok::Comma,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '%' => Tok::Percent,
                    '!' if next == Some('=') => {
                        bump!();
                        Tok::Ne
                    }
                    '!' => Tok::Bang,
                    '<' if next == Some('=') => {
                        bump!();
                        Tok::Le
                    }
                    '<' => Tok::Lt,
                    '>' if next == Some('=') => {
                        bump!();
                        Tok::Ge
                    }
                    '>' => Tok::Gt,
                    '=' if next == Some('=') => {
                        bump!();
                        Tok::EqEq
                    }
                    '&' if next == Some('&') => {
                        bump!();
                        Tok::AndAnd
                    }
                    '|' if next == Some('|') => {
                        bump!();
                        Tok::OrOr
                    }
                    other => {
                        return Err(SpecError::at(
                            tline,
                            tcol,
                            format!("unexpected character '{other}'"),
                        ))
                    }
                };
                out.push(Token { tok, line: tline, col: tcol });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("input x := marked\n  when a >= 3 # c\n", 1).unwrap();
        assert_eq!(toks[0].tok, Tok::KwInput);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!(toks[1].tok, Tok::Ident("x".into()));
        assert_eq!((toks[1].line, toks[1].col), (1, 7));
        assert_eq!(toks[2].tok, Tok::Assign);
        let when = toks.iter().find(|t| t.tok == Tok::KwWhen).unwrap();
        assert_eq!((when.line, when.col), (2, 3));
        let ge = toks.iter().find(|t| t.tok == Tok::Ge).unwrap();
        assert_eq!(ge.col, 10);
        assert_eq!(toks.last().unwrap().tok, Tok::Eof);
    }

    #[test]
    fn bad_characters_are_rejected_with_position() {
        let err = lex("a $ b", 1).unwrap_err();
        assert_eq!(err.to_string(), "1:3: unexpected character '$'");
    }

    #[test]
    fn strings_and_ints() {
        let toks = lex("\"hi {x}\" 42", 1).unwrap();
        assert_eq!(toks[0].tok, Tok::Str("hi {x}".into()));
        assert_eq!(toks[1].tok, Tok::Int(42));
        assert!(lex("\"open", 1).is_err());
        assert!(lex("99999999999999999999", 1).is_err());
    }
}
