//! Golden tests for spec compile errors: each malformed spec is pinned to
//! the *exact* rendered diagnostic (`line:col: message`), so error position,
//! offending stream name, and expected type stay stable for tooling that
//! parses them (editors, `parbs-analyze check-spec`, CI logs).

use parbs_monitor::Spec;

/// Compiles `src` and asserts the rendered error equals `expected` exactly.
fn assert_error(src: &str, expected: &str) {
    match Spec::compile(src) {
        Ok(_) => panic!("spec compiled but should not have:\n{src}"),
        Err(e) => assert_eq!(e.to_string(), expected, "for spec:\n{src}"),
    }
}

#[test]
fn lexer_rejects_stray_characters_with_position() {
    assert_error("input enq := enqueued when @thread\n", "1:28: unexpected character '@'");
}

#[test]
fn parser_pins_missing_keyword_position() {
    // `window` requires `over <input>`; handing it `in` first is caught at
    // the exact token.
    assert_error(
        "input enq := enqueued\nwindow w := count in 100\n",
        "2:19: expected 'over', found 'in'",
    );
}

#[test]
fn parser_pins_bad_trigger_severity() {
    assert_error(
        "input enq := enqueued\ntrigger info \"x\" on enq when true\n",
        "2:9: expected 'warn' or 'error' after 'trigger', found 'info'",
    );
}

#[test]
fn parser_pins_truncated_spec() {
    assert_error("input enq :=", "1:13: expected an event kind, found end of spec");
}

#[test]
fn checker_names_the_unknown_event_kind() {
    assert_error(
        "input enq := enquued\n",
        "1:14: unknown event kind 'enquued' (expected one of enqueued, marked, \
         batch_formed, batch_drained, rank_computed, command_issued, completed, \
         write_drain, refresh, bus_sample, blacklist_set, blacklist_cleared, \
         quantum_rolled)",
    );
}

#[test]
fn checker_names_the_unknown_field_and_its_event_kind() {
    assert_error(
        "input enq := enqueued when thrd == 0\n",
        "1:28: unknown name 'thrd' on event kind 'enqueued'",
    );
}

#[test]
fn checker_pins_guard_type_mismatch() {
    assert_error(
        "input enq := enqueued when thread\n",
        "1:28: input guard must be Bool, found Int",
    );
}

#[test]
fn checker_pins_trigger_condition_type_mismatch() {
    assert_error(
        "input enq := enqueued\ntrigger error \"t\" on enq when thread + 1\n",
        "2:31: trigger condition must be Bool, found Int",
    );
}

#[test]
fn checker_pins_operator_operand_types() {
    assert_error(
        "input enq := enqueued when write + 1 == 2\n",
        "1:28: '+' expects Int operands, found Bool",
    );
    assert_error(
        "input enq := enqueued when !(thread)\n",
        "1:28: '!' expects a Bool operand, found Int",
    );
    assert_error(
        "input enq := enqueued when write == thread\n",
        "1:28: cannot compare Bool with Int",
    );
}

#[test]
fn checker_pins_duplicate_stream_names() {
    assert_error(
        "input enq := enqueued\ninput enq := completed\n",
        "2:7: duplicate stream name 'enq'",
    );
}

#[test]
fn checker_pins_key_arity_mismatch() {
    assert_error(
        "input enq := enqueued\n\
         map m[request] := thread on enq\n\
         trigger error \"t\" on enq when m[request, thread] > 0\n",
        "3:31: 'm' expects 1 key(s), got 2",
    );
}

#[test]
fn checker_pins_unknown_stream_in_expression() {
    assert_error(
        "input enq := enqueued\ntrigger error \"t\" on enq when missing[thread] > 0\n",
        "2:31: unknown stream 'missing'",
    );
}

#[test]
fn checker_rejects_nonpositive_window_lengths() {
    assert_error(
        "input enq := enqueued\nwindow w := count over enq in 0\n",
        "2:31: window 'w' length must be positive",
    );
}

#[test]
fn checker_pins_errors_inside_message_templates() {
    assert_error(
        "input enq := enqueued\n\
         trigger error \"t\" on enq when true message \"thread {thrd}\"\n",
        "2:44: in message template: unknown name 'thrd' on event kind 'enqueued'",
    );
    assert_error(
        "input enq := enqueued\n\
         trigger error \"t\" on enq when true message \"oops {thread\"\n",
        "2:44: unterminated '{' in message template",
    );
}

#[test]
fn checker_pins_untyped_hold_reads() {
    assert_error(
        "input enq := enqueued\n\
         hold h := h on enq\n\
         trigger error \"t\" on enq when h > 0\n",
        "2:11: hold 'h' is read before its type is known (declare it earlier or give \
         it an 'init')",
    );
}
