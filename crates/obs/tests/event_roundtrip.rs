//! Property test: every [`Event`] variant serializes to JSONL and parses
//! back **losslessly** — `Event::from_json(&e.to_json()) == e` for arbitrary
//! field values. Offline replay (`parbs-sim monitor --replay`) relies on
//! this: a silently dropped or zeroed field would skew monitor verdicts
//! without any error.

use parbs_obs::{CmdKind, Event, RankEntry, ServiceClass};
use proptest::prelude::*;

/// Draws one arbitrary event covering all 13 variants; `pick` selects the
/// variant, the remaining integers seed the fields (split by simple
/// mixing so every field varies independently of the others).
#[allow(clippy::too_many_lines)]
fn build_event(pick: u8, a: u64, b: u64, c: u64, d: u64, flags: u8, len: usize) -> Event {
    let thread = (b % 70_000) as usize;
    let rank = (c % 4) as usize;
    let bank = (c / 4 % 16) as usize;
    let write = flags & 1 != 0;
    match pick % 13 {
        0 => Event::Enqueued { at: a, request: b, thread, write, rank, bank, row: d },
        1 => Event::Marked { at: a, request: b, thread, rank, bank },
        2 => Event::BatchFormed {
            at: a,
            id: b,
            marked: (c % u64::from(u32::MAX)) as u32,
            cap: if flags & 2 != 0 { Some((d % 64) as u32) } else { None },
            exclusive: flags & 4 != 0,
            per_thread: (0..len).map(|i| (i * 7 + thread, (d % 9) as u32 + i as u32)).collect(),
        },
        3 => Event::BatchDrained { at: a, id: b, formed_at: d },
        4 => Event::RankComputed {
            at: a,
            batch: b,
            max_total: flags & 2 != 0,
            entries: (0..len)
                .map(|i| RankEntry {
                    thread: thread + i,
                    rank: i as u32,
                    max_bank_load: (c % 1000) as u32 + i as u32,
                    total_load: (d % 1000) as u32 + i as u32,
                })
                .collect(),
        },
        5 => Event::CommandIssued {
            at: a,
            request: b,
            thread,
            kind: match flags >> 1 & 3 {
                0 => CmdKind::Activate,
                1 => CmdKind::Read,
                2 => CmdKind::Write,
                _ => CmdKind::Precharge,
            },
            rank,
            bank,
            row: d,
            col: c,
            marked: flags & 1 != 0,
            service: match flags >> 3 & 3 {
                0 => None,
                1 => Some(ServiceClass::Hit),
                2 => Some(ServiceClass::Closed),
                _ => Some(ServiceClass::Conflict),
            },
            data_end: if flags & 32 != 0 { Some(d.wrapping_add(40)) } else { None },
        },
        6 => Event::Completed { at: a, request: b, thread, write, arrival: c, finish: d },
        7 => Event::WriteDrain { at: a, start: flags & 2 != 0, queued: (c % 256) as u32 },
        8 => Event::Refresh { at: a, rank },
        9 => Event::BusSample {
            at: a,
            busy_banks: (b % 64) as u32,
            queued_reads: (c % 512) as u32,
            queued_writes: (d % 512) as u32,
        },
        10 => Event::BlacklistSet { at: a, thread, consecutive: (c % 64) as u32 },
        11 => Event::BlacklistCleared { at: a, cleared: (c % 64) as u32 },
        _ => Event::QuantumRolled {
            at: a,
            quantum: b,
            ranking: (0..len).map(|i| (thread + i, i as u32, d.wrapping_add(i as u64))).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_000))]
    #[test]
    fn every_event_round_trips_losslessly(
        pick in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        d in any::<u64>(),
        flags in any::<u8>(),
        len in 0usize..5,
    ) {
        let event = build_event(pick, a, b, c, d, flags, len);
        let json = event.to_json();
        prop_assert!(!json.contains('\n'), "JSONL records are single-line: {json}");
        let parsed = Event::from_json(&json);
        prop_assert_eq!(parsed, Ok(event), "payload: {}", json);
    }

    #[test]
    fn jsonl_documents_round_trip_line_by_line(
        seed in any::<u64>(),
        count in 1usize..20,
    ) {
        use parbs_obs::{parse_jsonl, EventSink, JsonlSink};
        let events: Vec<Event> = (0..count)
            .map(|i| {
                let x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                build_event((x % 13) as u8, x, x >> 7, x >> 13, x >> 23, (x >> 31) as u8,
                            (x % 4) as usize)
            })
            .collect();
        let mut sink = JsonlSink::to_vec();
        for e in &events {
            sink.record(e);
        }
        let text = sink.into_string();
        let parsed = match parse_jsonl(&text) {
            Ok(p) => p,
            Err((line, e)) => return Err(TestCaseError::Fail(format!("line {line}: {e}"))),
        };
        prop_assert_eq!(parsed, events);
    }
}
