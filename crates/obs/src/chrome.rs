//! [`ChromeTraceSink`]: exports the event stream as Chrome trace-event JSON
//! (loadable in `chrome://tracing` and <https://ui.perfetto.dev>).
//!
//! Track layout:
//!
//! - **pid 1 "banks"** — one track per bank; every DRAM command is a
//!   duration (`ph:"X"`) slice. Column commands span issue → end of data
//!   transfer; activates/precharges get a fixed command-slot width.
//! - **pid 2 "threads"** — one track per thread; every completed request is
//!   a slice spanning arrival → data observed (its full latency).
//! - **pid 3 "scheduler"** — batch formation→drain spans, rank-computation
//!   instants, write-drain windows, refresh instants, and `busy_banks` /
//!   `queued_reads` counter tracks.
//!
//! Timestamps map one processor cycle to one trace microsecond (the trace
//! format's native unit), so slice widths read directly as cycles.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{Event, EventSink};

const BANKS_PID: u32 = 1;
const THREADS_PID: u32 = 2;
const SCHED_PID: u32 = 3;
/// Scheduler-track tids.
const BATCH_TID: u32 = 0;
const DRAIN_TID: u32 = 1;

/// Streams events into Chrome trace-event JSON entries; call
/// [`ChromeTraceSink::finish`] after the run to get the complete document.
#[derive(Debug)]
pub struct ChromeTraceSink {
    entries: Vec<String>,
    seen_banks: HashSet<usize>,
    seen_threads: HashSet<usize>,
    sched_meta_done: bool,
    /// Cycle the current write-drain window started, if one is open.
    drain_start: Option<u64>,
    /// Fixed slice width (cycles) for commands without a data transfer.
    command_width: u64,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        ChromeTraceSink::new()
    }
}

impl ChromeTraceSink {
    /// Creates a sink with the default non-column command width (10 cycles,
    /// one DRAM command slot).
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceSink {
            entries: Vec::new(),
            seen_banks: HashSet::new(),
            seen_threads: HashSet::new(),
            sched_meta_done: false,
            drain_start: None,
            command_width: 10,
        }
    }

    /// Overrides the slice width used for activate/precharge commands.
    #[must_use]
    pub fn with_command_width(mut self, cycles: u64) -> Self {
        self.command_width = cycles.max(1);
        self
    }

    /// Number of trace entries emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the sink and renders the complete JSON document.
    #[must_use]
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(32 + self.entries.iter().map(String::len).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }

    fn meta(&mut self, name: &str, pid: u32, tid: Option<u32>, value: &str) {
        let mut e = format!("{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid}");
        if let Some(tid) = tid {
            let _ = write!(e, ",\"tid\":{tid}");
        }
        let _ = write!(e, ",\"args\":{{\"name\":\"{value}\"}}}}");
        self.entries.push(e);
    }

    fn ensure_bank(&mut self, bank: usize) {
        if self.seen_banks.insert(bank) {
            if self.seen_banks.len() == 1 {
                self.meta("process_name", BANKS_PID, None, "banks");
            }
            self.meta("thread_name", BANKS_PID, Some(bank as u32), &format!("bank {bank}"));
        }
    }

    fn ensure_thread(&mut self, thread: usize) {
        if self.seen_threads.insert(thread) {
            if self.seen_threads.len() == 1 {
                self.meta("process_name", THREADS_PID, None, "threads");
            }
            self.meta("thread_name", THREADS_PID, Some(thread as u32), &format!("thread {thread}"));
        }
    }

    fn ensure_sched(&mut self) {
        if !self.sched_meta_done {
            self.sched_meta_done = true;
            self.meta("process_name", SCHED_PID, None, "scheduler");
            self.meta("thread_name", SCHED_PID, Some(BATCH_TID), "batches");
            self.meta("thread_name", SCHED_PID, Some(DRAIN_TID), "write drain");
        }
    }

    fn slice(&mut self, name: &str, pid: u32, tid: u32, ts: u64, dur: u64, args: &str) {
        self.entries.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{args}}}"
        ));
    }

    fn instant(&mut self, name: &str, pid: u32, tid: u32, ts: u64, args: &str) {
        self.entries.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{args}}}"
        ));
    }

    fn counter(&mut self, name: &str, ts: u64, value: u32) {
        self.entries.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{SCHED_PID},\"ts\":{ts},\"args\":{{\"{name}\":{value}}}}}"
        ));
    }
}

impl EventSink for ChromeTraceSink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::CommandIssued {
                at,
                request,
                thread,
                kind,
                bank,
                row,
                marked,
                service,
                data_end,
                ..
            } => {
                self.ensure_bank(*bank);
                let dur = data_end.map_or(self.command_width, |end| end.saturating_sub(*at).max(1));
                let mut args = format!(
                    "{{\"req\":{request},\"thread\":{thread},\"row\":{row},\"marked\":{marked}"
                );
                if let Some(class) = service {
                    let _ = write!(args, ",\"class\":\"{}\"", class.name());
                }
                args.push('}');
                self.slice(kind.short(), BANKS_PID, *bank as u32, *at, dur, &args);
            }
            Event::Completed { request, thread, write, arrival, finish, .. } => {
                self.ensure_thread(*thread);
                let name = if *write { "write" } else { "read" };
                let args = format!(
                    "{{\"req\":{request},\"latency\":{}}}",
                    finish.saturating_sub(*arrival)
                );
                self.slice(
                    name,
                    THREADS_PID,
                    *thread as u32,
                    *arrival,
                    finish.saturating_sub(*arrival).max(1),
                    &args,
                );
            }
            Event::BatchDrained { at, id, formed_at } => {
                self.ensure_sched();
                let args = format!("{{\"batch\":{id}}}");
                self.slice(
                    &format!("batch {id}"),
                    SCHED_PID,
                    BATCH_TID,
                    *formed_at,
                    at.saturating_sub(*formed_at).max(1),
                    &args,
                );
            }
            Event::RankComputed { at, batch, max_total, entries } => {
                self.ensure_sched();
                let mut args = format!("{{\"batch\":{batch},\"max_total\":{max_total},\"order\":[");
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        args.push(',');
                    }
                    let _ = write!(args, "{}", e.thread);
                }
                args.push_str("]}");
                self.instant("rank", SCHED_PID, BATCH_TID, *at, &args);
            }
            Event::WriteDrain { at, start, queued } => {
                self.ensure_sched();
                if *start {
                    self.drain_start = Some(*at);
                } else if let Some(begin) = self.drain_start.take() {
                    let args = format!("{{\"queued\":{queued}}}");
                    self.slice(
                        "write drain",
                        SCHED_PID,
                        DRAIN_TID,
                        begin,
                        at.saturating_sub(begin).max(1),
                        &args,
                    );
                }
            }
            Event::Refresh { at, rank } => {
                self.ensure_sched();
                let args = format!("{{\"rank\":{rank}}}");
                self.instant("refresh", SCHED_PID, BATCH_TID, *at, &args);
            }
            Event::BlacklistSet { at, thread, consecutive } => {
                self.ensure_sched();
                let args = format!("{{\"thread\":{thread},\"consecutive\":{consecutive}}}");
                self.instant("blacklist_set", SCHED_PID, BATCH_TID, *at, &args);
            }
            Event::BlacklistCleared { at, cleared } => {
                self.ensure_sched();
                let args = format!("{{\"cleared\":{cleared}}}");
                self.instant("blacklist_cleared", SCHED_PID, BATCH_TID, *at, &args);
            }
            Event::QuantumRolled { at, quantum, .. } => {
                self.ensure_sched();
                let args = format!("{{\"quantum\":{quantum}}}");
                self.instant("quantum_rolled", SCHED_PID, BATCH_TID, *at, &args);
            }
            Event::BusSample { at, busy_banks, queued_reads, .. } => {
                self.ensure_sched();
                self.counter("busy_banks", *at, *busy_banks);
                self.counter("queued_reads", *at, *queued_reads);
            }
            // Enqueued/Marked/BatchFormed carry no visual of their own: the
            // batch span is drawn at drain time (when its extent is known)
            // and request spans at completion.
            Event::Enqueued { .. } | Event::Marked { .. } | Event::BatchFormed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmdKind, ServiceClass};

    fn stream() -> Vec<Event> {
        vec![
            Event::Enqueued {
                at: 0,
                request: 1,
                thread: 0,
                write: false,
                rank: 0,
                bank: 0,
                row: 4,
            },
            Event::BatchFormed {
                at: 0,
                id: 1,
                marked: 1,
                cap: Some(5),
                exclusive: true,
                per_thread: vec![(0, 1)],
            },
            Event::Marked { at: 0, request: 1, thread: 0, rank: 0, bank: 0 },
            Event::RankComputed {
                at: 0,
                batch: 1,
                max_total: true,
                entries: vec![crate::RankEntry {
                    thread: 0,
                    rank: 0,
                    max_bank_load: 1,
                    total_load: 1,
                }],
            },
            Event::CommandIssued {
                at: 0,
                request: 1,
                thread: 0,
                kind: CmdKind::Activate,
                rank: 0,
                bank: 0,
                row: 4,
                col: 0,
                marked: true,
                service: Some(ServiceClass::Closed),
                data_end: None,
            },
            Event::CommandIssued {
                at: 60,
                request: 1,
                thread: 0,
                kind: CmdKind::Read,
                rank: 0,
                bank: 0,
                row: 4,
                col: 0,
                marked: true,
                service: None,
                data_end: Some(110),
            },
            Event::Completed {
                at: 60,
                request: 1,
                thread: 0,
                write: false,
                arrival: 0,
                finish: 130,
            },
            Event::BatchDrained { at: 130, id: 1, formed_at: 0 },
            Event::WriteDrain { at: 200, start: true, queued: 24 },
            Event::WriteDrain { at: 400, start: false, queued: 8 },
            Event::Refresh { at: 500, rank: 0 },
            Event::BusSample { at: 510, busy_banks: 1, queued_reads: 2, queued_writes: 0 },
        ]
    }

    #[test]
    fn produces_a_complete_json_document_with_all_tracks() {
        let mut sink = ChromeTraceSink::new();
        for e in &stream() {
            sink.record(e);
        }
        assert!(!sink.is_empty());
        let doc = sink.finish();
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.trim_end().ends_with("]}"));
        // Balanced braces/brackets — a cheap well-formedness check given the
        // document is built from straight-line formatting (no string data
        // that could contain brackets).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        for needle in [
            "\"name\":\"banks\"",
            "\"name\":\"threads\"",
            "\"name\":\"scheduler\"",
            "\"name\":\"bank 0\"",
            "\"name\":\"thread 0\"",
            "\"name\":\"ACT\"",
            "\"name\":\"RD\"",
            "\"name\":\"read\"",
            "\"name\":\"batch 1\"",
            "\"name\":\"rank\"",
            "\"name\":\"write drain\"",
            "\"name\":\"refresh\"",
            "\"name\":\"busy_banks\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn batch_span_covers_formation_to_drain() {
        let mut sink = ChromeTraceSink::new();
        for e in &stream() {
            sink.record(e);
        }
        let doc = sink.finish();
        let batch_line =
            doc.lines().find(|l| l.contains("\"name\":\"batch 1\"")).expect("batch slice");
        assert!(batch_line.contains("\"ts\":0"), "{batch_line}");
        assert!(batch_line.contains("\"dur\":130"), "{batch_line}");
    }

    #[test]
    fn column_command_duration_is_the_data_transfer() {
        let mut sink = ChromeTraceSink::new();
        for e in &stream() {
            sink.record(e);
        }
        let doc = sink.finish();
        let rd = doc.lines().find(|l| l.contains("\"name\":\"RD\"")).expect("read slice");
        assert!(rd.contains("\"ts\":60") && rd.contains("\"dur\":50"), "{rd}");
    }

    #[test]
    fn unclosed_drain_window_is_dropped() {
        let mut sink = ChromeTraceSink::new();
        sink.record(&Event::WriteDrain { at: 10, start: true, queued: 20 });
        let doc = sink.finish();
        assert!(!doc.contains("\"name\":\"write drain\"") || !doc.contains("\"ph\":\"X\""));
    }
}
