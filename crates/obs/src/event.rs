//! The structured event vocabulary of the observability bus.
//!
//! Events are plain scalar data — request ids, thread indices, bank numbers,
//! cycles — so this crate stays a leaf: the DRAM substrate, the schedulers
//! and the sim runner all *emit* events without this crate depending on any
//! of their types. Every event carries the processor cycle it happened at.

/// The DRAM command class an issued command belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdKind {
    /// Row activation (open a row into the row buffer).
    Activate,
    /// Column read from the open row.
    Read,
    /// Column write into the open row.
    Write,
    /// Precharge (close the open row).
    Precharge,
}

impl CmdKind {
    /// Short name used in JSON output ("ACT", "RD", "WR", "PRE").
    #[must_use]
    pub fn short(self) -> &'static str {
        match self {
            CmdKind::Activate => "ACT",
            CmdKind::Read => "RD",
            CmdKind::Write => "WR",
            CmdKind::Precharge => "PRE",
        }
    }

    /// One-character glyph used by ASCII timelines (`A`/`R`/`W`/`P`).
    #[must_use]
    pub fn glyph(self) -> u8 {
        match self {
            CmdKind::Activate => b'A',
            CmdKind::Read => b'R',
            CmdKind::Write => b'W',
            CmdKind::Precharge => b'P',
        }
    }
}

/// How a request found its bank's row buffer when its *first* command
/// issued: the paper's row-hit / row-closed / row-conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// The needed row was already open (column command issued directly).
    Hit,
    /// The bank was precharged (activate first).
    Closed,
    /// Another row was open (precharge, then activate).
    Conflict,
}

impl ServiceClass {
    /// Lower-case name used in JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceClass::Hit => "hit",
            ServiceClass::Closed => "closed",
            ServiceClass::Conflict => "conflict",
        }
    }
}

/// One thread's position in a computed batch ranking, with the Rule 3 load
/// figures it was ranked by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RankEntry {
    /// Thread index.
    pub thread: usize,
    /// Assigned rank (0 = highest priority).
    pub rank: u32,
    /// The thread's maximum marked-request count over any single bank.
    pub max_bank_load: u32,
    /// The thread's total marked-request count.
    pub total_load: u32,
}

/// One observable occurrence in the memory system.
///
/// The stream emitted by an instrumented controller is totally ordered by
/// emission (and non-decreasing in `at`); sinks may rely on seeing a
/// request's `Enqueued` before its commands and its commands before its
/// `Completed`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request entered the controller's read or write buffer.
    Enqueued {
        /// Arrival cycle.
        at: u64,
        /// Request id.
        request: u64,
        /// Issuing thread.
        thread: usize,
        /// True for writes.
        write: bool,
        /// Target rank within the channel.
        rank: usize,
        /// Target bank (channel-global index).
        bank: usize,
        /// Target row.
        row: u64,
    },
    /// A queued read was marked into the current batch (PAR-BS Rule 1).
    Marked {
        /// Marking cycle.
        at: u64,
        /// Request id.
        request: u64,
        /// Issuing thread.
        thread: usize,
        /// Target rank within the channel.
        rank: usize,
        /// Target bank (channel-global index).
        bank: usize,
    },
    /// A new batch formed. Emitted *before* the batch's `Marked` events.
    BatchFormed {
        /// Formation cycle.
        at: u64,
        /// Batch sequence number (1-based; matches `ParBsStats::batches_formed`).
        id: u64,
        /// Number of requests marked at formation.
        marked: u32,
        /// Marking-Cap in force (`None` = uncapped).
        cap: Option<u32>,
        /// True when batches are exclusive (full/empty-slot batching): batch
        /// N+1 may only form after batch N drains. Static time-based
        /// batching renews marks on a period instead and sets this false.
        exclusive: bool,
        /// Requests marked at formation per thread, sorted by thread index.
        per_thread: Vec<(usize, u32)>,
    },
    /// The previous batch's last marked request finished (batch drained).
    BatchDrained {
        /// Drain observation cycle.
        at: u64,
        /// Batch sequence number.
        id: u64,
        /// Cycle the batch formed at (span start).
        formed_at: u64,
    },
    /// A thread ranking was computed over the marked requests (Rule 3).
    RankComputed {
        /// Computation cycle.
        at: u64,
        /// Batch sequence number the ranking belongs to.
        batch: u64,
        /// True when the Max-Total (shortest-job-first) scheme produced it,
        /// i.e. the `InvariantSink` may check the ordering.
        max_total: bool,
        /// Ranking entries, sorted by ascending rank.
        entries: Vec<RankEntry>,
    },
    /// A DRAM command was placed on the command bus for a request.
    CommandIssued {
        /// Issue cycle.
        at: u64,
        /// Request id the command belongs to.
        request: u64,
        /// Issuing thread.
        thread: usize,
        /// Command class.
        kind: CmdKind,
        /// Target rank within the channel.
        rank: usize,
        /// Target bank (channel-global index).
        bank: usize,
        /// Target row (for precharge: the row being closed).
        row: u64,
        /// Target column.
        col: u64,
        /// Whether the request was marked (in the current batch).
        marked: bool,
        /// Row-buffer classification, present on the request's first command.
        service: Option<ServiceClass>,
        /// For column commands: the cycle the data transfer ends.
        data_end: Option<u64>,
    },
    /// A request's data transfer (plus front-end latency) completed.
    Completed {
        /// Cycle the completion was scheduled (column-command issue time).
        at: u64,
        /// Request id.
        request: u64,
        /// Issuing thread.
        thread: usize,
        /// True for writes.
        write: bool,
        /// Arrival cycle (span start).
        arrival: u64,
        /// Cycle the requesting core observes the data (span end).
        finish: u64,
    },
    /// The controller entered (`start = true`) or left write-drain mode.
    WriteDrain {
        /// Transition cycle.
        at: u64,
        /// True when draining begins, false when it ends.
        start: bool,
        /// Write-buffer occupancy at the transition.
        queued: u32,
    },
    /// An all-bank refresh was issued to one rank.
    Refresh {
        /// Issue cycle.
        at: u64,
        /// Refreshed rank.
        rank: usize,
    },
    /// Periodic bank/bus occupancy sample (emitted on change only).
    BusSample {
        /// Sample cycle.
        at: u64,
        /// Banks currently servicing a request.
        busy_banks: u32,
        /// Queued read requests.
        queued_reads: u32,
        /// Queued write requests.
        queued_writes: u32,
    },
    /// BLISS blacklisted a thread after it was serviced too many times in a
    /// row.
    BlacklistSet {
        /// Blacklisting cycle.
        at: u64,
        /// The thread that crossed the consecutive-service threshold.
        thread: usize,
        /// Consecutive column commands the thread had received.
        consecutive: u32,
    },
    /// BLISS's periodic clearing interval expired and the blacklist was
    /// emptied.
    BlacklistCleared {
        /// Clearing cycle.
        at: u64,
        /// Threads removed from the blacklist.
        cleared: u32,
    },
    /// An ATLAS quantum expired: long-term attained service was aged and the
    /// least-attained-service thread ranking recomputed.
    QuantumRolled {
        /// Rollover cycle.
        at: u64,
        /// 1-based quantum sequence number.
        quantum: u64,
        /// `(thread, rank, attained_service)` entries, sorted by ascending
        /// rank (rank 0 = least attained service = highest priority).
        ranking: Vec<(usize, u32, u64)>,
    },
}

impl Event {
    /// The processor cycle the event occurred at.
    #[must_use]
    pub fn at(&self) -> u64 {
        match *self {
            Event::Enqueued { at, .. }
            | Event::Marked { at, .. }
            | Event::BatchFormed { at, .. }
            | Event::BatchDrained { at, .. }
            | Event::RankComputed { at, .. }
            | Event::CommandIssued { at, .. }
            | Event::Completed { at, .. }
            | Event::WriteDrain { at, .. }
            | Event::Refresh { at, .. }
            | Event::BusSample { at, .. }
            | Event::BlacklistSet { at, .. }
            | Event::BlacklistCleared { at, .. }
            | Event::QuantumRolled { at, .. } => at,
        }
    }

    /// The event's variant name, as used in JSON output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::Enqueued { .. } => "enqueued",
            Event::Marked { .. } => "marked",
            Event::BatchFormed { .. } => "batch_formed",
            Event::BatchDrained { .. } => "batch_drained",
            Event::RankComputed { .. } => "rank_computed",
            Event::CommandIssued { .. } => "command_issued",
            Event::Completed { .. } => "completed",
            Event::WriteDrain { .. } => "write_drain",
            Event::Refresh { .. } => "refresh",
            Event::BusSample { .. } => "bus_sample",
            Event::BlacklistSet { .. } => "blacklist_set",
            Event::BlacklistCleared { .. } => "blacklist_cleared",
            Event::QuantumRolled { .. } => "quantum_rolled",
        }
    }

    /// Renders the event as a single-line JSON object (the JSONL record
    /// format; all JSON in this crate is hand-rolled — no serializer
    /// dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"type\":\"{}\",\"at\":{}", self.name(), self.at());
        match self {
            Event::Enqueued { request, thread, write, rank, bank, row, .. } => {
                let _ = write!(
                    s,
                    ",\"req\":{request},\"thread\":{thread},\"write\":{write},\"rank\":{rank},\"bank\":{bank},\"row\":{row}"
                );
            }
            Event::Marked { request, thread, rank, bank, .. } => {
                let _ = write!(
                    s,
                    ",\"req\":{request},\"thread\":{thread},\"rank\":{rank},\"bank\":{bank}"
                );
            }
            Event::BatchFormed { id, marked, cap, exclusive, per_thread, .. } => {
                let _ = write!(s, ",\"id\":{id},\"marked\":{marked},\"cap\":");
                match cap {
                    Some(c) => {
                        let _ = write!(s, "{c}");
                    }
                    None => s.push_str("null"),
                }
                let _ = write!(s, ",\"exclusive\":{exclusive},\"per_thread\":[");
                for (i, (t, n)) in per_thread.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{t},{n}]");
                }
                s.push(']');
            }
            Event::BatchDrained { id, formed_at, .. } => {
                let _ = write!(s, ",\"id\":{id},\"formed_at\":{formed_at}");
            }
            Event::RankComputed { batch, max_total, entries, .. } => {
                let _ = write!(s, ",\"batch\":{batch},\"max_total\":{max_total},\"ranking\":[");
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"thread\":{},\"rank\":{},\"max\":{},\"total\":{}}}",
                        e.thread, e.rank, e.max_bank_load, e.total_load
                    );
                }
                s.push(']');
            }
            Event::CommandIssued {
                request,
                thread,
                kind,
                rank,
                bank,
                row,
                col,
                marked,
                service,
                data_end,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"req\":{request},\"thread\":{thread},\"cmd\":\"{}\",\"rank\":{rank},\"bank\":{bank},\"row\":{row},\"col\":{col},\"marked\":{marked}",
                    kind.short()
                );
                if let Some(class) = service {
                    let _ = write!(s, ",\"class\":\"{}\"", class.name());
                }
                if let Some(end) = data_end {
                    let _ = write!(s, ",\"data_end\":{end}");
                }
            }
            Event::Completed { request, thread, write, arrival, finish, .. } => {
                let _ = write!(
                    s,
                    ",\"req\":{request},\"thread\":{thread},\"write\":{write},\"arrival\":{arrival},\"finish\":{finish},\"latency\":{}",
                    finish.saturating_sub(*arrival)
                );
            }
            Event::WriteDrain { start, queued, .. } => {
                let _ = write!(s, ",\"start\":{start},\"queued\":{queued}");
            }
            Event::Refresh { rank, .. } => {
                let _ = write!(s, ",\"rank\":{rank}");
            }
            Event::BusSample { busy_banks, queued_reads, queued_writes, .. } => {
                let _ = write!(
                    s,
                    ",\"busy_banks\":{busy_banks},\"queued_reads\":{queued_reads},\"queued_writes\":{queued_writes}"
                );
            }
            Event::BlacklistSet { thread, consecutive, .. } => {
                let _ = write!(s, ",\"thread\":{thread},\"consecutive\":{consecutive}");
            }
            Event::BlacklistCleared { cleared, .. } => {
                let _ = write!(s, ",\"cleared\":{cleared}");
            }
            Event::QuantumRolled { quantum, ranking, .. } => {
                let _ = write!(s, ",\"quantum\":{quantum},\"ranking\":[");
                for (i, (t, r, svc)) in ranking.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{{\"thread\":{t},\"rank\":{r},\"attained\":{svc}}}");
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_and_name_cover_every_variant() {
        let events = vec![
            Event::Enqueued {
                at: 1,
                request: 0,
                thread: 0,
                write: false,
                rank: 0,
                bank: 0,
                row: 0,
            },
            Event::Marked { at: 2, request: 0, thread: 0, rank: 0, bank: 0 },
            Event::BatchFormed {
                at: 3,
                id: 1,
                marked: 1,
                cap: Some(5),
                exclusive: true,
                per_thread: vec![(0, 1)],
            },
            Event::BatchDrained { at: 4, id: 1, formed_at: 3 },
            Event::RankComputed {
                at: 5,
                batch: 1,
                max_total: true,
                entries: vec![RankEntry { thread: 0, rank: 0, max_bank_load: 1, total_load: 1 }],
            },
            Event::CommandIssued {
                at: 6,
                request: 0,
                thread: 0,
                kind: CmdKind::Read,
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
                marked: true,
                service: Some(ServiceClass::Hit),
                data_end: Some(40),
            },
            Event::Completed { at: 7, request: 0, thread: 0, write: false, arrival: 1, finish: 50 },
            Event::WriteDrain { at: 8, start: true, queued: 20 },
            Event::Refresh { at: 9, rank: 1 },
            Event::BusSample { at: 10, busy_banks: 2, queued_reads: 3, queued_writes: 0 },
            Event::BlacklistSet { at: 11, thread: 1, consecutive: 4 },
            Event::BlacklistCleared { at: 12, cleared: 2 },
            Event::QuantumRolled { at: 13, quantum: 1, ranking: vec![(0, 0, 123), (1, 1, 456)] },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.at(), (i + 1) as u64);
            assert!(!e.name().is_empty());
            let json = e.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains(&format!("\"type\":\"{}\"", e.name())));
            assert!(!json.contains('\n'), "JSONL records are single-line");
        }
    }

    #[test]
    fn uncapped_batch_serializes_null_cap() {
        let e = Event::BatchFormed {
            at: 0,
            id: 1,
            marked: 2,
            cap: None,
            exclusive: true,
            per_thread: vec![],
        };
        assert!(e.to_json().contains("\"cap\":null"));
    }

    #[test]
    fn cmd_kind_names_and_glyphs() {
        assert_eq!(CmdKind::Activate.short(), "ACT");
        assert_eq!(CmdKind::Precharge.glyph(), b'P');
        assert_eq!(ServiceClass::Conflict.name(), "conflict");
    }
}
