//! The [`EventSink`] trait plus structural sinks (collect, fan-out).

use std::any::Any;

use crate::Event;

/// A consumer of the observability event stream.
///
/// Sinks receive every event an instrumented component emits, in emission
/// order. The `Any` supertrait lets callers recover a concrete sink from a
/// `Box<dyn EventSink>` after a run (see [`downcast_sink`]), so results can
/// be extracted without threading concrete types through the simulator.
pub trait EventSink: Any {
    /// Observe one event.
    fn record(&mut self, event: &Event);
}

impl dyn EventSink {
    /// Borrows the sink as its concrete type, if it is a `T`.
    #[must_use]
    pub fn downcast_ref<T: EventSink>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows the sink as its concrete type, if it is a `T`.
    #[must_use]
    pub fn downcast_mut<T: EventSink>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut::<T>()
    }
}

/// Recovers the concrete sink type from a boxed [`EventSink`], returning the
/// box unchanged on a type mismatch.
///
/// # Errors
///
/// Returns `Err(sink)` when the sink is not a `T`.
pub fn downcast_sink<T: EventSink>(sink: Box<dyn EventSink>) -> Result<Box<T>, Box<dyn EventSink>> {
    if (sink.as_ref() as &dyn Any).is::<T>() {
        let any: Box<dyn Any> = sink;
        Ok(any.downcast::<T>().expect("type was just checked"))
    } else {
        Err(sink)
    }
}

/// The simplest sink: buffers every event in memory, in order. Useful for
/// tests and for post-run rendering (e.g. ASCII timelines).
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Vec<Event>,
}

impl CollectSink {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl EventSink for CollectSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Broadcasts each event to several child sinks, in push order.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl FanoutSink {
    /// Creates an empty fan-out.
    #[must_use]
    pub fn new() -> Self {
        FanoutSink::default()
    }

    /// Adds a child sink.
    pub fn push(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Number of child sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no child sinks are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Consumes the fan-out, returning its child sinks in push order.
    #[must_use]
    pub fn into_sinks(self) -> Vec<Box<dyn EventSink>> {
        self.sinks
    }
}

impl EventSink for FanoutSink {
    fn record(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh(at: u64) -> Event {
        Event::Refresh { at, rank: 0 }
    }

    #[test]
    fn collect_sink_preserves_order() {
        let mut sink = CollectSink::new();
        for at in 0..5 {
            sink.record(&refresh(at));
        }
        let ats: Vec<u64> = sink.into_events().iter().map(Event::at).collect();
        assert_eq!(ats, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn fanout_broadcasts_to_all_children() {
        let mut fan = FanoutSink::new();
        fan.push(Box::new(CollectSink::new()));
        fan.push(Box::new(CollectSink::new()));
        fan.record(&refresh(7));
        for child in fan.into_sinks() {
            let Ok(collect) = downcast_sink::<CollectSink>(child) else {
                panic!("child is a CollectSink");
            };
            assert_eq!(collect.events().len(), 1);
        }
    }

    #[test]
    fn downcast_sink_round_trips_and_rejects_mismatches() {
        let boxed: Box<dyn EventSink> = Box::new(CollectSink::new());
        assert!(boxed.downcast_ref::<CollectSink>().is_some());
        assert!(downcast_sink::<FanoutSink>(boxed).is_err());
        let boxed: Box<dyn EventSink> = Box::new(CollectSink::new());
        assert!(downcast_sink::<CollectSink>(boxed).is_ok());
    }
}
