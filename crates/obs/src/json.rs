//! Parsing JSONL records back into [`Event`]s — the inverse of
//! [`Event::to_json`], used by offline trace replay (`parbs-sim monitor
//! --replay`).
//!
//! The grammar accepted here is ordinary JSON (the parser is a small
//! hand-rolled recursive-descent over a value enum; no serializer/
//! deserializer dependency, matching the writer side). Round-trip
//! losslessness over the *full* event enum is property-tested in
//! `tests/event_roundtrip.rs`: for every variant,
//! `Event::from_json(&e.to_json()) == e`.

use std::collections::BTreeMap;

use crate::{CmdKind, Event, RankEntry, ServiceClass};

/// Why a JSONL line failed to parse back into an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventError {
    /// What went wrong, with enough context to locate the bad field.
    pub message: String,
}

impl std::fmt::Display for ParseEventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad event record: {}", self.message)
    }
}

impl std::error::Error for ParseEventError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseEventError> {
    Err(ParseEventError { message: message.into() })
}

/// A parsed JSON value. Only the shapes [`Event::to_json`] emits are given
/// first-class accessors; anything valid-but-unexpected surfaces as a typed
/// error naming the field.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    /// All numbers the event writer emits are unsigned integers.
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseEventError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, ParseEventError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseEventError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, ParseEventError> {
        if self.peek() == Some(b'-') {
            return err("negative numbers never appear in event records");
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return err("non-integer numbers never appear in event records");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        match text.parse::<u64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => err(format!("number '{text}' does not fit in u64")),
        }
    }

    fn string(&mut self) -> Result<String, ParseEventError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return err(format!(
                                "unsupported escape {:?} (event strings are plain ASCII)",
                                other.map(|c| c as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through byte by byte;
                    // the input started as &str so the bytes are valid.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slice of a str on char boundaries"),
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseEventError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseEventError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Field accessors over the parsed record object.
struct Record<'a> {
    ty: &'a str,
    fields: &'a BTreeMap<String, Value>,
}

impl Record<'_> {
    fn get(&self, key: &str) -> Result<&Value, ParseEventError> {
        self.fields.get(key).ok_or_else(|| ParseEventError {
            message: format!("'{}' record is missing field '{key}'", self.ty),
        })
    }

    fn num(&self, key: &str) -> Result<u64, ParseEventError> {
        match self.get(key)? {
            Value::Num(n) => Ok(*n),
            other => err(format!("field '{key}' of '{}' must be a number, got {other:?}", self.ty)),
        }
    }

    fn idx(&self, key: &str) -> Result<usize, ParseEventError> {
        usize::try_from(self.num(key)?)
            .map_err(|_| ParseEventError { message: format!("field '{key}' exceeds usize") })
    }

    fn u32(&self, key: &str) -> Result<u32, ParseEventError> {
        u32::try_from(self.num(key)?)
            .map_err(|_| ParseEventError { message: format!("field '{key}' exceeds u32") })
    }

    fn boolean(&self, key: &str) -> Result<bool, ParseEventError> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            other => err(format!("field '{key}' of '{}' must be a bool, got {other:?}", self.ty)),
        }
    }

    fn str(&self, key: &str) -> Result<&str, ParseEventError> {
        match self.get(key)? {
            Value::Str(s) => Ok(s),
            other => err(format!("field '{key}' of '{}' must be a string, got {other:?}", self.ty)),
        }
    }

    fn arr(&self, key: &str) -> Result<&[Value], ParseEventError> {
        match self.get(key)? {
            Value::Arr(items) => Ok(items),
            other => err(format!("field '{key}' of '{}' must be an array, got {other:?}", self.ty)),
        }
    }
}

fn obj_num(v: &Value, key: &str, ctx: &str) -> Result<u64, ParseEventError> {
    let Value::Obj(map) = v else {
        return err(format!("{ctx} entries must be objects, got {v:?}"));
    };
    match map.get(key) {
        Some(Value::Num(n)) => Ok(*n),
        other => err(format!("{ctx} entry field '{key}' must be a number, got {other:?}")),
    }
}

fn pair(v: &Value, ctx: &str) -> Result<(u64, u64), ParseEventError> {
    let Value::Arr(items) = v else {
        return err(format!("{ctx} entries must be two-element arrays, got {v:?}"));
    };
    match items.as_slice() {
        [Value::Num(a), Value::Num(b)] => Ok((*a, *b)),
        _ => err(format!("{ctx} entries must be two-element number arrays, got {items:?}")),
    }
}

impl CmdKind {
    /// Inverse of [`CmdKind::short`].
    #[must_use]
    pub fn parse_short(s: &str) -> Option<CmdKind> {
        match s {
            "ACT" => Some(CmdKind::Activate),
            "RD" => Some(CmdKind::Read),
            "WR" => Some(CmdKind::Write),
            "PRE" => Some(CmdKind::Precharge),
            _ => None,
        }
    }
}

impl ServiceClass {
    /// Inverse of [`ServiceClass::name`].
    #[must_use]
    pub fn parse_name(s: &str) -> Option<ServiceClass> {
        match s {
            "hit" => Some(ServiceClass::Hit),
            "closed" => Some(ServiceClass::Closed),
            "conflict" => Some(ServiceClass::Conflict),
            _ => None,
        }
    }
}

impl Event {
    /// Parses one JSONL record (as produced by [`Event::to_json`] /
    /// [`crate::JsonlSink`]) back into the event it came from.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseEventError`] naming the offending field when the
    /// line is not valid JSON, is missing a field, or types a field wrongly
    /// — replay must never silently drop or zero a field.
    pub fn from_json(line: &str) -> Result<Event, ParseEventError> {
        let mut p = Parser::new(line);
        let value = p.value()?;
        p.skip_ws();
        if p.pos != line.len() {
            return err(format!("trailing garbage after record at byte {}", p.pos));
        }
        let Value::Obj(fields) = &value else {
            return err("a JSONL record must be a JSON object");
        };
        let ty = match fields.get("type") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return err("record has no string 'type' field"),
        };
        let r = Record { ty, fields };
        let at = r.num("at")?;
        match ty {
            "enqueued" => Ok(Event::Enqueued {
                at,
                request: r.num("req")?,
                thread: r.idx("thread")?,
                write: r.boolean("write")?,
                rank: r.idx("rank")?,
                bank: r.idx("bank")?,
                row: r.num("row")?,
            }),
            "marked" => Ok(Event::Marked {
                at,
                request: r.num("req")?,
                thread: r.idx("thread")?,
                rank: r.idx("rank")?,
                bank: r.idx("bank")?,
            }),
            "batch_formed" => {
                let cap = match r.get("cap")? {
                    Value::Null => None,
                    Value::Num(n) => Some(u32::try_from(*n).map_err(|_| ParseEventError {
                        message: "field 'cap' exceeds u32".into(),
                    })?),
                    other => {
                        return err(format!("field 'cap' must be a number or null, got {other:?}"))
                    }
                };
                let per_thread = r
                    .arr("per_thread")?
                    .iter()
                    .map(|v| {
                        let (t, n) = pair(v, "per_thread")?;
                        Ok((
                            usize::try_from(t).map_err(|_| ParseEventError {
                                message: "per_thread thread exceeds usize".into(),
                            })?,
                            u32::try_from(n).map_err(|_| ParseEventError {
                                message: "per_thread count exceeds u32".into(),
                            })?,
                        ))
                    })
                    .collect::<Result<Vec<_>, ParseEventError>>()?;
                Ok(Event::BatchFormed {
                    at,
                    id: r.num("id")?,
                    marked: r.u32("marked")?,
                    cap,
                    exclusive: r.boolean("exclusive")?,
                    per_thread,
                })
            }
            "batch_drained" => {
                Ok(Event::BatchDrained { at, id: r.num("id")?, formed_at: r.num("formed_at")? })
            }
            "rank_computed" => {
                let entries = r
                    .arr("ranking")?
                    .iter()
                    .map(|v| {
                        Ok(RankEntry {
                            thread: usize::try_from(obj_num(v, "thread", "ranking")?).map_err(
                                |_| ParseEventError {
                                    message: "ranking thread exceeds usize".into(),
                                },
                            )?,
                            rank: u32::try_from(obj_num(v, "rank", "ranking")?).map_err(|_| {
                                ParseEventError { message: "ranking rank exceeds u32".into() }
                            })?,
                            max_bank_load: u32::try_from(obj_num(v, "max", "ranking")?).map_err(
                                |_| ParseEventError { message: "ranking max exceeds u32".into() },
                            )?,
                            total_load: u32::try_from(obj_num(v, "total", "ranking")?).map_err(
                                |_| ParseEventError { message: "ranking total exceeds u32".into() },
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, ParseEventError>>()?;
                Ok(Event::RankComputed {
                    at,
                    batch: r.num("batch")?,
                    max_total: r.boolean("max_total")?,
                    entries,
                })
            }
            "command_issued" => {
                let kind = CmdKind::parse_short(r.str("cmd")?).ok_or_else(|| ParseEventError {
                    message: format!("unknown command kind '{}'", r.str("cmd").unwrap_or("?")),
                })?;
                let service = match r.fields.get("class") {
                    None => None,
                    Some(Value::Str(s)) => Some(ServiceClass::parse_name(s).ok_or_else(|| {
                        ParseEventError { message: format!("unknown service class '{s}'") }
                    })?),
                    Some(other) => {
                        return err(format!("field 'class' must be a string, got {other:?}"))
                    }
                };
                let data_end = match r.fields.get("data_end") {
                    None => None,
                    Some(Value::Num(n)) => Some(*n),
                    Some(other) => {
                        return err(format!("field 'data_end' must be a number, got {other:?}"))
                    }
                };
                Ok(Event::CommandIssued {
                    at,
                    request: r.num("req")?,
                    thread: r.idx("thread")?,
                    kind,
                    rank: r.idx("rank")?,
                    bank: r.idx("bank")?,
                    row: r.num("row")?,
                    col: r.num("col")?,
                    marked: r.boolean("marked")?,
                    service,
                    data_end,
                })
            }
            "completed" => Ok(Event::Completed {
                at,
                request: r.num("req")?,
                thread: r.idx("thread")?,
                write: r.boolean("write")?,
                arrival: r.num("arrival")?,
                finish: r.num("finish")?,
            }),
            "write_drain" => {
                Ok(Event::WriteDrain { at, start: r.boolean("start")?, queued: r.u32("queued")? })
            }
            "refresh" => Ok(Event::Refresh { at, rank: r.idx("rank")? }),
            "bus_sample" => Ok(Event::BusSample {
                at,
                busy_banks: r.u32("busy_banks")?,
                queued_reads: r.u32("queued_reads")?,
                queued_writes: r.u32("queued_writes")?,
            }),
            "blacklist_set" => Ok(Event::BlacklistSet {
                at,
                thread: r.idx("thread")?,
                consecutive: r.u32("consecutive")?,
            }),
            "blacklist_cleared" => Ok(Event::BlacklistCleared { at, cleared: r.u32("cleared")? }),
            "quantum_rolled" => {
                let ranking = r
                    .arr("ranking")?
                    .iter()
                    .map(|v| {
                        Ok((
                            usize::try_from(obj_num(v, "thread", "ranking")?).map_err(|_| {
                                ParseEventError { message: "ranking thread exceeds usize".into() }
                            })?,
                            u32::try_from(obj_num(v, "rank", "ranking")?).map_err(|_| {
                                ParseEventError { message: "ranking rank exceeds u32".into() }
                            })?,
                            obj_num(v, "attained", "ranking")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, ParseEventError>>()?;
                Ok(Event::QuantumRolled { at, quantum: r.num("quantum")?, ranking })
            }
            other => err(format!("unknown event type '{other}'")),
        }
    }
}

/// Parses a whole JSONL document (one record per non-empty line) back into
/// events, reporting the first bad line by 1-based line number.
///
/// # Errors
///
/// Returns the offending line number and its [`ParseEventError`].
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, (usize, ParseEventError)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(Event::from_json(line).map_err(|e| (i + 1, e))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_hand_written_variant_round_trips() {
        let events = vec![
            Event::Enqueued {
                at: 1,
                request: 9,
                thread: 3,
                write: true,
                rank: 1,
                bank: 7,
                row: 42,
            },
            Event::Marked { at: 2, request: 9, thread: 3, rank: 1, bank: 7 },
            Event::BatchFormed {
                at: 3,
                id: 4,
                marked: 6,
                cap: Some(5),
                exclusive: true,
                per_thread: vec![(0, 2), (3, 4)],
            },
            Event::BatchFormed {
                at: 3,
                id: 5,
                marked: 0,
                cap: None,
                exclusive: false,
                per_thread: vec![],
            },
            Event::BatchDrained { at: 4, id: 4, formed_at: 3 },
            Event::RankComputed {
                at: 5,
                batch: 4,
                max_total: true,
                entries: vec![RankEntry { thread: 1, rank: 0, max_bank_load: 2, total_load: 3 }],
            },
            Event::CommandIssued {
                at: 6,
                request: 9,
                thread: 3,
                kind: CmdKind::Write,
                rank: 1,
                bank: 7,
                row: 42,
                col: 11,
                marked: false,
                service: Some(ServiceClass::Conflict),
                data_end: None,
            },
            Event::Completed { at: 7, request: 9, thread: 3, write: false, arrival: 1, finish: 70 },
            Event::WriteDrain { at: 8, start: false, queued: 12 },
            Event::Refresh { at: 9, rank: 1 },
            Event::BusSample { at: 10, busy_banks: 4, queued_reads: 9, queued_writes: 2 },
            Event::BlacklistSet { at: 11, thread: 5, consecutive: 4 },
            Event::BlacklistCleared { at: 12, cleared: 3 },
            Event::QuantumRolled { at: 13, quantum: 2, ranking: vec![(5, 0, 999)] },
        ];
        for e in events {
            let json = e.to_json();
            assert_eq!(Event::from_json(&json), Ok(e), "{json}");
        }
    }

    #[test]
    fn errors_name_the_offending_field() {
        let e = Event::from_json("{\"type\":\"marked\",\"at\":1,\"req\":2}").unwrap_err();
        assert!(e.message.contains("'thread'"), "{e}");
        let e = Event::from_json("{\"type\":\"warp\",\"at\":1}").unwrap_err();
        assert!(e.message.contains("unknown event type"), "{e}");
        let e = Event::from_json("{\"at\":1}").unwrap_err();
        assert!(e.message.contains("'type'"), "{e}");
        assert!(Event::from_json("not json").is_err());
        let e = Event::from_json("{\"type\":\"refresh\",\"at\":1,\"rank\":0} tail").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let text = "{\"type\":\"refresh\",\"at\":1,\"rank\":0}\n\nnope\n";
        let (line, _) = parse_jsonl(text).unwrap_err();
        assert_eq!(line, 3);
        let ok = parse_jsonl("{\"type\":\"refresh\",\"at\":1,\"rank\":0}\n").unwrap();
        assert_eq!(ok.len(), 1);
    }
}
