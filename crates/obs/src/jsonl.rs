//! [`JsonlSink`]: streams each event as one JSON object per line (JSONL),
//! suitable for `grep`/`jq` pipelines and for appending to long-run logs.

use std::io::Write;

use crate::{Event, EventSink};

/// Writes each event as a single JSON line into any [`std::io::Write`]
/// target (a `Vec<u8>` for in-memory capture, a `BufWriter<File>` for
/// streaming to disk).
///
/// Write errors are not surfaced mid-run (the sink API is infallible by
/// design); the first error is remembered and can be inspected after the
/// run via [`JsonlSink::error`].
#[derive(Debug)]
pub struct JsonlSink<W: Write + 'static> {
    writer: W,
    lines: u64,
    error: Option<std::io::ErrorKind>,
}

impl<W: Write + 'static> JsonlSink<W> {
    /// Creates a sink writing into `writer`.
    #[must_use]
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0, error: None }
    }

    /// Number of lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first write error encountered, if any.
    #[must_use]
    pub fn error(&self) -> Option<std::io::ErrorKind> {
        self.error
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl JsonlSink<Vec<u8>> {
    /// Convenience constructor for in-memory capture.
    #[must_use]
    pub fn to_vec() -> Self {
        JsonlSink::new(Vec::new())
    }

    /// Consumes the sink, returning the captured text.
    ///
    /// # Panics
    ///
    /// Panics if the captured bytes are not UTF-8, which cannot happen for
    /// output produced by this sink.
    #[must_use]
    pub fn into_string(self) -> String {
        String::from_utf8(self.into_inner()).expect("JSONL output is ASCII")
    }
}

impl<W: Write + 'static> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json();
        if let Err(e) =
            self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e.kind());
            return;
        }
        self.lines += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_per_event() {
        let mut sink = JsonlSink::to_vec();
        sink.record(&Event::Refresh { at: 5, rank: 0 });
        sink.record(&Event::Enqueued {
            at: 6,
            request: 1,
            thread: 0,
            write: false,
            rank: 0,
            bank: 2,
            row: 3,
        });
        assert_eq!(sink.lines(), 2);
        assert!(sink.error().is_none());
        let text = sink.into_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"refresh\""));
        assert!(lines[1].contains("\"type\":\"enqueued\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn write_errors_stop_the_sink_without_panicking() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("boom"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(&Event::Refresh { at: 0, rank: 0 });
        sink.record(&Event::Refresh { at: 1, rank: 0 });
        assert_eq!(sink.lines(), 0);
        assert!(sink.error().is_some());
    }
}
