//! [`InvariantSink`]: online checking of the PAR-BS batching invariants
//! over the event stream, with violation reports that carry the offending
//! event window.
//!
//! The checks are *event-derivable* restatements of the paper's rules — they
//! use only information present in the stream, so the checker is sound for
//! any scheduler wired to the bus (policies that never mark requests, like
//! FR-FCFS, trivially satisfy every batching invariant):
//!
//! 1. **MarkedFirst** (Rule 2, batched-first): a column `RD` must not issue
//!    for an *unmarked* read while a *marked* read to the **same bank and
//!    row** is queued. Such a pair has identical readiness (same bank
//!    timing, same open row), so servicing the unmarked one means the
//!    scheduler ranked it above a schedulable marked request.
//! 2. **MarkingCap** (Rule 1): at most Marking-Cap requests marked per
//!    (thread, bank) within one batch, using the cap announced by the
//!    batch's `BatchFormed` event (empty-slot latecomers count toward the
//!    same budget).
//! 3. **BatchExclusive** (Rule 1): a new exclusive batch may form only
//!    after every marked request of the previous batch completed. Static
//!    time-based batching announces `exclusive: false` and is exempt.
//! 4. **RankOrder** (Rule 3, Max-Total): a `RankComputed` event claiming
//!    the Max-Total scheme must list threads in non-decreasing
//!    (max-bank-load, total-load) order, and ranks must be `0..n`.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::{CmdKind, Event, EventSink};

/// How many preceding events a violation report carries.
const WINDOW: usize = 24;

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantRule {
    /// An unmarked read was serviced while a marked one was schedulable at
    /// the same bank (same open row).
    MarkedFirst,
    /// More requests than Marking-Cap were marked for one (thread, bank).
    MarkingCap,
    /// A new exclusive batch formed before the previous batch drained.
    BatchExclusive,
    /// A Max-Total ranking was not in shortest-job-first order.
    RankOrder,
}

impl InvariantRule {
    /// Short rule name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InvariantRule::MarkedFirst => "marked-first",
            InvariantRule::MarkingCap => "marking-cap",
            InvariantRule::BatchExclusive => "batch-exclusive",
            InvariantRule::RankOrder => "rank-order",
        }
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken rule.
    pub rule: InvariantRule,
    /// Cycle of the offending event.
    pub at: u64,
    /// The thread the offending event concerns, when the rule names one
    /// (MarkedFirst: the serviced thread; MarkingCap: the over-marked
    /// thread; batch-level rules carry `None`).
    pub thread: Option<usize>,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The offending event plus up to `WINDOW` (24) preceding events,
    /// oldest first (the last entry is the offender).
    pub window: Vec<Event>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] cycle {}: {}", self.rule.name(), self.at, self.message)
    }
}

/// Per-request state the checker tracks between `Enqueued` and `Completed`.
#[derive(Debug, Clone, Copy)]
struct Tracked {
    thread: usize,
    bank: usize,
    row: u64,
    write: bool,
    marked: bool,
}

/// The online PAR-BS invariant checker.
#[derive(Debug, Default)]
pub struct InvariantSink {
    /// Outstanding requests by id.
    tracked: HashMap<u64, Tracked>,
    /// Marking-Cap of the current batch (`None` = uncapped), from the most
    /// recent `BatchFormed`.
    cap: Option<u32>,
    /// Marks charged per (thread, bank) in the current batch.
    marks: HashMap<(usize, usize), u32>,
    /// Ring of recent events for violation context.
    window: VecDeque<Event>,
    violations: Vec<Violation>,
    /// Total events observed.
    pub events: u64,
}

impl InvariantSink {
    /// Creates a checker with no observations.
    #[must_use]
    pub fn new() -> Self {
        InvariantSink::default()
    }

    /// The violations detected so far, in detection order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no invariant has been violated.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line verdict for CLI output.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.ok() {
            format!("{} events checked, 0 violations", self.events)
        } else {
            format!("{} events checked, {} VIOLATION(S)", self.events, self.violations.len())
        }
    }

    fn report(&mut self, rule: InvariantRule, at: u64, thread: Option<usize>, message: String) {
        let window: Vec<Event> = self.window.iter().cloned().collect();
        self.violations.push(Violation { rule, at, thread, message, window });
    }

    fn check_command(&mut self, event: &Event) {
        let Event::CommandIssued { at, request, thread, kind, bank, row, marked, .. } = event
        else {
            return;
        };
        if *kind != CmdKind::Read || *marked {
            return;
        }
        // An unmarked read's column command issued: no marked read to the
        // same (bank, row) may be waiting, because it would have identical
        // readiness and strictly higher (marked-first) priority.
        // `min_by_key` (not `find`) so the named blocker is deterministic
        // despite HashMap iteration order.
        let blocker = self
            .tracked
            .iter()
            .filter(|(id, t)| {
                **id != *request && !t.write && t.marked && t.bank == *bank && t.row == *row
            })
            .min_by_key(|(id, _)| **id);
        if let Some((&blocked_id, t)) = blocker {
            let (b_thread, b_bank) = (t.thread, t.bank);
            self.report(
                InvariantRule::MarkedFirst,
                *at,
                Some(*thread),
                format!(
                    "unmarked read req {request} (thread {thread}) serviced at bank {bank} row {row} \
                     while marked read req {blocked_id} (thread {b_thread}) to bank {b_bank} row {row} was queued"
                ),
            );
        }
    }
}

impl EventSink for InvariantSink {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        if self.window.len() == WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(event.clone());
        match event {
            Event::Enqueued { request, thread, write, bank, row, .. } => {
                self.tracked.insert(
                    *request,
                    Tracked {
                        thread: *thread,
                        bank: *bank,
                        row: *row,
                        write: *write,
                        marked: false,
                    },
                );
            }
            Event::BatchFormed { at, id, cap, exclusive, .. } => {
                if *exclusive {
                    let outstanding =
                        self.tracked.values().filter(|t| t.marked && !t.write).count();
                    if outstanding > 0 {
                        self.report(
                            InvariantRule::BatchExclusive,
                            *at,
                            None,
                            format!(
                                "batch {id} formed while {outstanding} marked request(s) of the \
                                 previous batch were still outstanding"
                            ),
                        );
                    }
                }
                self.cap = *cap;
                self.marks.clear();
            }
            Event::Marked { at, request, thread, bank, .. } => {
                if let Some(t) = self.tracked.get_mut(request) {
                    t.marked = true;
                }
                let used = self.marks.entry((*thread, *bank)).or_insert(0);
                *used += 1;
                if let Some(cap) = self.cap {
                    if *used > cap {
                        let used = *used;
                        self.report(
                            InvariantRule::MarkingCap,
                            *at,
                            Some(*thread),
                            format!(
                                "thread {thread} has {used} marked requests at bank {bank}, \
                                 exceeding Marking-Cap {cap}"
                            ),
                        );
                    }
                }
            }
            Event::RankComputed { at, batch, max_total, entries } => {
                let mut ranks: Vec<u32> = entries.iter().map(|e| e.rank).collect();
                ranks.sort_unstable();
                let is_permutation = ranks.iter().enumerate().all(|(i, &r)| r == i as u32);
                if !is_permutation {
                    self.report(
                        InvariantRule::RankOrder,
                        *at,
                        None,
                        format!(
                            "batch {batch} ranking is not a permutation of 0..{}",
                            entries.len()
                        ),
                    );
                } else if *max_total {
                    let mut by_rank = entries.clone();
                    by_rank.sort_by_key(|e| e.rank);
                    for pair in by_rank.windows(2) {
                        let (a, b) = (&pair[0], &pair[1]);
                        if (a.max_bank_load, a.total_load) > (b.max_bank_load, b.total_load) {
                            self.report(
                                InvariantRule::RankOrder,
                                *at,
                                None,
                                format!(
                                    "batch {batch}: thread {} (max {}, total {}) ranked above \
                                     thread {} (max {}, total {}) — not shortest-job-first",
                                    a.thread,
                                    a.max_bank_load,
                                    a.total_load,
                                    b.thread,
                                    b.max_bank_load,
                                    b.total_load
                                ),
                            );
                            break;
                        }
                    }
                }
            }
            Event::CommandIssued { .. } => self.check_command(event),
            Event::Completed { request, .. } => {
                self.tracked.remove(request);
            }
            Event::BatchDrained { .. }
            | Event::WriteDrain { .. }
            | Event::Refresh { .. }
            | Event::BusSample { .. }
            | Event::BlacklistSet { .. }
            | Event::BlacklistCleared { .. }
            | Event::QuantumRolled { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(request: u64, thread: usize, bank: usize, row: u64) -> Event {
        Event::Enqueued { at: 0, request, thread, write: false, rank: 0, bank, row }
    }

    fn mark(request: u64, thread: usize, bank: usize) -> Event {
        Event::Marked { at: 1, request, thread, rank: 0, bank }
    }

    fn formed(id: u64, cap: Option<u32>, exclusive: bool) -> Event {
        Event::BatchFormed { at: 1, id, marked: 0, cap, exclusive, per_thread: vec![] }
    }

    fn read_cmd(request: u64, thread: usize, bank: usize, row: u64, marked: bool) -> Event {
        Event::CommandIssued {
            at: 2,
            request,
            thread,
            kind: CmdKind::Read,
            rank: 0,
            bank,
            row,
            col: 0,
            marked,
            service: None,
            data_end: Some(50),
        }
    }

    fn done(request: u64) -> Event {
        Event::Completed { at: 3, request, thread: 0, write: false, arrival: 0, finish: 60 }
    }

    fn feed(events: &[Event]) -> InvariantSink {
        let mut sink = InvariantSink::new();
        for e in events {
            sink.record(e);
        }
        sink
    }

    #[test]
    fn clean_batched_stream_passes() {
        let sink = feed(&[
            enq(1, 0, 0, 5),
            enq(2, 1, 0, 5),
            formed(1, Some(5), true),
            mark(1, 0, 0),
            mark(2, 1, 0),
            read_cmd(1, 0, 0, 5, true),
            done(1),
            read_cmd(2, 1, 0, 5, true),
            done(2),
            formed(2, Some(5), true),
        ]);
        assert!(sink.ok(), "{:?}", sink.violations());
        assert_eq!(sink.events, 10);
        assert!(sink.summary().contains("0 violations"));
    }

    #[test]
    fn unmarked_read_over_schedulable_marked_one_fires() {
        let sink = feed(&[
            enq(1, 0, 0, 5),
            enq(2, 1, 0, 5),
            mark(1, 0, 0),
            // Request 2 (unmarked) reads bank 0 row 5 while marked request 1
            // to the same bank+row is still queued.
            read_cmd(2, 1, 0, 5, false),
        ]);
        assert_eq!(sink.violations().len(), 1);
        let v = &sink.violations()[0];
        assert_eq!(v.rule, InvariantRule::MarkedFirst);
        assert_eq!(v.thread, Some(1), "carries the serviced thread");
        assert!(v.message.contains("req 2"));
        assert!(!v.window.is_empty(), "violation carries its event window");
        assert_eq!(v.window.last(), Some(&read_cmd(2, 1, 0, 5, false)));
    }

    #[test]
    fn unmarked_read_to_a_different_row_is_fine() {
        let sink = feed(&[
            enq(1, 0, 0, 5),
            mark(1, 0, 0),
            // Different row: the marked request was NOT schedulable there
            // (its row is closed by serving row 7), so no violation.
            enq(2, 1, 0, 7),
            read_cmd(2, 1, 0, 7, false),
        ]);
        assert!(sink.ok(), "{:?}", sink.violations());
    }

    #[test]
    fn marking_cap_overrun_fires() {
        let sink = feed(&[
            enq(1, 0, 3, 1),
            enq(2, 0, 3, 2),
            enq(3, 0, 3, 3),
            formed(1, Some(2), true),
            mark(1, 0, 3),
            mark(2, 0, 3),
            mark(3, 0, 3),
        ]);
        assert_eq!(sink.violations().len(), 1);
        assert_eq!(sink.violations()[0].rule, InvariantRule::MarkingCap);
        assert_eq!(sink.violations()[0].thread, Some(0));
    }

    #[test]
    fn uncapped_batches_never_trip_the_cap_check() {
        let events: Vec<Event> =
            std::iter::once(formed(1, None, true)).chain((0..40).map(|i| mark(i, 0, 0))).collect();
        assert!(feed(&events).ok());
    }

    #[test]
    fn premature_exclusive_batch_fires() {
        let sink = feed(&[
            enq(1, 0, 0, 5),
            formed(1, Some(5), true),
            mark(1, 0, 0),
            // Request 1 never completed, yet batch 2 claims to form.
            formed(2, Some(5), true),
        ]);
        assert_eq!(sink.violations().len(), 1);
        assert_eq!(sink.violations()[0].rule, InvariantRule::BatchExclusive);
    }

    #[test]
    fn static_batches_may_renew_without_drain() {
        let sink = feed(&[
            enq(1, 0, 0, 5),
            formed(1, Some(5), false),
            mark(1, 0, 0),
            formed(2, Some(5), false),
        ]);
        assert!(sink.ok(), "static (non-exclusive) batches are exempt");
    }

    #[test]
    fn bad_max_total_order_fires() {
        let entry = |thread, rank, max, total| crate::RankEntry {
            thread,
            rank,
            max_bank_load: max,
            total_load: total,
        };
        let sink = feed(&[Event::RankComputed {
            at: 9,
            batch: 1,
            max_total: true,
            entries: vec![entry(0, 0, 4, 4), entry(1, 1, 1, 1)],
        }]);
        assert_eq!(sink.violations().len(), 1);
        assert_eq!(sink.violations()[0].rule, InvariantRule::RankOrder);

        let ok = feed(&[Event::RankComputed {
            at: 9,
            batch: 1,
            max_total: true,
            entries: vec![entry(1, 0, 1, 1), entry(0, 1, 4, 4)],
        }]);
        assert!(ok.ok());
    }

    #[test]
    fn non_permutation_ranking_fires() {
        let entry =
            |thread, rank| crate::RankEntry { thread, rank, max_bank_load: 1, total_load: 1 };
        let sink = feed(&[Event::RankComputed {
            at: 9,
            batch: 1,
            max_total: false,
            entries: vec![entry(0, 0), entry(1, 0)],
        }]);
        assert_eq!(sink.violations().len(), 1);
        assert_eq!(sink.violations()[0].rule, InvariantRule::RankOrder);
    }

    #[test]
    fn window_is_bounded() {
        let mut sink = InvariantSink::new();
        for at in 0..200 {
            sink.record(&Event::Refresh { at, rank: 0 });
        }
        sink.record(&Event::RankComputed {
            at: 200,
            batch: 1,
            max_total: false,
            entries: vec![crate::RankEntry { thread: 0, rank: 5, max_bank_load: 0, total_load: 0 }],
        });
        assert_eq!(sink.violations().len(), 1);
        assert!(sink.violations()[0].window.len() <= WINDOW);
        let display = format!("{}", sink.violations()[0]);
        assert!(display.contains("rank-order"));
    }
}
