//! [`CounterSink`]: per-thread and per-bank rollup counters over the event
//! stream, feeding the same metric primitives as `parbs-metrics`.

use parbs_metrics::LatencyHistogram;

use crate::{CmdKind, Event, EventSink, ServiceClass};

/// Per-thread counters accumulated from the event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadCounters {
    /// Read requests enqueued.
    pub reads: u64,
    /// Write requests enqueued.
    pub writes: u64,
    /// Read requests completed.
    pub reads_completed: u64,
    /// Requests marked into batches.
    pub marked: u64,
    /// DRAM commands issued on the thread's behalf.
    pub commands: u64,
    /// First commands that were row hits.
    pub row_hits: u64,
    /// First commands to a closed bank.
    pub row_closed: u64,
    /// First commands that were row conflicts.
    pub row_conflicts: u64,
    /// Sum of read latencies (arrival → data observed), in cycles.
    pub total_read_latency: u64,
    /// Worst read latency observed, in cycles.
    pub max_read_latency: u64,
}

impl ThreadCounters {
    /// Mean read latency in cycles.
    #[must_use]
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_completed as f64
        }
    }

    /// Row-buffer hit rate over the thread's classified requests.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Per-bank counters accumulated from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankCounters {
    /// Row activations.
    pub activates: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// Precharges.
    pub precharges: u64,
}

/// A rollup sink: folds the event stream into per-thread counters, per-bank
/// counters, batch telemetry, and a read-latency histogram compatible with
/// the `parbs-metrics` reporting used everywhere else in the workspace.
#[derive(Debug, Default)]
pub struct CounterSink {
    threads: Vec<ThreadCounters>,
    banks: Vec<BankCounters>,
    /// Batches formed.
    pub batches: u64,
    /// Batches whose drain was observed.
    pub batches_drained: u64,
    /// Sum of formation→drain spans of drained batches, in cycles.
    pub total_batch_cycles: u64,
    /// All-bank refreshes issued.
    pub refreshes: u64,
    /// Write-drain mode entries.
    pub write_drains: u64,
    /// Read-latency distribution (arrival → data observed).
    pub read_latency: LatencyHistogram,
    /// Total events observed.
    pub events: u64,
}

impl CounterSink {
    /// Creates a zeroed counter sink.
    #[must_use]
    pub fn new() -> Self {
        CounterSink::default()
    }

    /// Counters of `thread` (zeros if the thread never appeared).
    #[must_use]
    pub fn thread(&self, thread: usize) -> ThreadCounters {
        self.threads.get(thread).cloned().unwrap_or_default()
    }

    /// Counters of `bank` (zeros if the bank never appeared).
    #[must_use]
    pub fn bank(&self, bank: usize) -> BankCounters {
        self.banks.get(bank).copied().unwrap_or_default()
    }

    /// Number of distinct threads observed (highest index + 1).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of distinct banks observed (highest index + 1).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Mean formation→drain span of drained batches, in cycles.
    #[must_use]
    pub fn avg_batch_cycles(&self) -> f64 {
        if self.batches_drained == 0 {
            0.0
        } else {
            self.total_batch_cycles as f64 / self.batches_drained as f64
        }
    }

    fn thread_mut(&mut self, thread: usize) -> &mut ThreadCounters {
        if self.threads.len() <= thread {
            self.threads.resize_with(thread + 1, ThreadCounters::default);
        }
        &mut self.threads[thread]
    }

    fn bank_mut(&mut self, bank: usize) -> &mut BankCounters {
        if self.banks.len() <= bank {
            self.banks.resize(bank + 1, BankCounters::default());
        }
        &mut self.banks[bank]
    }

    /// One-line human-readable rollup.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} events: {} threads, {} banks, {} batches ({} drained, avg {:.0} cycles), {} reads completed (mean latency {:.0})",
            self.events,
            self.threads.len(),
            self.banks.len(),
            self.batches,
            self.batches_drained,
            self.avg_batch_cycles(),
            self.read_latency.count(),
            self.read_latency.mean(),
        )
    }
}

impl EventSink for CounterSink {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        match *event {
            Event::Enqueued { thread, write, .. } => {
                let t = self.thread_mut(thread);
                if write {
                    t.writes += 1;
                } else {
                    t.reads += 1;
                }
            }
            Event::Marked { thread, .. } => self.thread_mut(thread).marked += 1,
            Event::BatchFormed { .. } => self.batches += 1,
            Event::BatchDrained { at, formed_at, .. } => {
                self.batches_drained += 1;
                self.total_batch_cycles += at.saturating_sub(formed_at);
            }
            Event::CommandIssued { thread, kind, bank, service, .. } => {
                let t = self.thread_mut(thread);
                t.commands += 1;
                match service {
                    Some(ServiceClass::Hit) => t.row_hits += 1,
                    Some(ServiceClass::Closed) => t.row_closed += 1,
                    Some(ServiceClass::Conflict) => t.row_conflicts += 1,
                    None => {}
                }
                let b = self.bank_mut(bank);
                match kind {
                    CmdKind::Activate => b.activates += 1,
                    CmdKind::Read => b.reads += 1,
                    CmdKind::Write => b.writes += 1,
                    CmdKind::Precharge => b.precharges += 1,
                }
            }
            Event::Completed { thread, write, arrival, finish, .. } => {
                if !write {
                    let latency = finish.saturating_sub(arrival);
                    let t = self.thread_mut(thread);
                    t.reads_completed += 1;
                    t.total_read_latency += latency;
                    t.max_read_latency = t.max_read_latency.max(latency);
                    self.read_latency.record(latency);
                }
            }
            Event::WriteDrain { start, .. } => {
                if start {
                    self.write_drains += 1;
                }
            }
            Event::Refresh { .. } => self.refreshes += 1,
            Event::RankComputed { .. }
            | Event::BusSample { .. }
            | Event::BlacklistSet { .. }
            | Event::BlacklistCleared { .. }
            | Event::QuantumRolled { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_a_small_stream() {
        let mut sink = CounterSink::new();
        let events = [
            Event::Enqueued {
                at: 0,
                request: 1,
                thread: 0,
                write: false,
                rank: 0,
                bank: 2,
                row: 5,
            },
            Event::Enqueued { at: 0, request: 2, thread: 1, write: true, rank: 0, bank: 3, row: 6 },
            Event::BatchFormed {
                at: 10,
                id: 1,
                marked: 1,
                cap: Some(5),
                exclusive: true,
                per_thread: vec![(0, 1)],
            },
            Event::Marked { at: 10, request: 1, thread: 0, rank: 0, bank: 2 },
            Event::CommandIssued {
                at: 10,
                request: 1,
                thread: 0,
                kind: CmdKind::Activate,
                rank: 0,
                bank: 2,
                row: 5,
                col: 0,
                marked: true,
                service: Some(ServiceClass::Closed),
                data_end: None,
            },
            Event::CommandIssued {
                at: 60,
                request: 1,
                thread: 0,
                kind: CmdKind::Read,
                rank: 0,
                bank: 2,
                row: 5,
                col: 0,
                marked: true,
                service: None,
                data_end: Some(100),
            },
            Event::Completed {
                at: 60,
                request: 1,
                thread: 0,
                write: false,
                arrival: 0,
                finish: 120,
            },
            Event::BatchDrained { at: 120, id: 1, formed_at: 10 },
            Event::Refresh { at: 200, rank: 0 },
        ];
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.events, events.len() as u64);
        assert_eq!(sink.thread(0).reads, 1);
        assert_eq!(sink.thread(0).marked, 1);
        assert_eq!(sink.thread(0).commands, 2);
        assert_eq!(sink.thread(0).row_closed, 1);
        assert_eq!(sink.thread(0).max_read_latency, 120);
        assert_eq!(sink.thread(1).writes, 1);
        assert_eq!(sink.bank(2).activates, 1);
        assert_eq!(sink.bank(2).reads, 1);
        assert_eq!(sink.batches, 1);
        assert_eq!(sink.batches_drained, 1);
        assert!((sink.avg_batch_cycles() - 110.0).abs() < 1e-9);
        assert_eq!(sink.refreshes, 1);
        assert_eq!(sink.read_latency.count(), 1);
        assert_eq!(sink.read_latency.max(), 120);
        assert!(!sink.summary().is_empty());
    }

    #[test]
    fn unknown_indices_read_as_zero() {
        let sink = CounterSink::new();
        assert_eq!(sink.thread(9).reads, 0);
        assert_eq!(sink.bank(9).activates, 0);
        assert_eq!(sink.avg_batch_cycles(), 0.0);
    }
}
