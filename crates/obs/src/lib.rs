//! # parbs-obs — structured observability for the PAR-BS simulator
//!
//! The paper argues through per-cycle service-order evidence: which bank
//! serves which thread's request on which cycle, when batches form and
//! drain, how threads are ranked. This crate turns those occurrences into a
//! typed [`Event`] stream that instrumented components (the DRAM controller,
//! the schedulers, the sim runner) push into a pluggable [`EventSink`].
//!
//! ## Shipped sinks
//!
//! - [`CounterSink`] — per-thread / per-bank rollup counters plus a
//!   `parbs-metrics` latency histogram.
//! - [`ChromeTraceSink`] — `chrome://tracing` / Perfetto JSON with one track
//!   per bank, one per thread, and batch spans on a scheduler track.
//! - [`JsonlSink`] — one JSON object per event, for streaming logs.
//! - [`InvariantSink`] — online checking of the PAR-BS batching invariants
//!   (marked-first service, Marking-Cap, batch exclusivity, Max-Total rank
//!   order) with violation reports carrying the offending event window.
//!
//! Plus structural helpers: [`CollectSink`] (buffer everything) and
//! [`FanoutSink`] (broadcast to several sinks).
//!
//! ## Cost contract
//!
//! Emitters keep the sink behind an `Option`; when no sink is attached the
//! only cost on the hot path is one branch on `Option::is_some` — no event
//! is constructed, no allocation happens. This is the
//! zero-overhead-when-disabled contract the `sched_hotpath` benchmark gate
//! enforces.
//!
//! This crate is a leaf: events carry plain scalars (request ids, thread
//! and bank indices, cycles), so the DRAM substrate and schedulers can emit
//! without any dependency cycle.

mod chrome;
mod counter;
mod event;
mod invariant;
mod json;
mod jsonl;
mod sink;

pub use chrome::ChromeTraceSink;
pub use counter::{BankCounters, CounterSink, ThreadCounters};
pub use event::{CmdKind, Event, RankEntry, ServiceClass};
pub use invariant::{InvariantRule, InvariantSink, Violation};
pub use json::{parse_jsonl, ParseEventError};
pub use jsonl::JsonlSink;
pub use sink::{downcast_sink, CollectSink, EventSink, FanoutSink};
