//! Key-contract analyzer tests: the five shipped schedulers pass, and
//! deliberately-broken test-only schedulers are rejected with a pointed
//! diagnostic.

use std::cmp::Ordering;

use parbs_analyze::{check_scheduler_keys, scheduler_by_name, ALL_SCHEDULERS};
use parbs_dram::{FieldSemantic, KeyField, KeyLayout, MemoryScheduler, Request, SchedView};

#[test]
fn every_shipped_scheduler_passes_check_keys() {
    for name in ALL_SCHEDULERS {
        let make = scheduler_by_name(name).expect("shipped scheduler");
        let report = check_scheduler_keys(make.as_ref())
            .unwrap_or_else(|e| panic!("{name} failed the key contract: {e}"));
        assert_eq!(&report.scheduler, name);
        assert!(report.pairs >= 30, "{name}: pair coverage too thin ({})", report.pairs);
    }
}

/// FR-FCFS's declared layout, reused by the broken schedulers below: the
/// declarations are fine — the *implementations* betray them.
static FRFCFS_LIKE_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "swapped",
    fields: &[
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
    ],
};

/// Packs the two fields in swapped positions (age in the high bits' place,
/// row-hit at bit 0) while declaring the correct FR-FCFS layout.
struct SwappedFieldScheduler;

impl MemoryScheduler for SwappedFieldScheduler {
    fn name(&self) -> &str {
        "swapped"
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        (u128::from(u64::MAX - req.id.0) << 1) | u128::from(view.is_row_hit(req))
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&FRFCFS_LIKE_LAYOUT)
    }
}

#[test]
fn swapped_key_fields_are_rejected() {
    let err = check_scheduler_keys(&|| Box::new(SwappedFieldScheduler) as Box<dyn MemoryScheduler>)
        .expect_err("a packer that swaps the declared fields must fail");
    assert!(err.contains("row_hit"), "diagnostic must point at the field whose bits moved: {err}");
}

/// Declares its fields in LSB-first order — structurally invalid before any
/// key is ever packed.
struct MisdeclaredScheduler;

static LSB_FIRST_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "lsb-first",
    fields: &[
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
    ],
};

impl MemoryScheduler for MisdeclaredScheduler {
    fn name(&self) -> &str {
        "lsb-first"
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        (u128::from(view.is_row_hit(req)) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&LSB_FIRST_LAYOUT)
    }
}

#[test]
fn lsb_first_declaration_is_structurally_rejected() {
    let err = check_scheduler_keys(&|| Box::new(MisdeclaredScheduler) as Box<dyn MemoryScheduler>)
        .expect_err("an LSB-first declaration must fail validation");
    assert!(err.contains("invalid KeyLayout"), "structural failure expected: {err}");
}

/// Packs a key wider than the declaration admits (stray bit above every
/// declared field).
struct StrayBitScheduler;

impl MemoryScheduler for StrayBitScheduler {
    fn name(&self) -> &str {
        "stray-bit"
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        (1u128 << 80) | (u128::from(view.is_row_hit(req)) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&FRFCFS_LIKE_LAYOUT)
    }
}

#[test]
fn stray_key_bits_are_rejected() {
    let err = check_scheduler_keys(&|| Box::new(StrayBitScheduler) as Box<dyn MemoryScheduler>)
        .expect_err("bits outside the declared fields must fail");
    assert!(err.contains("outside the declared fields"), "stray-bit failure expected: {err}");
}

/// Key and comparator disagree (comparator ignores row hits) — the
/// cross-validation must notice even though the packed bits themselves are
/// layout-clean.
struct InconsistentCompareScheduler;

impl MemoryScheduler for InconsistentCompareScheduler {
    fn name(&self) -> &str {
        "inconsistent"
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        (u128::from(view.is_row_hit(req)) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, _view: &SchedView<'_>) -> Ordering {
        a.id.cmp(&b.id)
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&FRFCFS_LIKE_LAYOUT)
    }
}

#[test]
fn key_vs_compare_divergence_is_rejected() {
    let err = check_scheduler_keys(&|| {
        Box::new(InconsistentCompareScheduler) as Box<dyn MemoryScheduler>
    })
    .expect_err("a comparator diverging from the packed keys must fail");
    assert!(err.contains("compare()"), "order-divergence failure expected: {err}");
}

#[test]
fn undeclared_layout_is_rejected() {
    struct NoLayout;
    impl MemoryScheduler for NoLayout {
        fn name(&self) -> &str {
            "bare"
        }
        fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
            u128::from(u64::MAX - req.id.0)
        }
    }
    let err = check_scheduler_keys(&|| Box::new(NoLayout) as Box<dyn MemoryScheduler>)
        .expect_err("an opted-out scheduler cannot pass the contract check");
    assert!(err.contains("no declared KeyLayout"), "{err}");
}
