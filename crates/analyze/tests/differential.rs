//! Differential model-checker tests: agreement on the shipped rule table
//! and guaranteed detection of seeded rule mutations with minimal-length
//! witness prefixes.

use parbs_analyze::{run_differential, run_differential_with_rules, McConfig, Verdict};
use parbs_dram::{CommandKind, TimingParams, TIMING_RULES};

/// Keep exhaustive-enumeration depth affordable under `cargo test` (debug
/// builds); the CI `analyze` job drives the release binary at depth ≥ 6.
fn test_depth() -> u32 {
    if cfg!(debug_assertions) {
        4
    } else {
        6
    }
}

#[test]
fn one_rank_tiny_geometry_agrees() {
    let stats = run_differential(&McConfig::tiny(1, test_depth()))
        .unwrap_or_else(|d| panic!("implementations diverged:\n{d}"));
    assert!(stats.states > 100, "enumeration must actually branch (got {} states)", stats.states);
    assert_eq!(stats.depth, test_depth());
}

#[test]
fn two_rank_tiny_geometry_agrees() {
    let stats = run_differential(&McConfig::tiny(2, test_depth()))
        .unwrap_or_else(|d| panic!("implementations diverged:\n{d}"));
    assert!(stats.states > 100, "enumeration must actually branch (got {} states)", stats.states);
}

/// Timing where tFAW binds quickly: small tRRD/tRC so five activates fit
/// well inside the four-activate window.
fn faw_stress_timing() -> TimingParams {
    let mut t = TimingParams::ddr2_800();
    t.t_rcd = 10;
    t.t_cl = 20;
    t.t_cwl = 10;
    t.t_rp = 10;
    t.t_ras = 20;
    t.t_rc = 30;
    t.t_burst = 10;
    t.t_ccd = 10;
    t.t_rrd = 10;
    t.t_wr = 10;
    t.t_rtp = 10;
    t.t_wtr = 10;
    t.t_faw = 150;
    t.t_rfc = 50;
    t.t_rtrs = 10;
    t.validate().expect("stress timing self-consistent");
    t
}

#[test]
fn dropped_tfaw_rule_is_caught_with_minimal_prefix() {
    // Oracle runs without the tFAW rule; channel and checker keep it. The
    // shortest possible witness is four activates (filling the window)
    // followed by a fifth-activate candidate — iterative deepening must
    // find exactly that shape.
    let mutated: Vec<_> = TIMING_RULES.iter().filter(|r| r.id != "tFAW").copied().collect();
    let cfg =
        McConfig { ranks: 1, banks_per_rank: 5, rows: 1, depth: 4, timing: faw_stress_timing() };
    let d = *run_differential_with_rules(&cfg, &mutated)
        .expect_err("a dropped tFAW rule must produce a divergence");
    assert_eq!(d.prefix.len(), 4, "minimal witness is the four window-filling activates:\n{d}");
    assert!(
        d.prefix.iter().all(|(c, _)| c.kind == CommandKind::Activate),
        "witness prefix must be pure activates:\n{d}"
    );
    assert_eq!(d.candidate.kind, CommandKind::Activate, "disputed command is the fifth activate");
    // Channel and checker (full table) still agree with each other and
    // enforce the window; only the mutated oracle is early.
    assert_eq!(d.channel, d.checker, "the two full-table implementations must still agree:\n{d}");
    let (Verdict::At(full), Verdict::At(early)) = (d.channel, d.oracle) else {
        panic!("fifth activate is eventually legal on both sides:\n{d}")
    };
    assert!(early < full, "the mutated oracle must claim an earlier cycle:\n{d}");
    assert_eq!(
        d.checker_rule.as_deref(),
        Some("tFAW"),
        "checker must cite the enforced rule:\n{d}"
    );
}

#[test]
fn dropped_twtr_rule_is_caught_with_minimal_prefix() {
    let mutated: Vec<_> = TIMING_RULES.iter().filter(|r| r.id != "tWTR").copied().collect();
    let cfg = McConfig {
        ranks: 1,
        banks_per_rank: 2,
        rows: 1,
        depth: 2,
        timing: TimingParams::ddr2_800(),
    };
    let d = *run_differential_with_rules(&cfg, &mutated)
        .expect_err("a dropped tWTR rule must produce a divergence");
    assert_eq!(d.prefix.len(), 2, "minimal witness is activate + write:\n{d}");
    assert_eq!(d.prefix[1].0.kind, CommandKind::Write, "the write arms the turnaround:\n{d}");
    assert!(d.candidate.kind.is_column(), "disputed command is the following column:\n{d}");
    assert_eq!(
        d.checker_rule.as_deref(),
        Some("tWTR"),
        "checker must cite the enforced rule:\n{d}"
    );
}

#[test]
fn mutated_runs_agree_when_the_mutation_is_unreachable() {
    // Dropping tFAW is invisible on a 2-bank rank under DDR2-800: tRC keeps
    // any four activates from crowding the window, so the differential
    // check must stay green — divergence detection is evidence-based, not
    // rule-diff-based.
    let mutated: Vec<_> = TIMING_RULES.iter().filter(|r| r.id != "tFAW").copied().collect();
    let cfg = McConfig {
        ranks: 1,
        banks_per_rank: 2,
        rows: 2,
        depth: 3,
        timing: TimingParams::ddr2_800(),
    };
    run_differential_with_rules(&cfg, &mutated)
        .unwrap_or_else(|d| panic!("unreachable mutation must not diverge:\n{d}"));
}
