//! Property tests: `priority_key` ordering equals the documented pairwise
//! comparator for PAR-BS, FR-FCFS, BLISS and ATLAS across randomized
//! channel states and request queues.
//!
//! The reference comparators below are written out from the papers' rule
//! statements (FR-FCFS: row-hit first, then oldest first; PAR-BS Rule 3.2
//! with ranking disabled: marked first, then row-hit, then oldest first;
//! BLISS: non-blacklisted first, then row-hit, then oldest; ATLAS: lower
//! attained-service rank first, then row-hit, then oldest) — *not* from
//! the schedulers' own `compare`, so a shared packing bug cannot hide.

use std::cmp::Ordering;

use parbs::{ParBsConfig, ParBsScheduler, Ranking};
use parbs_baselines::{AtlasScheduler, BlissScheduler, FrFcfsScheduler};
use parbs_dram::{
    Channel, Command, CommandKind, LineAddr, MemoryScheduler, Request, RequestId, RequestKind,
    SchedView, ThreadId, TimingParams,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct OpenSpec {
    bank: u8,
    row: u8,
}

#[derive(Debug, Clone, Copy)]
struct ReqSpec {
    thread: u8,
    bank: u8,
    row: u8,
}

fn open_spec() -> impl Strategy<Value = OpenSpec> {
    (0u8..8, 0u8..4).prop_map(|(bank, row)| OpenSpec { bank, row })
}

fn req_spec() -> impl Strategy<Value = ReqSpec> {
    (0u8..4, 0u8..8, 0u8..4).prop_map(|(thread, bank, row)| ReqSpec { thread, bank, row })
}

/// Builds a channel with the requested rows opened (skipping activates the
/// timing rejects) and the request queue; returns the queue and channel.
fn build_state(opens: &[OpenSpec], reqs: &[ReqSpec]) -> (Channel, Vec<Request>, u64) {
    let t = TimingParams::ddr2_800();
    let mut ch = Channel::new(8, t);
    let mut now = 0;
    for o in opens {
        let cmd = Command {
            kind: CommandKind::Activate,
            rank: 0,
            bank: o.bank as usize,
            row: o.row as u64,
            col: 0,
            request: RequestId(0),
        };
        if ch.can_issue(&cmd, now) {
            ch.issue(&cmd, ThreadId(0), now);
        }
        now += t.t_rrd.max(10);
    }
    let queue: Vec<Request> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            Request::new(
                i as u64,
                ThreadId(r.thread as usize),
                LineAddr { channel: 0, bank: r.bank as usize, row: r.row as u64, col: 0 },
                RequestKind::Read,
                now,
            )
        })
        .collect();
    (ch, queue, now + 100)
}

/// Checks that for every ordered pair, the packed keys sort exactly like
/// `reference` and like the scheduler's own `compare`.
fn assert_key_order_matches(
    sched: &dyn MemoryScheduler,
    queue: &[Request],
    view: &SchedView<'_>,
    reference: impl Fn(&Request, &Request) -> Ordering,
) {
    let keys: Vec<u128> = queue.iter().map(|r| sched.priority_key(r, view)).collect();
    for (i, a) in queue.iter().enumerate() {
        for (j, b) in queue.iter().enumerate() {
            if i == j {
                continue;
            }
            let want = reference(a, b);
            let by_key = keys[j].cmp(&keys[i]);
            assert_eq!(
                by_key, want,
                "key order diverges from the documented comparator for ids {} vs {}",
                a.id.0, b.id.0
            );
            assert_eq!(sched.compare(a, b, view), want, "compare() diverges for {i} vs {j}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frfcfs_key_order_matches_documented_comparator(
        opens in proptest::collection::vec(open_spec(), 0..6),
        reqs in proptest::collection::vec(req_spec(), 2..10),
    ) {
        let (ch, queue, now) = build_state(&opens, &reqs);
        let view = SchedView { channel: &ch, now };
        let sched = FrFcfsScheduler::new();
        assert_key_order_matches(&sched, &queue, &view, |a, b| {
            let hit_a = view.is_row_hit(a);
            let hit_b = view.is_row_hit(b);
            hit_b.cmp(&hit_a).then(a.id.cmp(&b.id))
        });
    }

    #[test]
    fn parbs_key_order_matches_documented_comparator(
        opens in proptest::collection::vec(open_spec(), 0..6),
        reqs in proptest::collection::vec(req_spec(), 2..10),
    ) {
        let (ch, mut queue, now) = build_state(&opens, &reqs);
        let view = SchedView { channel: &ch, now };
        let cfg = ParBsConfig { ranking: Ranking::None, ..ParBsConfig::default() };
        let row_hit_first = cfg.row_hit_first;
        let mut sched = ParBsScheduler::new(cfg);
        for req in &queue {
            sched.on_arrival(req, req.arrival);
        }
        // Batch formation sets the marked bits Rule 3.2 reads.
        sched.pre_schedule(&mut queue, &view);
        assert_key_order_matches(&sched, &queue, &view, |a, b| {
            // Rule 3.2 with ranking off and uniform thread priority:
            // marked-first, then row-hit-first (when configured), then
            // oldest-first.
            let hit = |r: &Request| row_hit_first && view.is_row_hit(r);
            b.marked
                .cmp(&a.marked)
                .then(hit(b).cmp(&hit(a)))
                .then(a.id.cmp(&b.id))
        });
    }

    #[test]
    fn bliss_key_order_matches_documented_comparator(
        opens in proptest::collection::vec(open_spec(), 0..6),
        reqs in proptest::collection::vec(req_spec(), 2..10),
        // 0..4 blacklist that thread; 4 means "no thread blacklisted".
        blacklist_pick in 0u8..5,
    ) {
        let blacklist = (blacklist_pick < 4).then_some(blacklist_pick);
        let (ch, mut queue, now) = build_state(&opens, &reqs);
        let view = SchedView { channel: &ch, now };
        let mut sched = BlissScheduler::new();
        for req in &queue {
            sched.on_arrival(req, req.arrival);
        }
        // Drive one thread over the blacklisting threshold by servicing a
        // consecutive run of its column commands.
        if let Some(t) = blacklist {
            let victim = Request::new(
                1_000,
                ThreadId(t as usize),
                LineAddr { channel: 0, bank: 0, row: 0, col: 0 },
                RequestKind::Read,
                0,
            );
            let cmd = Command {
                kind: CommandKind::Read,
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
                request: victim.id,
            };
            for _ in 0..4 {
                sched.on_command(&cmd, &victim, now);
            }
            assert!(sched.is_blacklisted(ThreadId(t as usize)));
        }
        // Consume the dirty flag the way the controller does before reading
        // keys.
        sched.pre_schedule(&mut queue, &view);
        let blacklisted = |r: &Request| blacklist == Some(r.thread.0 as u8);
        assert_key_order_matches(&sched, &queue, &view, |a, b| {
            // BLISS: non-blacklisted first, then row-hit, then oldest.
            let ok = |r: &Request| !blacklisted(r);
            ok(b)
                .cmp(&ok(a))
                .then(view.is_row_hit(b).cmp(&view.is_row_hit(a)))
                .then(a.id.cmp(&b.id))
        });
    }

    #[test]
    fn atlas_key_order_matches_documented_comparator(
        opens in proptest::collection::vec(open_spec(), 0..6),
        reqs in proptest::collection::vec(req_spec(), 2..10),
        services in proptest::collection::vec(0u32..5, 4..5),
    ) {
        let (ch, mut queue, state_now) = build_state(&opens, &reqs);
        let mut sched = AtlasScheduler::new();
        for req in &queue {
            sched.on_arrival(req, req.arrival);
        }
        // Accrue a known amount of service per thread: each Read costs
        // t_cl + t_burst cycles of attained service.
        for (t, &count) in services.iter().enumerate() {
            let r = Request::new(
                2_000 + t as u64,
                ThreadId(t),
                LineAddr { channel: 0, bank: 0, row: 0, col: 0 },
                RequestKind::Read,
                0,
            );
            let cmd = Command {
                kind: CommandKind::Read,
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
                request: r.id,
            };
            for _ in 0..count {
                sched.on_command(&cmd, &r, state_now);
            }
        }
        // Roll the quantum so the accrued service becomes the ranking.
        let now = state_now + 20_000;
        let view = SchedView { channel: &ch, now };
        sched.pre_schedule(&mut queue, &view);
        // Expected ranks, recomputed independently: ascending by (attained
        // service, thread id); every thread 0..4 exists (service was fed
        // for all four).
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by_key(|&t| (services[t], t));
        let mut rank = [0usize; 4];
        for (pos, &t) in order.iter().enumerate() {
            rank[t] = pos;
        }
        assert_key_order_matches(&sched, &queue, &view, |a, b| {
            // ATLAS: least-attained-service rank first, then row-hit, then
            // oldest.
            rank[a.thread.0]
                .cmp(&rank[b.thread.0])
                .then(view.is_row_hit(b).cmp(&view.is_row_hit(a)))
                .then(a.id.cmp(&b.id))
        });
    }
}
