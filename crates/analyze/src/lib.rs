//! Static analysis for the PAR-BS model — `parbs-analyze`.
//!
//! Simulation results are only as trustworthy as the DRAM model and the
//! scheduler priority encodings underneath them, and both are implemented
//! more than once in this workspace (an imperative hot path plus a
//! declarative specification). This crate closes the loop between the
//! copies:
//!
//! * [`TimingOracle`] — an independent earliest-legal-time evaluator built
//!   from the declarative [`parbs_dram::TIMING_RULES`] table by log
//!   scanning (no incremental state to get wrong);
//! * [`run_differential`] — a differential bounded model checker that
//!   exhaustively enumerates command sequences on tiny geometries and
//!   requires [`parbs_dram::Channel::can_issue`], the oracle and
//!   [`parbs_dram::ProtocolChecker`] to agree on the earliest-legal cycle
//!   of **every** command of the alphabet at **every** reached state,
//!   reporting any divergence with a minimal command prefix;
//! * [`check_scheduler_keys`] — a key-contract analyzer that validates each
//!   scheduler's declared [`parbs_dram::KeyLayout`] structurally and
//!   cross-checks the packed `priority_key` bits, field semantics and
//!   ordering against the scheduler's own `compare`.
//!
//! The `parbs-analyze` binary exposes all three as CI-runnable subcommands
//! (`check-timing`, `check-keys`, `report`).

mod keycheck;
mod mc;
mod oracle;

pub use keycheck::{check_scheduler_keys, scheduler_by_name, KeyReport, ALL_SCHEDULERS};
pub use mc::{run_differential, run_differential_with_rules, Disagreement, McConfig, McStats};
pub use oracle::{TimingOracle, Verdict};
