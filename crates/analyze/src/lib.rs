//! Static analysis for the PAR-BS model — `parbs-analyze`.
//!
//! Simulation results are only as trustworthy as the DRAM model and the
//! scheduler priority encodings underneath them, and both are implemented
//! more than once in this workspace (an imperative hot path plus a
//! declarative specification). This crate closes the loop between the
//! copies:
//!
//! * [`TimingOracle`] — an independent earliest-legal-time evaluator built
//!   from the declarative [`parbs_dram::TIMING_RULES`] table by log
//!   scanning (no incremental state to get wrong);
//! * [`run_differential`] — a differential bounded model checker that
//!   exhaustively enumerates command sequences on tiny geometries and
//!   requires [`parbs_dram::Channel::can_issue`], the oracle and
//!   [`parbs_dram::ProtocolChecker`] to agree on the earliest-legal cycle
//!   of **every** command of the alphabet at **every** reached state,
//!   reporting any divergence with a minimal command prefix;
//! * [`check_scheduler_keys`] — a key-contract analyzer that validates each
//!   scheduler's declared [`parbs_dram::KeyLayout`] structurally and
//!   cross-checks the packed `priority_key` bits, field semantics and
//!   ordering against the scheduler's own `compare`;
//! * [`check_scheduler_liveness`] — a liveness model checker that, per
//!   scheduler, either **proves** a concrete starvation bound ("every
//!   enqueued request is serviced within K other services") by exhaustive
//!   exploration of the controller+scheduler state space on a tiny
//!   geometry, or emits a minimal lasso witness of unbounded starvation —
//!   with a symmetry-reduction layer (quotient by the geometry's
//!   automorphism group, see the `symmetry` module docs) that shrinks the
//!   state space by an order of magnitude or more;
//! * [`check_refresh`] — the same engine style pointed at the `tREFI`
//!   deadline rule: per-rank refresh compliance is model-checked against
//!   the rule table, and a dropped refresh rule is caught at the
//!   analytically minimal counterexample depth.
//!
//! The `parbs-analyze` binary exposes all of these as CI-runnable
//! subcommands (`check-timing` — including `--refresh`, `check-keys`,
//! `check-liveness`, `check-spec`, `report`).

mod keycheck;
mod liveness;
mod mc;
mod oracle;
mod refresh;
mod symmetry;

pub use keycheck::{check_scheduler_keys, scheduler_by_name, KeyReport, ALL_SCHEDULERS};
pub use liveness::{
    check_contract, check_scheduler_liveness, LivenessConfig, LivenessReport, LivenessVerdict,
    Move, Witness,
};
pub use mc::{run_differential, run_differential_with_rules, Disagreement, McConfig, McStats};
pub use oracle::{TimingOracle, Verdict};
pub use refresh::{
    check_refresh, check_refresh_with_rules, RefreshConfig, RefreshReport, RefreshVerdict,
};
