//! An independent earliest-issue-time oracle evaluated from the
//! declarative timing-rule table.
//!
//! [`TimingOracle`] answers, for a candidate command against an observed
//! command history, *the earliest cycle at which the command becomes legal*
//! — or [`Verdict::Never`] when bank-state legality rules it out entirely
//! (the state only changes when further commands issue, so an illegal
//! candidate stays illegal at every cycle).
//!
//! The oracle is deliberately implemented differently from both
//! [`parbs_dram::Channel`]'s imperative gating and the
//! [`parbs_dram::RuleEngine`] that drives the protocol checker: it keeps the
//! **full command log** and re-scans it per query instead of maintaining
//! incremental per-bank/per-rank state. A bug in the fold/update logic of
//! either incremental implementation therefore cannot cancel out here —
//! which is the property the differential model checker
//! ([`crate::run_differential`]) relies on.
//!
//! [`TimingOracle::with_rules`] accepts an arbitrary rule slice, which is
//! how the test suite seeds rule mutations (a dropped `tFAW`, a dropped
//! `tWTR`) and demonstrates that the differential checker catches them with
//! a minimal command prefix.

use parbs_dram::{
    data_interval, CommandKind, EventClass, FromTime, RuleKind, RuleScope, TimingParams,
    TimingRule, ToTime, DRAM_CYCLE, TIMING_RULES,
};

/// The oracle's answer for a candidate command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The command is illegal at every future cycle (bank-state legality).
    Never,
    /// The command first becomes legal at this cycle.
    At(u64),
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Never => write!(f, "never"),
            Verdict::At(t) => write!(f, "at {t}"),
        }
    }
}

/// One logged command issue, with its data interval if it was a column
/// command.
#[derive(Debug, Clone, Copy)]
struct LoggedCmd {
    kind: CommandKind,
    rank: usize,
    bank: usize,
    at: u64,
    data: Option<(u64, u64)>,
}

impl LoggedCmd {
    fn matches(&self, class: EventClass) -> bool {
        match class {
            EventClass::Act => self.kind == CommandKind::Activate,
            EventClass::Rd => self.kind == CommandKind::Read,
            EventClass::Wr => self.kind == CommandKind::Write,
            EventClass::Col => self.kind.is_column(),
            EventClass::Pre => self.kind == CommandKind::Precharge,
            EventClass::Ref => self.kind == CommandKind::Refresh,
            EventClass::Any => true,
        }
    }
}

/// Log-scanning earliest-time evaluator over a timing-rule table; see the
/// module docs for why it re-derives everything per query.
#[derive(Debug, Clone)]
pub struct TimingOracle {
    rules: Vec<TimingRule>,
    timing: TimingParams,
    banks_per_rank: usize,
    log: Vec<LoggedCmd>,
    open_rows: Vec<Option<u64>>,
}

impl TimingOracle {
    /// Creates an oracle over the full [`TIMING_RULES`] table for a channel
    /// of `ranks` × `banks_per_rank` banks.
    #[must_use]
    pub fn new(ranks: usize, banks_per_rank: usize, timing: TimingParams) -> Self {
        TimingOracle::with_rules(ranks, banks_per_rank, timing, TIMING_RULES)
    }

    /// Creates an oracle over an arbitrary rule table — the mutation-seeding
    /// entry point used to prove the differential checker catches a dropped
    /// or weakened rule.
    #[must_use]
    pub fn with_rules(
        ranks: usize,
        banks_per_rank: usize,
        timing: TimingParams,
        rules: &[TimingRule],
    ) -> Self {
        TimingOracle {
            rules: rules.to_vec(),
            timing,
            banks_per_rank,
            log: Vec::new(),
            open_rows: vec![None; ranks * banks_per_rank],
        }
    }

    fn cmd_rank(&self, kind: CommandKind, rank: usize, bank: usize) -> usize {
        if kind == CommandKind::Refresh {
            rank
        } else {
            bank / self.banks_per_rank
        }
    }

    /// The anchor cycle of the rule's from-event relative to a candidate
    /// targeting (`rank`, `bank`), or `None` when no such event was logged.
    fn anchor_of(&self, rule: &TimingRule, rank: usize, bank: usize) -> Option<u64> {
        // The data bus is one serialized resource: every rule measured from
        // a data end sees the *latest* data end over all transfers, not the
        // most recent command's own interval (transfer ends need not be
        // monotone in issue order when read and write CAS latencies differ).
        if rule.from_time == FromTime::DataEnd && rule.from == EventClass::Col {
            let applies = match rule.scope {
                RuleScope::Channel => true,
                RuleScope::CrossRank => self
                    .log
                    .iter()
                    .rev()
                    .find(|e| e.kind.is_column())
                    .is_some_and(|e| e.rank != rank),
                _ => return None,
            };
            if !applies {
                return None;
            }
            return self.log.iter().filter_map(|e| e.data.map(|(_, end)| end)).max();
        }
        let in_scope = |e: &&LoggedCmd| match rule.scope {
            RuleScope::SameBank => e.kind != CommandKind::Refresh && e.bank == bank,
            RuleScope::SameRank => e.rank == rank,
            RuleScope::CrossRank => e.rank != rank,
            RuleScope::Channel => true,
        };
        let event = self
            .log
            .iter()
            .rev()
            .filter(|e| e.matches(rule.from))
            .filter(in_scope)
            .nth(rule.nth as usize - 1)?;
        match rule.from_time {
            FromTime::Issue => Some(event.at),
            FromTime::DataEnd => event.data.map(|(_, end)| end),
        }
    }

    /// The earliest cycle at which `kind` targeting (`rank`, `bank`, `row`)
    /// is legal given the observed history, considering bank-state legality
    /// and every rule of the table.
    #[must_use]
    pub fn earliest_issue(&self, kind: CommandKind, rank: usize, bank: usize, row: u64) -> Verdict {
        // Bank-state legality first: it is time-invariant for a fixed
        // history, so a violation means "never".
        match kind {
            CommandKind::Activate => {
                if self.open_rows[bank].is_some() {
                    return Verdict::Never;
                }
            }
            CommandKind::Read | CommandKind::Write => {
                if self.open_rows[bank] != Some(row) {
                    return Verdict::Never;
                }
            }
            CommandKind::Precharge => {
                if self.open_rows[bank].is_none() {
                    return Verdict::Never;
                }
            }
            CommandKind::Refresh => {}
        }
        let rank = self.cmd_rank(kind, rank, bank);
        let cas = match kind {
            CommandKind::Read => self.timing.t_cl,
            CommandKind::Write => self.timing.t_cwl,
            _ => 0,
        };
        let mut earliest = 0u64;
        for rule in &self.rules {
            // Deadline rules (tREFI) bound command *absence*; they never
            // delay an issue, so the earliest-legal computation skips them
            // (the refresh model checker handles them instead).
            if rule.kind != RuleKind::MinSeparation || !rule.to.matches(kind) {
                continue;
            }
            let Some(anchor) = self.anchor_of(rule, rank, bank) else { continue };
            let bound = anchor + rule.min_sep_cycles(&self.timing);
            let issue_bound = match rule.to_time {
                ToTime::Issue => bound,
                // The constraint binds the data start `issue + cas`; solve
                // for the issue cycle.
                ToTime::DataStart => bound.saturating_sub(cas),
            };
            earliest = earliest.max(issue_bound);
        }
        Verdict::At(earliest.div_ceil(DRAM_CYCLE) * DRAM_CYCLE)
    }

    /// Records `kind` targeting (`rank`, `bank`, `row`) issued at `at`.
    pub fn record(&mut self, kind: CommandKind, rank: usize, bank: usize, row: u64, at: u64) {
        let rank = self.cmd_rank(kind, rank, bank);
        self.log.push(LoggedCmd {
            kind,
            rank,
            bank,
            at,
            data: data_interval(kind, at, &self.timing),
        });
        match kind {
            CommandKind::Activate => self.open_rows[bank] = Some(row),
            CommandKind::Precharge => self.open_rows[bank] = None,
            CommandKind::Refresh => {
                let lo = rank * self.banks_per_rank;
                for r in &mut self.open_rows[lo..lo + self.banks_per_rank] {
                    *r = None;
                }
            }
            CommandKind::Read | CommandKind::Write => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_allows_everything_at_zero() {
        let o = TimingOracle::new(1, 2, TimingParams::ddr2_800());
        assert_eq!(o.earliest_issue(CommandKind::Activate, 0, 0, 1), Verdict::At(0));
        assert_eq!(o.earliest_issue(CommandKind::Refresh, 0, 0, 0), Verdict::At(0));
        assert_eq!(o.earliest_issue(CommandKind::Read, 0, 0, 1), Verdict::Never, "closed bank");
        assert_eq!(o.earliest_issue(CommandKind::Precharge, 0, 0, 0), Verdict::Never);
    }

    #[test]
    fn act_to_column_waits_trcd() {
        let t = TimingParams::ddr2_800();
        let mut o = TimingOracle::new(1, 2, t);
        o.record(CommandKind::Activate, 0, 0, 5, 0);
        assert_eq!(o.earliest_issue(CommandKind::Read, 0, 0, 5), Verdict::At(t.t_rcd));
        assert_eq!(o.earliest_issue(CommandKind::Read, 0, 0, 6), Verdict::Never, "wrong row");
        assert_eq!(o.earliest_issue(CommandKind::Precharge, 0, 0, 0), Verdict::At(t.t_ras));
    }

    #[test]
    fn deadline_rules_do_not_delay_refresh() {
        // The tREFI rule is a deadline (an upper bound on refresh absence),
        // not a separation: a second refresh must be legal as soon as tRFC
        // elapses, not tREFI.
        let t = TimingParams::ddr2_800();
        let mut o = TimingOracle::new(1, 2, t);
        o.record(CommandKind::Refresh, 0, 0, 0, 0);
        assert_eq!(o.earliest_issue(CommandKind::Refresh, 0, 0, 0), Verdict::At(t.t_rfc));
    }

    #[test]
    fn faw_constrains_the_fifth_activate_only() {
        let t = TimingParams::ddr2_800();
        let mut o = TimingOracle::new(1, 8, t);
        for b in 0..4 {
            o.record(CommandKind::Activate, 0, b, 1, b as u64 * t.t_rrd);
        }
        let Verdict::At(e) = o.earliest_issue(CommandKind::Activate, 0, 4, 1) else {
            panic!("fifth activate must eventually be legal")
        };
        assert_eq!(e, t.t_faw, "bounded by the first activate leaving the window");
    }

    #[test]
    fn data_bus_end_is_folded_across_transfers() {
        // Same scenario as the rule-engine fold test: a read's data outlives
        // a later write's, and the bus bound must track the read's end.
        let mut t = TimingParams::ddr2_800();
        t.t_cl = 100;
        t.t_cwl = 10;
        t.t_ccd = 10;
        t.t_wtr = 10;
        let mut o = TimingOracle::new(1, 8, t);
        o.record(CommandKind::Activate, 0, 0, 1, 0);
        o.record(CommandKind::Activate, 0, 1, 1, 30);
        o.record(CommandKind::Read, 0, 0, 1, 60); // data [160, 200)
        o.record(CommandKind::Write, 0, 1, 1, 80); // data [90, 130)
        let Verdict::At(e) = o.earliest_issue(CommandKind::Write, 0, 0, 1) else {
            panic!("write must become legal")
        };
        assert_eq!(e, 190, "data start must clear the read's end at 200");
    }
}
