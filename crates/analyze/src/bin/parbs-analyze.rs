//! `parbs-analyze` — static-analysis CLI for the PAR-BS model.
//!
//! ```text
//! parbs-analyze check-timing   [--depth N] [--ranks R] [--banks B] [--rows W]
//! parbs-analyze check-timing   --refresh [--ranks R] [--trefi-dc N] [--no-gating]
//! parbs-analyze check-keys     [--scheduler all|FCFS|FR-FCFS|NFQ|STFM|PAR-BS|BLISS|ATLAS]
//! parbs-analyze check-liveness [--scheduler all|NAME] [--banks B] [--rows W]
//!                              [--queue Q] [--threads T] [--depth N] [--witness]
//! parbs-analyze check-spec     <file|prelude:invariants|prelude:qos>
//! parbs-analyze report         [--depth N]
//! ```
//!
//! `check-timing` runs the differential bounded model checker on a tiny
//! geometry (defaults: depth 6, 2 banks/rank, 4 rows, both a 1-rank and a
//! 2-rank channel when `--ranks` is omitted); with `--refresh` it instead
//! model-checks per-rank refresh scheduling against the `tREFI` deadline
//! rule (`--no-gating` seeds the dropped-refresh bug and expects the
//! checker to catch it at the minimal depth). `check-keys` validates the
//! declared priority-key layouts of the shipped schedulers against their
//! implementations. `check-liveness` exhaustively explores the
//! controller+scheduler state space per scheduler and either proves the
//! declared starvation bound (reporting the tightest one) or prints a
//! minimal starvation lasso; a scheduler whose exploration contradicts its
//! declared claim exits non-zero. `check-spec` compiles a [`parbs_monitor`]
//! spec and prints its streams, triggers, and lints — a compile error exits
//! non-zero with its `line:col: message` position. `report` runs the
//! checkers at a modest depth and prints a summary of the rule table and
//! key layouts. Every failure exits non-zero, so all subcommands are
//! CI-gateable.

use std::process::ExitCode;

use parbs_analyze::{
    check_refresh, check_scheduler_keys, check_scheduler_liveness, run_differential,
    scheduler_by_name, LivenessConfig, LivenessVerdict, McConfig, RefreshConfig, RefreshVerdict,
    ALL_SCHEDULERS,
};
use parbs_dram::TIMING_RULES;

fn value_of(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn str_value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn check_refresh_cmd(args: &[String]) -> Result<(), String> {
    let gating = !args.iter().any(|a| a == "--no-gating");
    let cfg = RefreshConfig {
        ranks: value_of(args, "--ranks").unwrap_or(2) as usize,
        t_refi_dc: value_of(args, "--trefi-dc").or(Some(32)),
        gating,
        ..RefreshConfig::default()
    };
    let report = check_refresh(&cfg).map_err(|e| format!("check-timing --refresh: {e}"))?;
    println!("check-timing: {report}");
    match (gating, report.verdict) {
        // Gated refresh must be proven compliant; the seeded dropped-rule
        // bug must be caught — anything else is a checker failure.
        (true, RefreshVerdict::Proven) | (false, RefreshVerdict::Violated { .. }) => Ok(()),
        (true, RefreshVerdict::Violated { depth }) => {
            Err(format!("check-timing --refresh: gated controller misses tREFI at depth {depth}"))
        }
        (false, RefreshVerdict::Proven) => {
            Err("check-timing --refresh: seeded dropped-refresh bug was NOT caught".to_owned())
        }
    }
}

fn check_liveness(args: &[String]) -> Result<(), String> {
    let which = str_value_of(args, "--scheduler").unwrap_or("all");
    let names: Vec<&str> = if which == "all" { ALL_SCHEDULERS.to_vec() } else { vec![which] };
    let mut cfg = LivenessConfig::tiny();
    if let Some(b) = value_of(args, "--banks") {
        cfg.banks = b as usize;
    }
    if let Some(r) = value_of(args, "--rows") {
        cfg.rows = r as u8;
    }
    if let Some(q) = value_of(args, "--queue") {
        cfg.queue_capacity = q as usize;
    }
    if let Some(t) = value_of(args, "--threads") {
        cfg.adversary_threads = t as usize;
    }
    if let Some(d) = value_of(args, "--depth") {
        cfg.max_depth = Some(d as u32);
    }
    let show_witness = args.iter().any(|a| a == "--witness");
    let mut failures = Vec::new();
    for name in names {
        let report =
            check_scheduler_liveness(name, &cfg).map_err(|e| format!("check-liveness: {e}"))?;
        println!("check-liveness: {report}");
        let unbounded = matches!(report.verdict, LivenessVerdict::Unbounded);
        if let Some(w) = report.witness.as_ref().filter(|_| show_witness || unbounded) {
            for line in w.describe().lines() {
                println!("  {line}");
            }
        }
        if report.closed {
            if !report.claim_verified() {
                failures.push(format!("{name}: declared claim not verified ({report})"));
            }
        } else if cfg.max_depth.is_none() {
            // Without an explicit --depth horizon, truncation means the
            // state cap was exhausted — the proof attempt failed.
            failures.push(format!("{name}: exploration hit the state cap before its fixpoint"));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("check-liveness: {}", failures.join("; ")))
    }
}

fn check_timing(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--refresh") {
        return check_refresh_cmd(args);
    }
    let depth = value_of(args, "--depth").unwrap_or(6) as u32;
    let rows = value_of(args, "--rows").unwrap_or(4);
    let ranks: Vec<usize> = match value_of(args, "--ranks") {
        Some(r) => vec![r as usize],
        None => vec![1, 2],
    };
    for r in ranks {
        let mut cfg = McConfig { rows, ..McConfig::tiny(r, depth) };
        if let Some(b) = value_of(args, "--banks") {
            cfg.banks_per_rank = b as usize;
        }
        let banks = cfg.banks_per_rank;
        match run_differential(&cfg) {
            Ok(stats) => println!(
                "check-timing: {r} rank(s) x {banks} bank(s) x {rows} row(s), depth {depth}: \
                 agree on {} command(s) over {} state(s)",
                stats.commands, stats.states
            ),
            Err(d) => return Err(format!("check-timing: {r} rank(s): {d}")),
        }
    }
    Ok(())
}

fn check_keys(args: &[String]) -> Result<(), String> {
    let which = str_value_of(args, "--scheduler").unwrap_or("all");
    let names: Vec<&str> = if which == "all" { ALL_SCHEDULERS.to_vec() } else { vec![which] };
    for name in names {
        let make = scheduler_by_name(name)
            .ok_or_else(|| format!("check-keys: unknown scheduler `{name}`"))?;
        let report = check_scheduler_keys(make.as_ref()).map_err(|e| format!("check-keys: {e}"))?;
        println!(
            "check-keys: {}: {} field(s) verified over {} state(s), {} key(s), {} pair(s)",
            report.scheduler, report.fields, report.states, report.keys, report.pairs
        );
    }
    Ok(())
}

fn check_spec(args: &[String]) -> Result<(), String> {
    let Some(arg) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(
            "usage: parbs-analyze check-spec <file|prelude:invariants|prelude:qos>".to_owned()
        );
    };
    let (label, spec) = if let Some(name) = arg.strip_prefix("prelude:") {
        let spec = parbs_monitor::prelude::by_name(name).ok_or_else(|| {
            format!(
                "check-spec: unknown prelude spec `{name}` (expected one of: {})",
                parbs_monitor::prelude::NAMES.join(", ")
            )
        })?;
        (arg.clone(), spec)
    } else {
        let src = std::fs::read_to_string(arg)
            .map_err(|e| format!("check-spec: cannot read {arg}: {e}"))?;
        let spec = parbs_monitor::Spec::compile(&src).map_err(|e| format!("{arg}:{e}"))?;
        (arg.clone(), spec)
    };
    println!("check-spec: {label}: {}", spec.describe());
    for s in spec.streams() {
        println!("  stream  {s}");
    }
    for (name, sev) in spec.triggers() {
        println!("  trigger {name} [{sev}]");
    }
    for lint in spec.lints() {
        println!("  warning: {lint}");
    }
    Ok(())
}

fn report(args: &[String]) -> Result<(), String> {
    println!("timing-rule table: {} rules", TIMING_RULES.len());
    for rule in TIMING_RULES {
        println!(
            "  {:<32} {:?} {:?}.{:?} -> {:?}.{:?} (nth {})",
            rule.id, rule.scope, rule.from, rule.from_time, rule.to, rule.to_time, rule.nth
        );
    }
    println!();
    for name in ALL_SCHEDULERS {
        let make = scheduler_by_name(name).expect("shipped scheduler");
        let sched = make();
        if let Some(layout) = sched.key_layout() {
            let fields: Vec<String> =
                layout.fields.iter().map(|f| format!("{}@{}+{}", f.name, f.lo, f.width)).collect();
            println!("key layout {:<8} [{}]", layout.scheduler, fields.join(", "));
        }
    }
    println!();
    let mut forwarded =
        vec!["--depth".to_owned(), value_of(args, "--depth").unwrap_or(4).to_string()];
    forwarded.extend_from_slice(args);
    check_timing(&forwarded)?;
    check_keys(args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check-timing") => check_timing(&args[1..]),
        Some("check-keys") => check_keys(&args[1..]),
        Some("check-liveness") => check_liveness(&args[1..]),
        Some("check-spec") => check_spec(&args[1..]),
        Some("report") => report(&args[1..]),
        other => Err(format!(
            "usage: parbs-analyze <check-timing|check-keys|check-liveness|check-spec|report> \
             [options]\n(got {other:?})"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
