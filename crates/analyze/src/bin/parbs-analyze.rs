//! `parbs-analyze` — static-analysis CLI for the PAR-BS model.
//!
//! ```text
//! parbs-analyze check-timing [--depth N] [--ranks R] [--banks B] [--rows W]
//! parbs-analyze check-keys   [--scheduler all|FCFS|FR-FCFS|NFQ|STFM|PAR-BS|BLISS|ATLAS]
//! parbs-analyze check-spec   <file|prelude:invariants|prelude:qos>
//! parbs-analyze report       [--depth N]
//! ```
//!
//! `check-timing` runs the differential bounded model checker on a tiny
//! geometry (defaults: depth 6, 2 banks/rank, 4 rows, both a 1-rank and a
//! 2-rank channel when `--ranks` is omitted). `check-keys` validates the
//! declared priority-key layouts of the shipped schedulers against their
//! implementations. `check-spec` compiles a [`parbs_monitor`] spec and
//! prints its streams, triggers, and lints — a compile error exits non-zero
//! with its `line:col: message` position. `report` runs the checkers at a
//! modest depth and prints a summary of the rule table and key layouts.
//! Every failure exits non-zero, so all subcommands are CI-gateable.

use std::process::ExitCode;

use parbs_analyze::{
    check_scheduler_keys, run_differential, scheduler_by_name, McConfig, ALL_SCHEDULERS,
};
use parbs_dram::TIMING_RULES;

fn value_of(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn str_value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn check_timing(args: &[String]) -> Result<(), String> {
    let depth = value_of(args, "--depth").unwrap_or(6) as u32;
    let rows = value_of(args, "--rows").unwrap_or(4);
    let ranks: Vec<usize> = match value_of(args, "--ranks") {
        Some(r) => vec![r as usize],
        None => vec![1, 2],
    };
    for r in ranks {
        let mut cfg = McConfig { rows, ..McConfig::tiny(r, depth) };
        if let Some(b) = value_of(args, "--banks") {
            cfg.banks_per_rank = b as usize;
        }
        let banks = cfg.banks_per_rank;
        match run_differential(&cfg) {
            Ok(stats) => println!(
                "check-timing: {r} rank(s) x {banks} bank(s) x {rows} row(s), depth {depth}: \
                 agree on {} command(s) over {} state(s)",
                stats.commands, stats.states
            ),
            Err(d) => return Err(format!("check-timing: {r} rank(s): {d}")),
        }
    }
    Ok(())
}

fn check_keys(args: &[String]) -> Result<(), String> {
    let which = str_value_of(args, "--scheduler").unwrap_or("all");
    let names: Vec<&str> = if which == "all" { ALL_SCHEDULERS.to_vec() } else { vec![which] };
    for name in names {
        let make = scheduler_by_name(name)
            .ok_or_else(|| format!("check-keys: unknown scheduler `{name}`"))?;
        let report = check_scheduler_keys(make.as_ref()).map_err(|e| format!("check-keys: {e}"))?;
        println!(
            "check-keys: {}: {} field(s) verified over {} state(s), {} key(s), {} pair(s)",
            report.scheduler, report.fields, report.states, report.keys, report.pairs
        );
    }
    Ok(())
}

fn check_spec(args: &[String]) -> Result<(), String> {
    let Some(arg) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(
            "usage: parbs-analyze check-spec <file|prelude:invariants|prelude:qos>".to_owned()
        );
    };
    let (label, spec) = if let Some(name) = arg.strip_prefix("prelude:") {
        let spec = parbs_monitor::prelude::by_name(name).ok_or_else(|| {
            format!(
                "check-spec: unknown prelude spec `{name}` (expected one of: {})",
                parbs_monitor::prelude::NAMES.join(", ")
            )
        })?;
        (arg.clone(), spec)
    } else {
        let src = std::fs::read_to_string(arg)
            .map_err(|e| format!("check-spec: cannot read {arg}: {e}"))?;
        let spec = parbs_monitor::Spec::compile(&src).map_err(|e| format!("{arg}:{e}"))?;
        (arg.clone(), spec)
    };
    println!("check-spec: {label}: {}", spec.describe());
    for s in spec.streams() {
        println!("  stream  {s}");
    }
    for (name, sev) in spec.triggers() {
        println!("  trigger {name} [{sev}]");
    }
    for lint in spec.lints() {
        println!("  warning: {lint}");
    }
    Ok(())
}

fn report(args: &[String]) -> Result<(), String> {
    println!("timing-rule table: {} rules", TIMING_RULES.len());
    for rule in TIMING_RULES {
        println!(
            "  {:<32} {:?} {:?}.{:?} -> {:?}.{:?} (nth {})",
            rule.id, rule.scope, rule.from, rule.from_time, rule.to, rule.to_time, rule.nth
        );
    }
    println!();
    for name in ALL_SCHEDULERS {
        let make = scheduler_by_name(name).expect("shipped scheduler");
        let sched = make();
        if let Some(layout) = sched.key_layout() {
            let fields: Vec<String> =
                layout.fields.iter().map(|f| format!("{}@{}+{}", f.name, f.lo, f.width)).collect();
            println!("key layout {:<8} [{}]", layout.scheduler, fields.join(", "));
        }
    }
    println!();
    let mut forwarded =
        vec!["--depth".to_owned(), value_of(args, "--depth").unwrap_or(4).to_string()];
    forwarded.extend_from_slice(args);
    check_timing(&forwarded)?;
    check_keys(args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check-timing") => check_timing(&args[1..]),
        Some("check-keys") => check_keys(&args[1..]),
        Some("check-spec") => check_spec(&args[1..]),
        Some("report") => report(&args[1..]),
        other => Err(format!(
            "usage: parbs-analyze <check-timing|check-keys|check-spec|report> [options]\n\
             (got {other:?})"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
