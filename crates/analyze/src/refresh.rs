//! Refresh-compliance model checking against the `tREFI` deadline rule.
//!
//! The timing-rule table ([`parbs_dram::TIMING_RULES`]) carries one rule of
//! [`RuleKind::Deadline`]: `tREFI`, bounding how long a rank may go
//! *without* a refresh. Deadline rules gate no candidate command, so the
//! safety checkers ignore them; this module gives them teeth by
//! exhaustively exploring an abstract per-DRAM-cycle model of the
//! controller's refresh scheduling:
//!
//! - `since[rank]` — DRAM cycles since the rank's last refresh (saturating
//!   just past the deadline, which closes the state space),
//! - `bus` — DRAM cycles until the channel's data bus is free.
//!
//! Each step, the adversary may issue a column command (occupying the bus
//! for CAS + burst) unless refresh gating has kicked in; the controller,
//! when gating is on, stops issuing columns once any rank is due and
//! refreshes the most-overdue rank as soon as the bus drains (a refresh
//! occupies the channel for `tRFC`, serializing multi-rank refreshes).
//!
//! The deadline the model is checked against is derived from the rule:
//!
//! ```text
//! deadline = tREFI + CAS + burst + ranks · tRFC   (all in DRAM cycles)
//! ```
//!
//! — the rule's separation plus the worst-case bus drain plus full rank
//! serialization. With gating on, a breadth-first fixpoint proves every
//! reachable state honors the deadline. With gating off (the seeded bug:
//! [`parbs_dram::Controller::set_refresh_gating`] drops refresh scheduling
//! entirely), the checker reports a violation at the *analytically
//! minimal* depth: `since` grows by one per step from zero, so the
//! counterexample appears at exactly `deadline + 1` steps — which the test
//! suite asserts, proving the checker loses no precision to the
//! abstraction.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use parbs_dram::{RuleKind, TimingParams, TimingRule, DRAM_CYCLE, TIMING_RULES};

/// Geometry and mode for the refresh model checker.
#[derive(Debug, Clone)]
pub struct RefreshConfig {
    /// Ranks sharing the channel (1..=4).
    pub ranks: usize,
    /// Override for the refresh interval in DRAM cycles; `None` derives it
    /// from the `tREFI` deadline rule (3120 DRAM cycles for DDR2-800,
    /// which is tractable for one rank but slow for several — surveys use
    /// a small override).
    pub t_refi_dc: Option<u64>,
    /// Refresh gating: `true` models the production controller, `false`
    /// the seeded dropped-refresh bug.
    pub gating: bool,
    /// Timing parameters (CAS, burst, tRFC and the derived refresh
    /// interval come from here).
    pub timing: TimingParams,
    /// Hard cap on explored states.
    pub max_states: usize,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            ranks: 2,
            t_refi_dc: Some(32),
            gating: true,
            timing: TimingParams::ddr2_800(),
            max_states: 4_000_000,
        }
    }
}

/// What the exploration decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshVerdict {
    /// Fixpoint reached with every state inside the deadline.
    Proven,
    /// A rank exceeded the deadline; `depth` is the minimal number of DRAM
    /// cycles to the violation (breadth-first order guarantees
    /// minimality).
    Violated {
        /// Minimal counterexample depth in DRAM cycles.
        depth: u64,
    },
}

/// A refresh model-check result.
#[derive(Debug, Clone)]
pub struct RefreshReport {
    /// Ranks modeled.
    pub ranks: usize,
    /// Refresh interval in DRAM cycles (derived or overridden).
    pub t_refi_dc: u64,
    /// The checked deadline in DRAM cycles.
    pub deadline_dc: u64,
    /// Whether refresh gating was modeled on.
    pub gating: bool,
    /// States explored.
    pub states: u64,
    /// The verdict.
    pub verdict: RefreshVerdict,
}

impl fmt::Display for RefreshReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refresh[{} rank(s), tREFI {} dc, deadline {} dc, gating {}]: ",
            self.ranks,
            self.t_refi_dc,
            self.deadline_dc,
            if self.gating { "on" } else { "OFF" }
        )?;
        match self.verdict {
            RefreshVerdict::Proven => {
                write!(f, "deadline PROVEN over {} states", self.states)
            }
            RefreshVerdict::Violated { depth } => {
                write!(f, "deadline VIOLATED at minimal depth {depth} dc ({} states)", self.states)
            }
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RState {
    since: Vec<u16>,
    bus: u16,
}

/// Model-checks refresh compliance against the `tREFI` deadline rule of
/// the production rule table.
///
/// # Errors
///
/// On an invalid configuration, when the rule table carries no deadline
/// rule, or when the state cap is exceeded.
pub fn check_refresh(cfg: &RefreshConfig) -> Result<RefreshReport, String> {
    check_refresh_with_rules(TIMING_RULES, cfg)
}

/// [`check_refresh`] against an arbitrary rule table — the hook the test
/// suite uses to prove that a rule table with the `tREFI` rule dropped is
/// rejected rather than silently vacuously "proven".
///
/// # Errors
///
/// See [`check_refresh`].
pub fn check_refresh_with_rules(
    rules: &[TimingRule],
    cfg: &RefreshConfig,
) -> Result<RefreshReport, String> {
    if !(1..=4).contains(&cfg.ranks) {
        return Err(format!("ranks must be 1..=4, got {}", cfg.ranks));
    }
    let rule = rules
        .iter()
        .find(|r| r.kind == RuleKind::Deadline)
        .ok_or("no tREFI deadline rule in the timing-rule table — refresh compliance cannot be model-checked")?;
    let t = &cfg.timing;
    let derived_dc = rule.min_sep_cycles(t) / DRAM_CYCLE;
    let t_refi_dc = cfg.t_refi_dc.unwrap_or(derived_dc);
    if !(2..=60_000).contains(&t_refi_dc) {
        return Err(format!("tREFI must be 2..=60000 DRAM cycles, got {t_refi_dc}"));
    }
    let cas_dc = (t.t_cl / DRAM_CYCLE) as u16;
    let burst_dc = (t.t_burst / DRAM_CYCLE) as u16;
    let rfc_dc = (t.t_rfc / DRAM_CYCLE).max(1) as u16;
    let column_busy = cas_dc + burst_dc;
    let deadline_dc = t_refi_dc + u64::from(column_busy) + cfg.ranks as u64 * u64::from(rfc_dc);
    let saturate = (deadline_dc + 1) as u16;

    let init = RState { since: vec![0; cfg.ranks], bus: 0 };
    let mut seen: HashMap<RState, u64> = HashMap::new();
    seen.insert(init.clone(), 0);
    let mut frontier = VecDeque::from([init]);
    while let Some(s) = frontier.pop_front() {
        let depth = seen[&s];
        // One DRAM cycle: the bus drains and every rank ages.
        let mut base = s;
        base.bus = base.bus.saturating_sub(1);
        for x in &mut base.since {
            *x = (*x + 1).min(saturate);
        }
        let due = base.since.iter().any(|&x| u64::from(x) >= t_refi_dc);
        let nexts: Vec<RState> = if cfg.gating && due {
            if base.bus == 0 {
                // Refresh the most-overdue rank; tRFC occupies the channel.
                let r = (0..base.since.len())
                    .max_by_key(|&r| base.since[r])
                    .expect("at least one rank");
                base.since[r] = 0;
                base.bus = rfc_dc;
                vec![base]
            } else {
                // Gated: no new columns; wait for the bus to drain.
                vec![base]
            }
        } else {
            // Free cycle: the adversary may idle or issue a column.
            let mut issue = base.clone();
            issue.bus = column_busy;
            vec![base, issue]
        };
        for n in nexts {
            if seen.contains_key(&n) {
                continue;
            }
            let d = depth + 1;
            if n.since.iter().any(|&x| u64::from(x) > deadline_dc) {
                return Ok(RefreshReport {
                    ranks: cfg.ranks,
                    t_refi_dc,
                    deadline_dc,
                    gating: cfg.gating,
                    states: seen.len() as u64 + 1,
                    verdict: RefreshVerdict::Violated { depth: d },
                });
            }
            if seen.len() >= cfg.max_states {
                return Err(format!(
                    "state cap {} exceeded — shrink ranks or the tREFI override",
                    cfg.max_states
                ));
            }
            seen.insert(n.clone(), d);
            frontier.push_back(n);
        }
    }
    Ok(RefreshReport {
        ranks: cfg.ranks,
        t_refi_dc,
        deadline_dc,
        gating: cfg.gating,
        states: seen.len() as u64,
        verdict: RefreshVerdict::Proven,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{
        Controller, DramConfig, FcfsScheduler, LineAddr, Request, RequestKind, ThreadId,
    };

    #[test]
    fn gating_on_proves_the_deadline() {
        let cfg = RefreshConfig::default();
        let r = check_refresh(&cfg).unwrap();
        assert_eq!(r.verdict, RefreshVerdict::Proven, "{r}");
        assert!(r.states > 100, "nontrivial exploration: {r}");
        assert_eq!(r.deadline_dc, 32 + 10 + 2 * 51, "DDR2-800 deadline arithmetic");
    }

    #[test]
    fn dropped_refresh_is_caught_at_the_analytically_minimal_depth() {
        // Without gating no refresh ever issues, so `since` grows by
        // exactly one per DRAM cycle from zero: the earliest violation is
        // at deadline + 1 steps, and BFS must find precisely that depth.
        let cfg = RefreshConfig { t_refi_dc: Some(16), gating: false, ..Default::default() };
        let r = check_refresh(&cfg).unwrap();
        let RefreshVerdict::Violated { depth } = r.verdict else {
            panic!("the seeded bug must be caught: {r}")
        };
        assert_eq!(depth, r.deadline_dc + 1, "minimal counterexample depth: {r}");
    }

    #[test]
    fn derived_trefi_matches_the_rule_table() {
        // With no override the interval comes from the tREFI rule itself:
        // 31_200 processor cycles = 3120 DRAM cycles for DDR2-800.
        let cfg = RefreshConfig { ranks: 1, t_refi_dc: None, gating: false, ..Default::default() };
        let r = check_refresh(&cfg).unwrap();
        assert_eq!(r.t_refi_dc, 3120);
        let RefreshVerdict::Violated { depth } = r.verdict else { panic!("{r}") };
        assert_eq!(depth, r.deadline_dc + 1);
    }

    #[test]
    fn rule_table_without_the_deadline_rule_is_rejected() {
        let gutted: Vec<TimingRule> =
            TIMING_RULES.iter().filter(|r| r.kind != RuleKind::Deadline).copied().collect();
        let err = check_refresh_with_rules(&gutted, &RefreshConfig::default()).unwrap_err();
        assert!(err.contains("tREFI"), "{err}");
    }

    #[test]
    fn bad_geometry_is_rejected() {
        let cfg = RefreshConfig { ranks: 0, ..Default::default() };
        assert!(check_refresh(&cfg).is_err());
        let cfg = RefreshConfig { t_refi_dc: Some(1), ..Default::default() };
        assert!(check_refresh(&cfg).is_err());
    }

    /// Concrete cross-check: the real controller, with the same seeded bug
    /// injected, observably stops refreshing — and with gating on it holds
    /// refresh gaps near tREFI.
    #[test]
    fn concrete_controller_agrees_with_the_abstract_model() {
        let mut timing = TimingParams::ddr2_800();
        timing.t_refi = 6_000; // frequent refreshes keep the test short
        let cfg = DramConfig { timing, ..DramConfig::default() };
        let horizon = 4 * timing.t_refi;

        let run = |gating: bool| -> (u64, Vec<u64>) {
            let mut ctrl = Controller::new(cfg.clone(), Box::new(FcfsScheduler::new()));
            ctrl.set_refresh_gating(gating);
            // A row-hammering read stream keeps the bus contended.
            let mut out = Vec::new();
            let mut next_id = 0u64;
            let mut refreshes = Vec::new();
            let mut prev = 0u64;
            for now in 0..horizon {
                if now % 500 == 0 && ctrl.can_accept_read() {
                    let req = Request::new(
                        next_id,
                        ThreadId(0),
                        LineAddr { channel: 0, bank: 0, row: 1, col: next_id % 64 },
                        RequestKind::Read,
                        now,
                    );
                    next_id += 1;
                    let _ = ctrl.try_enqueue(req);
                }
                ctrl.tick(now, &mut out);
                let last = ctrl.last_refresh_cycles()[0];
                if last != prev {
                    refreshes.push(last - prev);
                    prev = last;
                }
            }
            (ctrl.last_refresh_cycles()[0], refreshes)
        };

        let (last_ok, gaps) = run(true);
        assert!(last_ok > 0, "refreshes must happen with gating on");
        assert!(gaps.len() >= 2);
        for gap in &gaps[1..] {
            assert!(
                (timing.t_refi..timing.t_refi + 2_000).contains(gap),
                "refresh gap {gap} must stay near tREFI {}",
                timing.t_refi
            );
        }

        let (last_bug, gaps_bug) = run(false);
        assert_eq!(last_bug, 0, "the seeded bug drops refresh entirely");
        assert!(gaps_bug.is_empty());
    }
}
