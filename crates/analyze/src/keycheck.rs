//! Scheduler key-contract analysis.
//!
//! Every shipped [`MemoryScheduler`] declares a [`KeyLayout`]: the ordered,
//! named bit-fields its packed `priority_key` is built from. This module
//! checks the declaration two ways:
//!
//! 1. **Structurally** — [`KeyLayout::validate`]: unique names, MSB-first
//!    non-overlapping fields, an age tiebreaker in the low bits (which is
//!    what makes the packed order total and injective).
//! 2. **Against the implementation** — over a set of enumerated channel
//!    states and request mixes, every packed key must (a) stay inside the
//!    declared bit positions, (b) extract field values consistent with each
//!    field's declared semantic where that semantic is externally
//!    observable (`marked`, row-hit status, the age encoding), and (c)
//!    order exactly like the scheduler's own pairwise
//!    [`MemoryScheduler::compare`] — the lexicographic field order the
//!    layout documents *is* the integer order of the packed key, so any
//!    swapped, shifted or mis-widthed field shows up as a violation of (a),
//!    (b) or (c).
//!
//! The checks are state-driven rather than proof-based: they enumerate
//! channel states with open and closed rows, expired and live capture
//! windows, and marked and unmarked requests, which covers every branch the
//! seven shipped schedulers' packers have.

use parbs_dram::{
    Channel, Command, CommandKind, FieldSemantic, KeyLayout, LineAddr, MemoryScheduler, Request,
    RequestId, RequestKind, SchedView, ThreadId, TimingParams,
};

/// Outcome counters of one scheduler's key check.
#[derive(Debug, Clone)]
pub struct KeyReport {
    /// Scheduler display name.
    pub scheduler: String,
    /// Declared fields.
    pub fields: usize,
    /// Channel states enumerated.
    pub states: u64,
    /// Keys packed and semantically checked.
    pub keys: u64,
    /// Ordered pairs compared against `compare`.
    pub pairs: u64,
}

/// The enumerated channel states: combinations of open rows and `now`
/// values chosen to flip every externally-visible priority input (row hits,
/// capture-window expiry, marking).
fn channel_states() -> Vec<(Channel, u64)> {
    let t = TimingParams::ddr2_800();
    let act = |ch: &mut Channel, bank: usize, row: u64, at: u64| {
        ch.issue(
            &Command {
                kind: CommandKind::Activate,
                rank: 0,
                bank,
                row,
                col: 0,
                request: RequestId(0),
            },
            ThreadId(0),
            at,
        );
    };
    let closed = Channel::new(4, t);
    let mut one_open = Channel::new(4, t);
    act(&mut one_open, 0, 1, 0);
    let mut two_open = Channel::new(4, t);
    act(&mut two_open, 0, 1, 0);
    act(&mut two_open, 1, 2, t.t_rrd);
    vec![
        (closed, 0),
        // Inside NFQ's capture window (now - activate < tras_threshold).
        (one_open.clone(), 70),
        (two_open.clone(), 100),
        // Long after: row hits persist, capture windows have expired.
        (one_open, 50_000),
        (two_open, 50_000),
    ]
}

/// A request mix spanning both threads, hit/conflict/closed banks and
/// distinct ages. Ids are deliberately non-contiguous.
fn request_mix() -> Vec<Request> {
    let spec: &[(u64, usize, usize, u64)] = &[
        // (id, thread, bank, row)
        (0, 0, 0, 1),
        (1, 1, 0, 2),
        (2, 0, 1, 2),
        (3, 1, 1, 1),
        (9, 0, 2, 3),
        (100, 1, 3, 1),
    ];
    spec.iter()
        .map(|&(id, thread, bank, row)| {
            Request::new(
                id,
                ThreadId(thread),
                LineAddr { channel: 0, bank, row, col: 0 },
                RequestKind::Read,
                id, // arrival in id order — the age semantic's premise
            )
        })
        .collect()
}

/// The externally-checkable value of a field for `req` under `view`, if the
/// semantic is observable from outside the scheduler.
fn expected_field_value(
    semantic: FieldSemantic,
    width: u32,
    req: &Request,
    view: &SchedView<'_>,
) -> Option<u128> {
    match semantic {
        FieldSemantic::Marked => Some(u128::from(req.marked)),
        FieldSemantic::RowHit => Some(u128::from(view.is_row_hit(req))),
        // Age is the inverted id over the field's width (oldest = largest).
        FieldSemantic::Age => {
            let max = (1u128 << width) - 1;
            Some(max - u128::from(req.id.0))
        }
        _ => None,
    }
}

/// Checks one scheduler's declared key layout against its implementation;
/// `make` must build a fresh instance (internal policy state accumulates
/// and each enumerated channel state starts from scratch).
///
/// # Errors
///
/// Returns a description of the first violated contract: a missing or
/// structurally-invalid layout, key bits outside the declared fields, a
/// field whose extracted value contradicts its semantic, or a key order
/// that diverges from [`MemoryScheduler::compare`].
pub fn check_scheduler_keys(
    make: &dyn Fn() -> Box<dyn MemoryScheduler>,
) -> Result<KeyReport, String> {
    let probe = make();
    let name = probe.name().to_owned();
    let layout: &'static KeyLayout =
        probe.key_layout().ok_or_else(|| format!("{name}: no declared KeyLayout"))?;
    layout.validate().map_err(|e| format!("{name}: invalid KeyLayout: {e}"))?;
    let used = layout.used_mask();
    let mut report = KeyReport {
        scheduler: name.clone(),
        fields: layout.fields.len(),
        states: 0,
        keys: 0,
        pairs: 0,
    };
    for (channel, now) in channel_states() {
        report.states += 1;
        let mut sched = make();
        let mut queue = request_mix();
        for req in &queue {
            sched.on_arrival(req, req.arrival);
        }
        let view = SchedView { channel: &channel, now };
        // Let the policy mark/rank/recompute exactly as the controller would.
        sched.pre_schedule(&mut queue, &view);
        let keys: Vec<u128> = queue.iter().map(|r| sched.priority_key(r, &view)).collect();
        for (req, &key) in queue.iter().zip(&keys) {
            report.keys += 1;
            if key & !used != 0 {
                return Err(format!(
                    "{name}: key {key:#x} of request {} sets bits outside the declared fields \
                     (mask {used:#x})",
                    req.id.0
                ));
            }
            for field in layout.fields {
                let got = field.extract(key);
                if let Some(want) = expected_field_value(field.semantic, field.width, req, &view) {
                    if got != want {
                        return Err(format!(
                            "{name}: field `{}` of request {} extracts {got:#x}, but its \
                             {:?} semantic implies {want:#x} (state: now={now})",
                            field.name, req.id.0, field.semantic
                        ));
                    }
                }
                // A captured row hit must actually be a row hit.
                if field.semantic == FieldSemantic::RecentRowHit
                    && got == 1
                    && !view.is_row_hit(req)
                {
                    return Err(format!(
                        "{name}: field `{}` claims a captured row hit for request {} on a \
                         non-hit bank",
                        field.name, req.id.0
                    ));
                }
            }
        }
        for (i, a) in queue.iter().enumerate() {
            for (j, b) in queue.iter().enumerate() {
                if i == j {
                    continue;
                }
                report.pairs += 1;
                let by_cmp = sched.compare(a, b, &view);
                let by_key = keys[j].cmp(&keys[i]);
                if by_cmp != by_key {
                    return Err(format!(
                        "{name}: requests {} and {} order {by_cmp:?} under compare() but \
                         {by_key:?} under the packed keys (state: now={now})",
                        a.id.0, b.id.0
                    ));
                }
                if keys[i] == keys[j] {
                    return Err(format!(
                        "{name}: requests {} and {} pack identical keys — the order is not \
                         injective",
                        a.id.0, b.id.0
                    ));
                }
            }
        }
    }
    Ok(report)
}

/// Builds every shipped scheduler by display name; `None` for unknown names.
#[must_use]
pub fn scheduler_by_name(name: &str) -> Option<Box<dyn Fn() -> Box<dyn MemoryScheduler>>> {
    match name {
        "FCFS" => Some(Box::new(|| Box::new(parbs_dram::FcfsScheduler::new()))),
        "FR-FCFS" => Some(Box::new(|| Box::new(parbs_baselines::FrFcfsScheduler::new()))),
        "NFQ" => Some(Box::new(|| Box::new(parbs_baselines::NfqScheduler::new()))),
        "STFM" => Some(Box::new(|| Box::new(parbs_baselines::StfmScheduler::new()))),
        "PAR-BS" => {
            Some(Box::new(|| Box::new(parbs::ParBsScheduler::new(parbs::ParBsConfig::default()))))
        }
        "BLISS" => Some(Box::new(|| Box::new(parbs_baselines::BlissScheduler::new()))),
        "ATLAS" => Some(Box::new(|| Box::new(parbs_baselines::AtlasScheduler::new()))),
        _ => None,
    }
}

/// The seven shipped scheduler names: the paper's five in the paper's
/// order, then the post-PAR-BS zoo members (BLISS, ATLAS).
pub const ALL_SCHEDULERS: &[&str] = &["FCFS", "FR-FCFS", "NFQ", "STFM", "PAR-BS", "BLISS", "ATLAS"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shipped_schedulers_pass() {
        for name in ALL_SCHEDULERS {
            let make = scheduler_by_name(name).expect("known scheduler");
            let report = check_scheduler_keys(make.as_ref())
                .unwrap_or_else(|e| panic!("{name} failed key check: {e}"));
            assert!(report.states >= 5 && report.pairs > 0, "{name}: check must exercise states");
        }
    }

    #[test]
    fn unknown_scheduler_name_is_rejected() {
        assert!(scheduler_by_name("LRU").is_none());
    }
}
