//! Liveness model checking: per-scheduler starvation bounds.
//!
//! Where the differential checker ([`crate::run_differential`]) proves
//! *safety* (no illegal command ever issues), this module decides a
//! *liveness* question: **can a request starve forever?** For each
//! scheduler's declared [`LivenessContract`] it exhaustively explores a
//! small abstract model of the controller + scheduling policy and either
//!
//! - proves a concrete bound — "every enqueued request is serviced within
//!   `K` other services" (and reports the tightest such `K`, plus a
//!   conservative conversion to DRAM cycles) — or
//! - emits a minimal *lasso* witness (a stem reaching a starvation state
//!   plus a cycle that repeats forever while the victim stays queued),
//!   demonstrating unbounded starvation.
//!
//! # The abstract model
//!
//! The model is victim-centric: one distinguished *victim* request (thread
//! 0) is injected once, adversary threads inject freely, and the scheduler
//! serves one request per `Serve` step. A state is the ordered request
//! queue (thread, bank, row, marked), the per-bank open rows, the victim's
//! phase, and the policy's bookkeeping (streaks, blacklists, attained /
//! wait counters — all saturating, which closes the state space). The
//! queue capacity bounds the space, so a breadth-first fixpoint is an
//! *exhaustive* exploration: with the space closed, an acyclic
//! victim-queued subgraph proves boundedness (the longest `Serve`-counting
//! path is the tight bound), and any cycle is a genuine infinite
//! starvation — relabelings never move the victim's queue slot, so the
//! same request stays queued forever.
//!
//! Service order inside each policy is decided only by *relations* (row
//! hit against the open row, marked bit, per-thread saturating counters)
//! and by age — never by raw bank/row/thread ids. That label-equivariance
//! is what makes the symmetry quotient of [`crate::symmetry`] sound: states
//! are deduplicated by canonical form, and the raw state count is
//! recovered exactly from orbit sizes.
//!
//! Witness traces replay as [`parbs_obs::Event`] streams
//! ([`Witness::to_events`]) so the `prelude:invariants` monitor spec can
//! cross-validate them: the model's batching policy must satisfy the same
//! four PAR-BS invariants the simulator is held to.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use parbs_dram::{LivenessContract, LivenessPolicy, StarvationClaim, TimingParams, DRAM_CYCLE};
use parbs_obs::{CmdKind, Event, ServiceClass};

use crate::keycheck::scheduler_by_name;
use crate::symmetry::{canonicalize, NONE};

/// Geometry and exploration limits for the liveness checker.
#[derive(Debug, Clone)]
pub struct LivenessConfig {
    /// Banks in the modeled channel (1..=8).
    pub banks: usize,
    /// Rows per bank (2..=8; two rows suffice to express hit vs conflict).
    pub rows: u8,
    /// Request-queue capacity; this closes the state space (2..=12).
    pub queue_capacity: usize,
    /// Adversary threads injecting alongside the victim (1..=4).
    pub adversary_threads: usize,
    /// Optional exploration-depth horizon (moves from the initial state).
    /// `None` runs to the fixpoint; boundedness proofs require the
    /// exploration to be closed, so horizons are for state-space surveys.
    pub max_depth: Option<u32>,
    /// Hard cap on canonical states before the exploration gives up.
    pub max_states: usize,
    /// Timing parameters used to convert service bounds into cycle bounds.
    pub timing: TimingParams,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            banks: 2,
            rows: 2,
            queue_capacity: 4,
            adversary_threads: 1,
            max_depth: None,
            max_states: 4_000_000,
            timing: TimingParams::ddr2_800(),
        }
    }
}

impl LivenessConfig {
    /// The default tiny geometry: 2 banks × 2 rows, queue capacity 4, one
    /// adversary thread, explored to the fixpoint.
    #[must_use]
    pub fn tiny() -> Self {
        LivenessConfig::default()
    }

    /// Rejects geometries outside the supported envelope.
    ///
    /// # Errors
    ///
    /// When any dimension is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=8).contains(&self.banks) {
            return Err(format!("banks must be 1..=8, got {}", self.banks));
        }
        if !(2..=8).contains(&self.rows) {
            return Err(format!("rows must be 2..=8, got {}", self.rows));
        }
        if !(2..=12).contains(&self.queue_capacity) {
            return Err(format!("queue capacity must be 2..=12, got {}", self.queue_capacity));
        }
        if !(1..=4).contains(&self.adversary_threads) {
            return Err(format!("adversary threads must be 1..=4, got {}", self.adversary_threads));
        }
        Ok(())
    }
}

/// One queued request in the abstract model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slot {
    /// Issuing thread (0 = victim).
    pub(crate) thread: u8,
    /// Target bank.
    pub(crate) bank: u8,
    /// Target row within the bank.
    pub(crate) row: u8,
    /// Marked into the current batch (batch-marking policies only).
    pub(crate) marked: bool,
}

/// Where the victim request is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VictimPhase {
    /// Not yet injected.
    NotArrived,
    /// In the queue, waiting — the phase starvation is decided over.
    Queued,
    /// Serviced; the state is terminal for the victim-centric question.
    Served,
}

/// Per-policy bookkeeping, saturating so the state space stays finite.
/// Unused fields stay at their zero values for policies that do not read
/// them, keeping the canonical encoding uniform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PolicyState {
    /// Thread served by the most recent `Serve` (blacklisting only;
    /// `NONE` = no service yet).
    pub(crate) last_served: u8,
    /// Consecutive services of `last_served` (saturating at the
    /// blacklist threshold).
    pub(crate) streak: u8,
    /// Per-thread boolean state (blacklisted bit).
    pub(crate) flags: Vec<bool>,
    /// Per-thread saturating counters (attained service or wait time).
    pub(crate) counters: Vec<u8>,
}

impl PolicyState {
    /// Fresh bookkeeping for `threads` threads.
    pub(crate) fn new(threads: usize) -> Self {
        PolicyState {
            last_served: NONE,
            streak: 0,
            flags: vec![false; threads],
            counters: vec![0; threads],
        }
    }
}

/// A full abstract controller state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ModelState {
    /// Queued requests in arrival order (age = index).
    pub(crate) queue: Vec<Slot>,
    /// Per-bank open row (`NONE` = precharged).
    pub(crate) open: Vec<u8>,
    /// The victim's phase.
    pub(crate) victim: VictimPhase,
    /// Policy bookkeeping.
    pub(crate) pol: PolicyState,
}

/// One transition of the abstract model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// An adversary thread enqueues a read.
    Inject {
        /// Injecting thread (1-based; 0 is the victim).
        thread: u8,
        /// Target bank.
        bank: u8,
        /// Target row.
        row: u8,
    },
    /// The victim's single request enqueues.
    InjectVictim {
        /// Target bank.
        bank: u8,
        /// Target row.
        row: u8,
    },
    /// The scheduler services one request (deterministic per policy).
    Serve,
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Move::Inject { thread, bank, row } => {
                write!(f, "inject t{thread} bank{bank} row{row}")
            }
            Move::InjectVictim { bank, row } => write!(f, "inject-victim bank{bank} row{row}"),
            Move::Serve => write!(f, "serve"),
        }
    }
}

fn initial(cfg: &LivenessConfig) -> ModelState {
    ModelState {
        queue: Vec::new(),
        open: vec![NONE; cfg.banks],
        victim: VictimPhase::NotArrived,
        pol: PolicyState::new(cfg.adversary_threads + 1),
    }
}

/// Clamps a contract parameter into the u8 counter range.
fn sat_u8(v: u32) -> u8 {
    v.min(250) as u8
}

/// The priority key of queue slot `i` — lexicographically larger wins, and
/// ties fall back to age (the scan keeps the earliest maximum). Keys only
/// read relations and counters, never raw ids: this is the
/// label-equivariance the symmetry quotient relies on.
fn slot_key(s: &ModelState, policy: &LivenessPolicy, i: usize) -> (u8, u8, u8) {
    let slot = &s.queue[i];
    let hit = u8::from(s.open[slot.bank as usize] == slot.row);
    let t = slot.thread as usize;
    match *policy {
        LivenessPolicy::Fifo => (0, 0, 0),
        LivenessPolicy::FrFcfs => (0, 0, hit),
        LivenessPolicy::BatchMarking { .. } => (u8::from(slot.marked), 0, hit),
        LivenessPolicy::Blacklist { .. } => (u8::from(!s.pol.flags[t]), 0, hit),
        LivenessPolicy::LeastAttained { saturation } => {
            (0, sat_u8(saturation) - s.pol.counters[t], hit)
        }
        LivenessPolicy::FairnessThreshold { threshold } => {
            let boosted = s.pol.counters[t] >= sat_u8(threshold);
            (u8::from(boosted), if boosted { s.pol.counters[t] } else { 0 }, hit)
        }
    }
}

/// What one `Serve` step did, for witness replay.
pub(crate) struct ServeOutcome {
    /// The state after the service.
    pub(crate) next: ModelState,
    /// Index of the served slot in the post-marking, pre-removal queue.
    pub(crate) index: usize,
    /// The served slot (with its post-marking `marked` bit).
    pub(crate) slot: Slot,
    /// Indices (same queue view) marked at this step's batch formation.
    pub(crate) newly_marked: Vec<usize>,
}

/// Applies one deterministic `Serve`: batch formation if the policy
/// batches and no marks remain, then highest-priority-oldest selection,
/// then policy bookkeeping.
pub(crate) fn serve_step(s: &ModelState, policy: &LivenessPolicy) -> Option<ServeOutcome> {
    if s.queue.is_empty() {
        return None;
    }
    let mut st = s.clone();
    let mut newly_marked = Vec::new();
    if let LivenessPolicy::BatchMarking { cap } = *policy {
        if !st.queue.iter().any(|x| x.marked) {
            // Form a batch: mark the oldest `cap` requests per
            // (thread, bank) — PAR-BS Rule 1.
            let mut counts: HashMap<(u8, u8), u32> = HashMap::new();
            for (i, slot) in st.queue.iter_mut().enumerate() {
                let c = counts.entry((slot.thread, slot.bank)).or_insert(0);
                if *c < cap {
                    *c += 1;
                    slot.marked = true;
                    newly_marked.push(i);
                }
            }
        }
    }
    let mut best = 0usize;
    for i in 1..st.queue.len() {
        if slot_key(&st, policy, i) > slot_key(&st, policy, best) {
            best = i;
        }
    }
    let slot = st.queue.remove(best);
    st.open[slot.bank as usize] = slot.row;
    let t = slot.thread as usize;
    match *policy {
        LivenessPolicy::Blacklist { threshold } => {
            let thr = sat_u8(threshold);
            if st.pol.last_served == slot.thread {
                st.pol.streak = st.pol.streak.saturating_add(1).min(thr);
            } else {
                st.pol.last_served = slot.thread;
                st.pol.streak = 1;
            }
            if st.pol.streak >= thr {
                st.pol.flags[t] = true;
            }
        }
        LivenessPolicy::LeastAttained { saturation } => {
            st.pol.counters[t] = st.pol.counters[t].saturating_add(1).min(sat_u8(saturation));
        }
        LivenessPolicy::FairnessThreshold { threshold } => {
            let thr = sat_u8(threshold);
            let mut queued = vec![false; st.pol.counters.len()];
            for q in &st.queue {
                queued[q.thread as usize] = true;
            }
            for (u, c) in st.pol.counters.iter_mut().enumerate() {
                if u != t && queued[u] {
                    *c = c.saturating_add(1).min(thr);
                }
            }
            st.pol.counters[t] = 0;
        }
        LivenessPolicy::Fifo | LivenessPolicy::FrFcfs | LivenessPolicy::BatchMarking { .. } => {}
    }
    if slot.thread == 0 {
        st.victim = VictimPhase::Served;
    }
    Some(ServeOutcome { next: st, index: best, slot, newly_marked })
}

/// All enabled transitions of `s`. Victim-served states are terminal: the
/// starvation question is settled there.
fn successors(
    s: &ModelState,
    cfg: &LivenessConfig,
    policy: &LivenessPolicy,
) -> Vec<(Move, ModelState)> {
    let mut out = Vec::new();
    if s.victim == VictimPhase::Served {
        return out;
    }
    if s.queue.len() < cfg.queue_capacity {
        for thread in 1..=cfg.adversary_threads as u8 {
            for bank in 0..cfg.banks as u8 {
                for row in 0..cfg.rows {
                    let mut n = s.clone();
                    n.queue.push(Slot { thread, bank, row, marked: false });
                    out.push((Move::Inject { thread, bank, row }, n));
                }
            }
        }
        if s.victim == VictimPhase::NotArrived {
            for bank in 0..cfg.banks as u8 {
                for row in 0..cfg.rows {
                    let mut n = s.clone();
                    n.queue.push(Slot { thread: 0, bank, row, marked: false });
                    n.victim = VictimPhase::Queued;
                    out.push((Move::InjectVictim { bank, row }, n));
                }
            }
        }
    }
    if let Some(o) = serve_step(s, policy) {
        out.push((Move::Serve, o.next));
    }
    out
}

/// The explored quotient graph: one representative member per canonical
/// state, with BFS parents for minimal-stem reconstruction. A stored
/// representative is always the exact member produced by its parent edge,
/// so parent chains replay concretely from the initial state.
pub(crate) struct Exploration {
    pub(crate) reps: Vec<ModelState>,
    pub(crate) index: HashMap<Vec<u8>, u32>,
    pub(crate) parent: Vec<u32>,
    pub(crate) parent_move: Vec<Move>,
    pub(crate) depth: Vec<u32>,
    pub(crate) raw_states: u64,
    pub(crate) closed: bool,
}

/// Breadth-first fixpoint over canonical states.
pub(crate) fn explore(policy: &LivenessPolicy, cfg: &LivenessConfig) -> Exploration {
    let init = initial(cfg);
    let (key, orbit) = canonicalize(&init, cfg);
    let mut ex = Exploration {
        reps: vec![init],
        index: HashMap::new(),
        parent: vec![u32::MAX],
        parent_move: vec![Move::Serve],
        depth: vec![0],
        raw_states: orbit,
        closed: true,
    };
    ex.index.insert(key, 0);
    let mut frontier: VecDeque<u32> = VecDeque::from([0]);
    while let Some(i) = frontier.pop_front() {
        let state = ex.reps[i as usize].clone();
        let d = ex.depth[i as usize];
        let at_horizon = cfg.max_depth.is_some_and(|m| d >= m);
        for (mv, next) in successors(&state, cfg, policy) {
            let (key, orbit) = canonicalize(&next, cfg);
            if ex.index.contains_key(&key) {
                continue;
            }
            if at_horizon || ex.reps.len() >= cfg.max_states {
                ex.closed = false;
                continue;
            }
            let id = ex.reps.len() as u32;
            ex.index.insert(key, id);
            ex.reps.push(next);
            ex.parent.push(i);
            ex.parent_move.push(mv);
            ex.depth.push(d + 1);
            ex.raw_states += orbit;
            frontier.push_back(id);
        }
    }
    ex
}

/// Successor state ids of canonical state `i` (exploration must be
/// closed), with the `Serve` cost of each edge.
fn successor_ids(
    ex: &Exploration,
    cfg: &LivenessConfig,
    policy: &LivenessPolicy,
    i: u32,
) -> Vec<(Move, u32)> {
    successors(&ex.reps[i as usize], cfg, policy)
        .into_iter()
        .map(|(mv, s)| {
            let (key, _) = canonicalize(&s, cfg);
            let id = *ex.index.get(&key).expect("closed exploration contains every successor");
            (mv, id)
        })
        .collect()
}

fn victim_queued(s: &ModelState) -> bool {
    s.victim == VictimPhase::Queued
}

/// Iterative longest-`Serve`-path over the victim-queued subgraph.
/// Returns `None` when the subgraph has a cycle (unbounded starvation);
/// otherwise `(memo, best)` where `memo[i]` is the maximum number of
/// services before the victim is served from state `i`, and `best[i]` the
/// argmax successor (for extremal-trace reconstruction).
#[allow(clippy::needless_range_loop)]
fn longest_paths(
    ex: &Exploration,
    cfg: &LivenessConfig,
    policy: &LivenessPolicy,
) -> Option<(Vec<u32>, Vec<u32>)> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let n = ex.reps.len();
    let mut color = vec![WHITE; n];
    let mut memo = vec![0u32; n];
    let mut best = vec![u32::MAX; n];
    struct Frame {
        idx: usize,
        children: Vec<(u32, u32)>,
        cur: usize,
        val: u32,
        tgt: u32,
    }
    let new_frame = |idx: usize| -> Frame {
        let children = successor_ids(ex, cfg, policy, idx as u32)
            .into_iter()
            .map(|(mv, id)| (u32::from(mv == Move::Serve), id))
            .collect();
        Frame { idx, children, cur: 0, val: 0, tgt: u32::MAX }
    };
    for root in 0..n {
        if color[root] != WHITE || !victim_queued(&ex.reps[root]) {
            continue;
        }
        color[root] = GREY;
        let mut stack = vec![new_frame(root)];
        while let Some(top) = stack.last_mut() {
            if top.cur < top.children.len() {
                let (cost, tgt) = top.children[top.cur];
                let t = tgt as usize;
                if ex.reps[t].victim == VictimPhase::Served {
                    // The edge serving the victim itself: path value 1.
                    if cost > top.val || top.tgt == u32::MAX {
                        top.val = cost;
                        top.tgt = tgt;
                    }
                    top.cur += 1;
                } else {
                    match color[t] {
                        WHITE => {
                            color[t] = GREY;
                            let frame = new_frame(t);
                            stack.push(frame);
                        }
                        GREY => return None,
                        _ => {
                            let cand = cost + memo[t];
                            if cand > top.val || top.tgt == u32::MAX {
                                top.val = cand;
                                top.tgt = tgt;
                            }
                            top.cur += 1;
                        }
                    }
                }
            } else {
                color[top.idx] = BLACK;
                memo[top.idx] = top.val;
                best[top.idx] = top.tgt;
                stack.pop();
            }
        }
    }
    Some((memo, best))
}

/// Finds the minimal lasso in a cyclic victim-queued subgraph: the
/// on-a-cycle state with the smallest BFS depth (minimal stem), plus the
/// shortest cycle through it. Returns `(entry, cycle_targets)` where the
/// target list ends back at `entry`.
fn minimal_lasso(
    ex: &Exploration,
    cfg: &LivenessConfig,
    policy: &LivenessPolicy,
) -> (u32, Vec<u32>) {
    let n = ex.reps.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, edges) in adj.iter_mut().enumerate() {
        if !victim_queued(&ex.reps[i]) {
            continue;
        }
        for (_, t) in successor_ids(ex, cfg, policy, i as u32) {
            if victim_queued(&ex.reps[t as usize]) {
                edges.push(t);
            }
        }
    }
    // Iterative Tarjan SCC over the victim-queued subgraph. A state is on
    // a cycle iff its component has at least two members (self-loops are
    // impossible: every move changes the queue).
    let mut order = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![u32::MAX; n];
    let mut comp_sizes: Vec<u32> = Vec::new();
    let mut next_order = 0u32;
    let mut scc_stack: Vec<u32> = Vec::new();
    for root in 0..n {
        if order[root] != u32::MAX || !victim_queued(&ex.reps[root]) {
            continue;
        }
        let mut call: Vec<(u32, usize)> = vec![(root as u32, 0)];
        order[root] = next_order;
        low[root] = next_order;
        next_order += 1;
        scc_stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&(v, cur)) = call.last() {
            let vi = v as usize;
            if cur < adj[vi].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let w = adj[vi][cur] as usize;
                if order[w] == u32::MAX {
                    order[w] = next_order;
                    low[w] = next_order;
                    next_order += 1;
                    scc_stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, 0));
                } else if on_stack[w] {
                    low[vi] = low[vi].min(order[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == order[vi] {
                    let cid = comp_sizes.len() as u32;
                    let mut size = 0u32;
                    loop {
                        let w = scc_stack.pop().expect("scc stack underrun");
                        on_stack[w as usize] = false;
                        comp[w as usize] = cid;
                        size += 1;
                        if w as usize == vi {
                            break;
                        }
                    }
                    comp_sizes.push(size);
                }
            }
        }
    }
    let entry = (0..n)
        .filter(|&i| comp[i] != u32::MAX && comp_sizes[comp[i] as usize] >= 2)
        .min_by_key(|&i| ex.depth[i])
        .expect("a cycle exists when longest_paths found one") as u32;
    // Shortest cycle through `entry`: BFS within the subgraph, then close
    // the loop over the cheapest edge back into `entry`.
    let mut dist = vec![u32::MAX; n];
    let mut pred = vec![u32::MAX; n];
    dist[entry as usize] = 0;
    let mut q = VecDeque::from([entry]);
    while let Some(u) = q.pop_front() {
        for &w in &adj[u as usize] {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[u as usize] + 1;
                pred[w as usize] = u;
                q.push_back(w);
            }
        }
    }
    let back = (0..n)
        .filter(|&u| dist[u] != u32::MAX && adj[u].contains(&entry))
        .min_by_key(|&u| dist[u])
        .expect("entry lies on a cycle");
    let mut path = vec![entry];
    let mut cur = back as u32;
    while cur != entry {
        path.push(cur);
        cur = pred[cur as usize];
    }
    path.reverse(); // now: first hop after entry .. back, then close
    (entry, path)
}

/// The canonical-state index path from the initial state to `i` along BFS
/// parents (excluding the initial state itself).
fn path_to(ex: &Exploration, i: u32) -> Vec<u32> {
    let mut path = Vec::new();
    let mut cur = i;
    while cur != 0 {
        path.push(cur);
        cur = ex.parent[cur as usize];
    }
    path.reverse();
    path
}

/// Replays a canonical index path concretely: starting from `start`, picks
/// at each step the successor whose canonical form matches the next path
/// state (one always exists, by equivariance). Returns the concrete moves
/// and the final concrete state.
fn follow(
    ex: &Exploration,
    cfg: &LivenessConfig,
    policy: &LivenessPolicy,
    start: ModelState,
    targets: &[u32],
) -> (Vec<Move>, ModelState) {
    let mut c = start;
    let mut moves = Vec::with_capacity(targets.len());
    for &t in targets {
        let tkey = canonicalize(&ex.reps[t as usize], cfg).0;
        let (mv, next) = successors(&c, cfg, policy)
            .into_iter()
            .find(|(_, s2)| canonicalize(s2, cfg).0 == tkey)
            .expect("equivariance: a matching successor exists");
        moves.push(mv);
        c = next;
    }
    (moves, c)
}

/// A concrete witness trace.
///
/// For an unbounded verdict this is a *lasso*: after the `stem`, repeating
/// the `cycle` forever leaves the victim's request queued at every step
/// (the cycle returns to the same state up to bank/row relabeling, and
/// relabelings fix the victim's slot). For a bounded verdict the `cycle`
/// is empty and the `stem` is an extremal trace realizing the bound.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Moves from the empty initial state to the decisive state.
    pub stem: Vec<Move>,
    /// The infinitely repeatable starvation loop (empty when bounded).
    pub cycle: Vec<Move>,
}

impl Witness {
    /// Renders the witness as one line per move.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for mv in &self.stem {
            out.push_str(&format!("  stem : {mv}\n"));
        }
        for mv in &self.cycle {
            out.push_str(&format!("  cycle: {mv}\n"));
        }
        out
    }

    /// Replays the witness (stem plus two cycle unrollings) as an
    /// observability event stream, suitable for cross-validation by the
    /// `prelude:invariants` monitor spec.
    #[must_use]
    pub fn to_events(&self, policy: &LivenessPolicy, cfg: &LivenessConfig) -> Vec<Event> {
        let mut rp = Replay::new(cfg);
        for mv in &self.stem {
            rp.apply(*mv, policy, cfg);
        }
        for _ in 0..2 {
            for mv in &self.cycle {
                rp.apply(*mv, policy, cfg);
            }
        }
        rp.events
    }
}

/// Concrete re-execution of a move sequence with event emission.
struct Replay {
    state: ModelState,
    ids: Vec<u64>,
    arrivals: Vec<u64>,
    next_id: u64,
    batch_no: u64,
    now: u64,
    events: Vec<Event>,
}

impl Replay {
    fn new(cfg: &LivenessConfig) -> Replay {
        Replay {
            state: initial(cfg),
            ids: Vec::new(),
            arrivals: Vec::new(),
            next_id: 0,
            batch_no: 0,
            now: 0,
            events: Vec::new(),
        }
    }

    fn enqueue(&mut self, thread: u8, bank: u8, row: u8) {
        self.events.push(Event::Enqueued {
            at: self.now,
            request: self.next_id,
            thread: thread as usize,
            write: false,
            rank: 0,
            bank: bank as usize,
            row: u64::from(row),
        });
        self.state.queue.push(Slot { thread, bank, row, marked: false });
        self.ids.push(self.next_id);
        self.arrivals.push(self.now);
        self.next_id += 1;
    }

    fn apply(&mut self, mv: Move, policy: &LivenessPolicy, cfg: &LivenessConfig) {
        match mv {
            Move::Inject { thread, bank, row } => self.enqueue(thread, bank, row),
            Move::InjectVictim { bank, row } => {
                self.enqueue(0, bank, row);
                self.state.victim = VictimPhase::Queued;
            }
            Move::Serve => {
                let out = serve_step(&self.state, policy).expect("serve on a nonempty queue");
                if !out.newly_marked.is_empty() {
                    self.batch_no += 1;
                    let mut per_thread: BTreeMap<usize, u32> = BTreeMap::new();
                    for &i in &out.newly_marked {
                        *per_thread.entry(self.state.queue[i].thread as usize).or_insert(0) += 1;
                    }
                    let cap = match *policy {
                        LivenessPolicy::BatchMarking { cap } if cap != u32::MAX => Some(cap),
                        _ => None,
                    };
                    self.events.push(Event::BatchFormed {
                        at: self.now,
                        id: self.batch_no,
                        marked: out.newly_marked.len() as u32,
                        cap,
                        exclusive: true,
                        per_thread: per_thread.into_iter().collect(),
                    });
                    for &i in &out.newly_marked {
                        let slot = self.state.queue[i];
                        self.events.push(Event::Marked {
                            at: self.now,
                            request: self.ids[i],
                            thread: slot.thread as usize,
                            rank: 0,
                            bank: slot.bank as usize,
                        });
                    }
                }
                let slot = out.slot;
                let before = self.state.open[slot.bank as usize];
                let service = if before == slot.row {
                    ServiceClass::Hit
                } else if before == NONE {
                    ServiceClass::Closed
                } else {
                    ServiceClass::Conflict
                };
                let data_end = self.now + cfg.timing.t_cl + cfg.timing.t_burst;
                let request = self.ids[out.index];
                self.events.push(Event::CommandIssued {
                    at: self.now,
                    request,
                    thread: slot.thread as usize,
                    kind: CmdKind::Read,
                    rank: 0,
                    bank: slot.bank as usize,
                    row: u64::from(slot.row),
                    col: 0,
                    marked: slot.marked,
                    service: Some(service),
                    data_end: Some(data_end),
                });
                self.events.push(Event::Completed {
                    at: self.now,
                    request,
                    thread: slot.thread as usize,
                    write: false,
                    arrival: self.arrivals[out.index],
                    finish: data_end,
                });
                self.ids.remove(out.index);
                self.arrivals.remove(out.index);
                self.state = out.next;
            }
        }
        self.now += 4 * DRAM_CYCLE;
    }
}

/// The checker's answer for one scheduler.
#[derive(Debug, Clone)]
pub enum LivenessVerdict {
    /// Starvation is bounded: at most `services` other requests are
    /// serviced before any enqueued request, which takes at most `cycles`
    /// DRAM cycles under the conservative per-service worst case.
    Bounded {
        /// Tightest bound on services before the victim is served.
        services: u32,
        /// Conservative cycle conversion of `services`.
        cycles: u64,
    },
    /// A reachable starvation loop exists: the witness lasso starves the
    /// victim forever.
    Unbounded,
    /// The exploration was truncated (depth horizon or state cap); no
    /// claim can be decided.
    Inconclusive,
}

/// A full liveness-check result for one scheduler.
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// Scheduler name (from the contract).
    pub scheduler: String,
    /// The policy class that was model-checked.
    pub policy: LivenessPolicy,
    /// The starvation claim the scheduler declared.
    pub claim: StarvationClaim,
    /// What the exhaustive exploration decided.
    pub verdict: LivenessVerdict,
    /// Extremal trace (bounded) or minimal lasso (unbounded).
    pub witness: Option<Witness>,
    /// Canonical (symmetry-reduced) states explored.
    pub canonical_states: u64,
    /// Raw states represented, recovered exactly from orbit sizes.
    pub raw_states: u64,
    /// True when the exploration reached its fixpoint (required for a
    /// bounded verdict to be a proof).
    pub closed: bool,
}

impl LivenessReport {
    /// Whether the exploration's verdict confirms the declared claim.
    #[must_use]
    pub fn claim_verified(&self) -> bool {
        matches!(
            (&self.claim, &self.verdict),
            (StarvationClaim::Bounded, LivenessVerdict::Bounded { .. })
                | (StarvationClaim::Unbounded, LivenessVerdict::Unbounded)
        )
    }

    /// Raw-to-canonical state-count reduction factor.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.canonical_states == 0 {
            return 1.0;
        }
        self.raw_states as f64 / self.canonical_states as f64
    }
}

impl fmt::Display for LivenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} — ", self.scheduler, self.policy)?;
        match self.verdict {
            LivenessVerdict::Bounded { services, cycles } => {
                write!(f, "bounded: ≤ {services} services (≤ {cycles} cycles)")?;
            }
            LivenessVerdict::Unbounded => write!(f, "UNBOUNDED starvation")?,
            LivenessVerdict::Inconclusive => write!(f, "inconclusive (truncated)")?,
        }
        write!(
            f,
            "; {} canonical / {} raw states ({:.1}x){}",
            self.canonical_states,
            self.raw_states,
            self.reduction(),
            if self.closed { ", closed" } else { ", truncated" }
        )
    }
}

/// Conservative conversion of a service count into DRAM cycles: each
/// service costs at most a full conflict turnaround (precharge + activate
/// + CAS + burst), plus the refresh share of the window.
fn services_to_cycles(services: u32, t: &TimingParams) -> u64 {
    let per = t.t_rp + t.t_rcd + t.t_cl + t.t_burst;
    let base = u64::from(services) * per;
    let refreshes = base.checked_div(t.t_refi).map_or(0, |n| n + 1);
    base + refreshes * t.t_rfc
}

/// Model-checks one declared contract on the given geometry.
///
/// # Errors
///
/// On an invalid geometry or contract. A truncated exploration is not an
/// error — it yields an [`LivenessVerdict::Inconclusive`] report.
pub fn check_contract(
    contract: &LivenessContract,
    cfg: &LivenessConfig,
) -> Result<LivenessReport, String> {
    cfg.validate()?;
    contract.validate()?;
    let policy = contract.policy;
    let ex = explore(&policy, cfg);
    let mut report = LivenessReport {
        scheduler: contract.scheduler.to_string(),
        policy,
        claim: contract.claim,
        verdict: LivenessVerdict::Inconclusive,
        witness: None,
        canonical_states: ex.reps.len() as u64,
        raw_states: ex.raw_states,
        closed: ex.closed,
    };
    if !ex.closed {
        return Ok(report);
    }
    match longest_paths(&ex, cfg, &policy) {
        Some((memo, best)) => {
            // Bounded. The tight bound is attained at a victim-arrival
            // state (any deeper maximum has an arrival ancestor at least
            // as large).
            let entry = (0..ex.reps.len())
                .filter(|&i| {
                    ex.parent[i] != u32::MAX
                        && matches!(ex.parent_move[i], Move::InjectVictim { .. })
                })
                .max_by_key(|&i| memo[i]);
            let Some(entry) = entry else {
                // Degenerate geometry: the victim can never arrive.
                return Err("victim arrival is unreachable in this geometry".into());
            };
            // `memo` counts every Serve on the path including the one that
            // services the victim; the starvation bound excludes it.
            let services = memo[entry] - 1;
            let mut targets = path_to(&ex, entry as u32);
            let mut cur = entry as u32;
            loop {
                let nxt = best[cur as usize];
                targets.push(nxt);
                if ex.reps[nxt as usize].victim == VictimPhase::Served {
                    break;
                }
                cur = nxt;
            }
            let (stem, _) = follow(&ex, cfg, &policy, initial(cfg), &targets);
            report.verdict = LivenessVerdict::Bounded {
                services,
                cycles: services_to_cycles(services, &cfg.timing),
            };
            report.witness = Some(Witness { stem, cycle: Vec::new() });
        }
        None => {
            let (entry, cycle_targets) = minimal_lasso(&ex, cfg, &policy);
            let stem_targets = path_to(&ex, entry);
            let (stem, at_entry) = follow(&ex, cfg, &policy, initial(cfg), &stem_targets);
            let (cycle, _) = follow(&ex, cfg, &policy, at_entry, &cycle_targets);
            report.verdict = LivenessVerdict::Unbounded;
            report.witness = Some(Witness { stem, cycle });
        }
    }
    Ok(report)
}

/// Model-checks the named scheduler's declared liveness contract.
///
/// # Errors
///
/// On an unknown scheduler name, a scheduler with no declared contract,
/// or an invalid geometry.
pub fn check_scheduler_liveness(
    name: &str,
    cfg: &LivenessConfig,
) -> Result<LivenessReport, String> {
    let make = scheduler_by_name(name).ok_or_else(|| format!("unknown scheduler '{name}'"))?;
    let contract = make()
        .liveness_contract()
        .ok_or_else(|| format!("scheduler '{name}' declares no liveness contract"))?;
    check_contract(&contract, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_monitor::prelude;
    use parbs_obs::EventSink;

    #[test]
    fn frfcfs_emits_a_minimal_starvation_lasso() {
        let r = check_scheduler_liveness("FR-FCFS", &LivenessConfig::tiny()).unwrap();
        assert!(matches!(r.verdict, LivenessVerdict::Unbounded), "{r}");
        assert!(r.claim_verified(), "FR-FCFS declares unbounded starvation");
        assert!(r.closed);
        let w = r.witness.expect("lasso witness");
        // The analytically minimal lasso: open a row for the adversary
        // (inject + serve), enqueue the victim on a conflicting row, then
        // hammer forever (inject row-hit, serve it).
        assert_eq!(w.stem.len(), 3, "minimal stem:\n{}", w.describe());
        assert_eq!(w.cycle.len(), 2, "minimal cycle:\n{}", w.describe());
        assert!(w.stem.iter().any(|m| matches!(m, Move::InjectVictim { .. })));
        assert!(w.cycle.contains(&Move::Serve));
        assert!(w.cycle.iter().any(|m| matches!(m, Move::Inject { .. })));
    }

    #[test]
    fn bounded_schedulers_prove_their_claims() {
        for name in ["FCFS", "PAR-BS", "BLISS", "ATLAS", "NFQ", "STFM"] {
            let r = check_scheduler_liveness(name, &LivenessConfig::tiny()).unwrap();
            assert!(r.closed, "{name} exploration must reach its fixpoint");
            let LivenessVerdict::Bounded { services, cycles } = r.verdict else {
                panic!("{name} must prove a finite starvation bound: {r}");
            };
            assert!(services > 0 && cycles > 0, "{r}");
            assert!(r.claim_verified(), "{name} claims bounded: {r}");
            let w = r.witness.expect("extremal trace");
            assert!(w.cycle.is_empty());
            // Serves before the victim arrives (setting up worst-case
            // policy state) are not starvation; the bound is realized by
            // the serves after `inject-victim`, ending with the victim's
            // own service.
            let after_arrival = w
                .stem
                .iter()
                .skip_while(|m| !matches!(m, Move::InjectVictim { .. }))
                .filter(|m| matches!(m, Move::Serve))
                .count() as u32;
            assert_eq!(
                after_arrival,
                services + 1,
                "extremal trace realizes the bound plus the victim's own service"
            );
        }
    }

    #[test]
    fn fcfs_bound_is_the_queue_backlog() {
        // Under FCFS the worst case is arriving behind a full queue:
        // capacity - 1 older requests.
        let cfg = LivenessConfig::tiny();
        let r = check_scheduler_liveness("FCFS", &cfg).unwrap();
        let LivenessVerdict::Bounded { services, .. } = r.verdict else {
            panic!("FCFS is bounded")
        };
        assert_eq!(services as usize, cfg.queue_capacity - 1);
    }

    #[test]
    fn symmetry_reduction_exceeds_10x_on_4_bank_depth_8() {
        let cfg = LivenessConfig {
            banks: 4,
            rows: 2,
            queue_capacity: 8,
            max_depth: Some(8),
            ..Default::default()
        };
        let r = check_scheduler_liveness("FR-FCFS", &cfg).unwrap();
        assert!(r.canonical_states > 1_000, "nontrivial exploration: {r}");
        assert!(
            r.raw_states >= 10 * r.canonical_states,
            "symmetry reduction must be at least 10x: {r}"
        );
    }

    #[test]
    fn parbs_witness_replays_clean_through_the_invariant_monitor() {
        let cfg = LivenessConfig::tiny();
        let r = check_scheduler_liveness("PAR-BS", &cfg).unwrap();
        let w = r.witness.expect("extremal trace");
        let events = w.to_events(&r.policy, &cfg);
        assert!(
            events.iter().any(|e| matches!(e, Event::BatchFormed { .. })),
            "the batching policy must form batches in the witness"
        );
        assert!(events.iter().any(|e| matches!(e, Event::Marked { .. })));
        let spec = prelude::invariants();
        let mut mon = spec.monitor();
        for e in &events {
            mon.record(e);
        }
        assert!(mon.ok(), "PAR-BS witness must satisfy the batching invariants: {}", mon.summary());
    }

    #[test]
    fn frfcfs_lasso_replays_through_the_invariant_monitor() {
        // The starvation lasso is unfair but not a *batching*-invariant
        // violation: it must replay clean too (there are no marks at all).
        let cfg = LivenessConfig::tiny();
        let r = check_scheduler_liveness("FR-FCFS", &cfg).unwrap();
        let w = r.witness.expect("lasso");
        let events = w.to_events(&r.policy, &cfg);
        assert!(!events.is_empty());
        let spec = prelude::invariants();
        let mut mon = spec.monitor();
        for e in &events {
            mon.record(e);
        }
        assert!(mon.ok(), "{}", mon.summary());
    }

    #[test]
    fn unknown_scheduler_and_bad_geometry_error() {
        assert!(check_scheduler_liveness("NOPE", &LivenessConfig::tiny()).is_err());
        let cfg = LivenessConfig { banks: 0, ..Default::default() };
        assert!(check_scheduler_liveness("FCFS", &cfg).is_err());
    }

    #[test]
    fn truncated_exploration_is_inconclusive() {
        let cfg = LivenessConfig { max_depth: Some(2), ..Default::default() };
        let r = check_scheduler_liveness("FCFS", &cfg).unwrap();
        assert!(!r.closed);
        assert!(matches!(r.verdict, LivenessVerdict::Inconclusive));
        assert!(!r.claim_verified());
    }
}
