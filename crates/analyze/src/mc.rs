//! Differential bounded model checking of the DRAM timing model.
//!
//! Three implementations of DDR2 legality coexist in the workspace:
//!
//! 1. [`Channel::can_issue`] — the imperative, incrementally-maintained
//!    gating the simulator schedules against;
//! 2. [`ProtocolChecker`] — the post-hoc validator, whose timing checks are
//!    evaluated from the declarative [`parbs_dram::TIMING_RULES`] table via
//!    `RuleEngine`;
//! 3. [`TimingOracle`] — this crate's log-scanning earliest-time evaluator
//!    over the same table (or a mutated copy).
//!
//! The model checker exhaustively enumerates legal command sequences on a
//! tiny geometry up to a bounded depth and, at every reached state, compares
//! the three on the **full command alphabet**. Legality of a fixed command
//! is monotone in time for all three (once legal, it stays legal until
//! another command issues), so agreement reduces to agreement of the
//! *earliest-legal threshold*: the oracle computes its threshold
//! analytically, and the other two are probed at exactly two cycles — one
//! DRAM cycle below the claimed threshold (must be illegal) and at the
//! threshold itself (must be legal). A command the oracle rules out
//! entirely is probed once at a generous horizon: monotonicity makes
//! "illegal at the horizon" equivalent to "illegal everywhere below it".
//!
//! Enumeration is iterative-deepening DFS over *canonical* schedules (every
//! issued command issues at its earliest legal cycle), so the first
//! disagreement found carries a **minimal-length command prefix** — the
//! shortest witness, which is what makes a report debuggable.

use parbs_dram::{
    Channel, Command, CommandKind, ProtocolChecker, RequestId, ThreadId, TimingParams, TimingRule,
    DRAM_CYCLE, TIMING_RULES,
};

use crate::oracle::{TimingOracle, Verdict};

/// Geometry, depth and timing for one differential run.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Ranks of the model-checked channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Rows per bank (the enumeration tries every row of every bank).
    pub rows: u64,
    /// Maximum command-prefix length explored.
    pub depth: u32,
    /// Timing parameters under test.
    pub timing: TimingParams,
}

impl McConfig {
    /// The standard tiny geometry: `ranks` ranks sharing **2 banks total**
    /// (so the 2-rank variant exercises the cross-rank rules with one bank
    /// per rank) × 4 rows under DDR2-800 timings, explored to `depth`.
    #[must_use]
    pub fn tiny(ranks: usize, depth: u32) -> Self {
        McConfig {
            ranks,
            banks_per_rank: (2 / ranks).max(1),
            rows: 4,
            depth,
            timing: TimingParams::ddr2_800(),
        }
    }
}

/// A three-way disagreement: the shortest command prefix, the candidate
/// command and each implementation's earliest-legal threshold for it.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The commands issued before the disputed candidate, with their cycles.
    /// Minimal in length: no shorter prefix (in the same run) disagrees.
    pub prefix: Vec<(Command, u64)>,
    /// The candidate command the implementations disagree on.
    pub candidate: Command,
    /// `Channel::can_issue`'s threshold.
    pub channel: Verdict,
    /// The rule-table oracle's threshold.
    pub oracle: Verdict,
    /// The protocol checker's threshold.
    pub checker: Verdict,
    /// The rule the checker cites at the last cycle it still rejects.
    pub checker_rule: Option<String>,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "disagreement on {:?} (rank {}, bank {}, row {}) after {} command(s):",
            self.candidate.kind,
            self.candidate.rank,
            self.candidate.bank,
            self.candidate.row,
            self.prefix.len()
        )?;
        for (cmd, at) in &self.prefix {
            writeln!(
                f,
                "  {:>6}: {:?} rank {} bank {} row {}",
                at, cmd.kind, cmd.rank, cmd.bank, cmd.row
            )?;
        }
        writeln!(f, "  channel: {}", self.channel)?;
        writeln!(f, "  oracle:  {}", self.oracle)?;
        write!(f, "  checker: {}", self.checker)?;
        if let Some(rule) = &self.checker_rule {
            write!(f, " (last cited rule: {rule})")?;
        }
        Ok(())
    }
}

/// Aggregate counters of a clean differential run.
#[derive(Debug, Clone, Copy, Default)]
pub struct McStats {
    /// States at which the full alphabet was compared.
    pub states: u64,
    /// Candidate commands compared (states × alphabet).
    pub commands: u64,
    /// Deepest prefix length reached.
    pub depth: u32,
}

/// One enumerated state: the three implementations plus the path that
/// produced it.
#[derive(Clone)]
struct State {
    channel: Channel,
    checker: ProtocolChecker,
    oracle: TimingOracle,
    last_issue: Option<u64>,
    prefix: Vec<(Command, u64)>,
}

impl State {
    fn initial(cfg: &McConfig, rules: &[TimingRule]) -> Self {
        State {
            channel: Channel::with_ranks(cfg.ranks, cfg.banks_per_rank, cfg.timing),
            checker: ProtocolChecker::with_ranks(cfg.ranks, cfg.banks_per_rank, cfg.timing),
            oracle: TimingOracle::with_rules(cfg.ranks, cfg.banks_per_rank, cfg.timing, rules),
            last_issue: None,
            prefix: Vec::new(),
        }
    }

    /// Earliest cycle any next command may issue: one command-bus slot after
    /// the previous issue (the controller's one-command-per-cycle rule).
    fn base(&self) -> u64 {
        self.last_issue.map_or(0, |t| t + DRAM_CYCLE)
    }
}

/// The full command alphabet of a geometry: every (kind, bank, row)
/// combination plus per-rank refreshes.
fn alphabet(cfg: &McConfig) -> Vec<Command> {
    let mut cmds = Vec::new();
    let banks = cfg.ranks * cfg.banks_per_rank;
    for bank in 0..banks {
        let rank = bank / cfg.banks_per_rank;
        for row in 0..cfg.rows {
            for kind in [CommandKind::Activate, CommandKind::Read, CommandKind::Write] {
                cmds.push(Command { kind, rank, bank, row, col: 0, request: RequestId(0) });
            }
        }
        cmds.push(Command {
            kind: CommandKind::Precharge,
            rank,
            bank,
            row: 0,
            col: 0,
            request: RequestId(0),
        });
    }
    for rank in 0..cfg.ranks {
        cmds.push(Command::refresh(rank, RequestId(u64::MAX)));
    }
    cmds
}

/// A horizon past every single-step wait the timing admits: any command the
/// oracle deems reachable becomes legal within this margin of `base`.
fn horizon_slack(t: &TimingParams) -> u64 {
    let raw = t.t_rfc
        + t.t_rc
        + t.t_faw
        + t.t_cl
        + t.t_cwl
        + t.t_burst
        + t.t_wtr
        + t.t_wr
        + t.t_rtrs
        + DRAM_CYCLE;
    raw.div_ceil(DRAM_CYCLE) * DRAM_CYCLE
}

/// The checker's view of `cmd` at `at`: `Ok` or the cited rule.
fn checker_probe(checker: &ProtocolChecker, cmd: &Command, at: u64) -> Result<(), String> {
    checker.check(cmd, at).map_err(|v| v.rule)
}

/// Scans for an implementation's true threshold in `[base, horizon]`;
/// used only to build a readable report once a spot check has failed.
fn scan_threshold(base: u64, horizon: u64, mut legal: impl FnMut(u64) -> bool) -> Verdict {
    let mut t = base;
    while t <= horizon {
        if legal(t) {
            return Verdict::At(t);
        }
        t += DRAM_CYCLE;
    }
    Verdict::Never
}

/// Compares the three implementations on `cmd` at the state. Returns the
/// agreed verdict, or the fully-scanned disagreement report.
fn compare_one(state: &State, cmd: &Command, horizon: u64) -> Result<Verdict, Box<Disagreement>> {
    let base = state.base();
    let oracle_says = match state.oracle.earliest_issue(cmd.kind, cmd.rank, cmd.bank, cmd.row) {
        Verdict::Never => Verdict::Never,
        Verdict::At(e) => Verdict::At(e.max(base)),
    };
    // Spot checks: monotone legality means two probes pin the threshold.
    let agreed = match oracle_says {
        Verdict::Never => {
            !state.channel.can_issue(cmd, horizon)
                && checker_probe(&state.checker, cmd, horizon).is_err()
        }
        Verdict::At(t) => {
            let below_ok = t == base
                || (!state.channel.can_issue(cmd, t - DRAM_CYCLE)
                    && checker_probe(&state.checker, cmd, t - DRAM_CYCLE).is_err());
            below_ok
                && state.channel.can_issue(cmd, t)
                && checker_probe(&state.checker, cmd, t).is_ok()
        }
    };
    if agreed {
        return Ok(oracle_says);
    }
    // Disagreement: reconstruct every threshold for the report.
    let channel = scan_threshold(base, horizon, |t| state.channel.can_issue(cmd, t));
    let checker = scan_threshold(base, horizon, |t| checker_probe(&state.checker, cmd, t).is_ok());
    let last_reject = match checker {
        Verdict::At(t) if t > base => Some(t - DRAM_CYCLE),
        Verdict::At(_) => None,
        Verdict::Never => Some(horizon),
    };
    let checker_rule = last_reject.and_then(|t| checker_probe(&state.checker, cmd, t).err());
    Err(Box::new(Disagreement {
        prefix: state.prefix.clone(),
        candidate: *cmd,
        channel,
        oracle: oracle_says,
        checker,
        checker_rule,
    }))
}

/// Issues `cmd` at `at` on a clone of `state`, advancing all three
/// implementations.
fn step(state: &State, cmd: &Command, at: u64) -> State {
    let mut next = state.clone();
    next.channel.issue(cmd, ThreadId(0), at);
    next.checker
        .observe(cmd, at)
        .expect("checker accepted this command when its threshold was compared");
    next.oracle.record(cmd.kind, cmd.rank, cmd.bank, cmd.row, at);
    next.last_issue = Some(at);
    next.prefix.push((*cmd, at));
    next
}

/// Iterative-deepening DFS: at iteration `d`, compare the alphabet at every
/// state of depth exactly `d` (shallower states were compared in earlier
/// iterations), expanding canonically (earliest legal cycle) in between.
fn dfs(
    state: &State,
    remaining: u32,
    alpha: &[Command],
    horizon_slack: u64,
    stats: &mut McStats,
) -> Result<(), Box<Disagreement>> {
    let horizon = state.base() + horizon_slack;
    if remaining == 0 {
        stats.states += 1;
        for cmd in alpha {
            stats.commands += 1;
            compare_one(state, cmd, horizon)?;
        }
        return Ok(());
    }
    for cmd in alpha {
        // Expansion trusts the oracle's threshold: this state's alphabet was
        // already compared (and agreed) at an earlier, shallower iteration,
        // and `step` re-asserts legality in channel and checker.
        if let Verdict::At(e) = state.oracle.earliest_issue(cmd.kind, cmd.rank, cmd.bank, cmd.row) {
            let at = e.max(state.base());
            let next = step(state, cmd, at);
            dfs(&next, remaining - 1, alpha, horizon_slack, stats)?;
        }
    }
    Ok(())
}

/// Runs the differential bounded model check with the shipped
/// [`TIMING_RULES`] table; see [`run_differential_with_rules`].
///
/// # Errors
///
/// Returns the minimal-prefix [`Disagreement`] if the implementations ever
/// diverge.
pub fn run_differential(cfg: &McConfig) -> Result<McStats, Box<Disagreement>> {
    run_differential_with_rules(cfg, TIMING_RULES)
}

/// Runs the differential bounded model check with an explicit oracle rule
/// table (channel and checker always use the shipped rules — seeding a
/// mutation here is how tests prove divergences are caught).
///
/// # Errors
///
/// Returns the first [`Disagreement`] found; iterative deepening makes its
/// prefix minimal in length.
pub fn run_differential_with_rules(
    cfg: &McConfig,
    rules: &[TimingRule],
) -> Result<McStats, Box<Disagreement>> {
    assert!(cfg.ranks > 0 && cfg.banks_per_rank > 0 && cfg.rows > 0, "degenerate geometry");
    cfg.timing.validate().expect("model-checked timing parameters must be self-consistent");
    let alpha = alphabet(cfg);
    let slack = horizon_slack(&cfg.timing);
    let mut stats = McStats::default();
    for d in 0..=cfg.depth {
        let root = State::initial(cfg, rules);
        dfs(&root, d, &alpha, slack, &mut stats)?;
        stats.depth = d;
    }
    Ok(stats)
}
