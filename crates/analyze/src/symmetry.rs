//! Symmetry reduction for the liveness model checker.
//!
//! The liveness model's geometry is fully symmetric: nothing in any policy
//! class distinguishes bank 2 from bank 3, row 0 from row 1 within a bank,
//! or one adversary thread from another — every priority rule is defined in
//! terms of *relations* (same bank, same row as the open row, same thread)
//! and arrival order. The model's automorphism group is therefore
//!
//! ```text
//! G = S_banks × S_adversaries × Π_bank S_rows
//! ```
//!
//! (the victim thread is pinned: it is the request whose starvation is
//! being decided). Exploring the quotient space — one representative per
//! G-orbit — shrinks the reachable set by up to `|G|` while preserving
//! every reachability and cycle property, because the transition relation
//! is equivariant (`s → t` iff `g·s → g·t`) and the initial state is fixed
//! by all of `G`.
//!
//! Two things make the quotient cheap here:
//!
//! 1. **Linear-time canonical forms.** The queue is ordered by arrival,
//!    and arrival order is label-independent; scanning it gives a
//!    deterministic, equivariant *first-appearance* relabeling of banks,
//!    rows-within-bank and adversary threads — no enumeration of the (up
//!    to `8!·4!·(8!)^8`) group elements. Entities that never appear in the
//!    queue are ordered by their remaining observable content (open-row
//!    flag; per-thread policy counters); entities with identical content
//!    are genuinely interchangeable, so any fixed order yields the same
//!    encoding.
//! 2. **Orbit sizes by orbit–stabilizer.** The raw (unquotiented) state
//!    count is recovered exactly as `Σ |orbit(s)|` over canonical states,
//!    with `|orbit| = |G| / |stabilizer|` and the stabilizer counted
//!    combinatorially from the same first-appearance scan: pinned entities
//!    contribute 1, interchangeable classes contribute their factorials,
//!    and each bank's unused rows contribute `(rows − used)!`. No raw
//!    re-exploration is ever performed.

use crate::liveness::{LivenessConfig, ModelState, VictimPhase};

/// Sentinel for "no row open" / "not yet relabeled".
pub(crate) const NONE: u8 = u8::MAX;

fn factorial(n: u64) -> u128 {
    (1..=u128::from(n)).product::<u128>().max(1)
}

/// The deterministic relabeling computed by one first-appearance scan.
struct Relabeling {
    /// Old bank id → canonical bank id.
    bank: Vec<u8>,
    /// Canonical bank id → old bank id.
    bank_inv: Vec<u8>,
    /// Old thread id → canonical thread id (victim pinned at 0).
    thread: Vec<u8>,
    /// Canonical thread id → old thread id.
    thread_inv: Vec<u8>,
    /// Per old bank: old row id → canonical row id.
    row: Vec<Vec<u8>>,
    /// Per old bank: number of distinct rows used (queue slots + open row).
    rows_used: Vec<u8>,
    /// Banks appearing in the queue (pinned by their first slot).
    banks_pinned: usize,
    /// Unpinned banks with an open row (interchangeable among themselves).
    banks_open_free: usize,
    /// Sizes of the interchangeable classes of queue-absent adversaries
    /// (threads with identical policy content).
    absent_classes: Vec<u64>,
}

/// One scan of the state, producing the canonical relabeling and the
/// stabilizer bookkeeping at once.
fn relabel(s: &ModelState, cfg: &LivenessConfig) -> Relabeling {
    let banks = cfg.banks;
    let threads = cfg.adversary_threads + 1;
    let mut bank = vec![NONE; banks];
    let mut next_bank = 0u8;
    let mut thread = vec![NONE; threads];
    thread[0] = 0;
    let mut next_thread = 1u8;
    let mut row = vec![vec![NONE; cfg.rows as usize]; banks];
    let mut rows_used = vec![0u8; banks];
    for slot in &s.queue {
        let (b, t) = (slot.bank as usize, slot.thread as usize);
        if bank[b] == NONE {
            bank[b] = next_bank;
            next_bank += 1;
        }
        if thread[t] == NONE {
            thread[t] = next_thread;
            next_thread += 1;
        }
        if row[b][slot.row as usize] == NONE {
            row[b][slot.row as usize] = rows_used[b];
            rows_used[b] += 1;
        }
    }
    let banks_pinned = next_bank as usize;
    // Queue-absent banks: open ones first (all identical after row
    // relabeling — their open row becomes row 0), then closed ones.
    let mut banks_open_free = 0usize;
    for (lbl, &open) in bank.iter_mut().zip(&s.open) {
        if *lbl == NONE && open != NONE {
            *lbl = next_bank;
            next_bank += 1;
            banks_open_free += 1;
        }
    }
    for lbl in &mut bank {
        if *lbl == NONE {
            *lbl = next_bank;
            next_bank += 1;
        }
    }
    // Open rows get the next row id of their bank if not already seen.
    for b in 0..banks {
        let r = s.open[b];
        if r != NONE && row[b][r as usize] == NONE {
            row[b][r as usize] = rows_used[b];
            rows_used[b] += 1;
        }
    }
    // Queue-absent adversaries: order by observable policy content
    // (descending, any fixed order works); threads with identical content
    // are interchangeable and form the stabilizer classes.
    let mut absent: Vec<(u8, u8, bool, usize)> = (1..threads)
        .filter(|&t| thread[t] == NONE)
        .map(|t| (s.pol.flags[t], s.pol.counters[t], s.pol.last_served == t as u8, t))
        .map(|(f, c, l, t)| (u8::from(f), c, l, t))
        .collect();
    absent.sort_by(|a, b| (b.0, b.1, b.2).cmp(&(a.0, a.1, a.2)).then(a.3.cmp(&b.3)));
    let mut absent_classes: Vec<u64> = Vec::new();
    let mut prev: Option<(u8, u8, bool)> = None;
    for &(f, c, l, t) in &absent {
        thread[t] = next_thread;
        next_thread += 1;
        if prev == Some((f, c, l)) {
            *absent_classes.last_mut().expect("class open") += 1;
        } else {
            absent_classes.push(1);
            prev = Some((f, c, l));
        }
    }
    let mut bank_inv = vec![0u8; banks];
    for (old, &new) in bank.iter().enumerate() {
        bank_inv[new as usize] = old as u8;
    }
    let mut thread_inv = vec![0u8; threads];
    for (old, &new) in thread.iter().enumerate() {
        thread_inv[new as usize] = old as u8;
    }
    Relabeling {
        bank,
        bank_inv,
        thread,
        thread_inv,
        row,
        rows_used,
        banks_pinned,
        banks_open_free,
        absent_classes,
    }
}

/// The canonical byte encoding of `s` — equal for two states iff they lie
/// in the same `G`-orbit — together with the exact orbit size
/// `|G|/|stabilizer|`.
pub(crate) fn canonicalize(s: &ModelState, cfg: &LivenessConfig) -> (Vec<u8>, u64) {
    let lab = relabel(s, cfg);
    let banks = cfg.banks;
    let threads = cfg.adversary_threads + 1;
    let mut out = Vec::with_capacity(2 + s.queue.len() * 4 + banks + 2 + threads * 2);
    out.push(s.queue.len() as u8);
    for slot in &s.queue {
        out.push(lab.thread[slot.thread as usize]);
        out.push(lab.bank[slot.bank as usize]);
        out.push(lab.row[slot.bank as usize][slot.row as usize]);
        out.push(u8::from(slot.marked));
    }
    for new_b in 0..banks {
        let b = lab.bank_inv[new_b] as usize;
        let r = s.open[b];
        out.push(if r == NONE { NONE } else { lab.row[b][r as usize] });
    }
    out.push(match s.victim {
        VictimPhase::NotArrived => 0,
        VictimPhase::Queued => 1,
        VictimPhase::Served => 2,
    });
    out.push(if s.pol.last_served == NONE { NONE } else { lab.thread[s.pol.last_served as usize] });
    out.push(s.pol.streak);
    for new_t in 0..threads {
        let t = lab.thread_inv[new_t] as usize;
        out.push(u8::from(s.pol.flags[t]));
        out.push(s.pol.counters[t]);
    }
    // Orbit–stabilizer: |G| = B!·A!·(R!)^B; the stabilizer is the product
    // of the interchangeable-class factorials and the free-row factorials.
    let r_fact = factorial(u64::from(cfg.rows));
    let mut group: u128 = factorial(banks as u64) * factorial(cfg.adversary_threads as u64);
    let mut stab: u128 = factorial((banks - lab.banks_pinned - lab.banks_open_free) as u64)
        * factorial(lab.banks_open_free as u64);
    for &class in &lab.absent_classes {
        stab *= factorial(class);
    }
    for b in 0..banks {
        group *= r_fact;
        stab *= factorial(u64::from(cfg.rows - lab.rows_used[b]));
    }
    debug_assert_eq!(group % stab, 0, "stabilizer must divide the group order");
    let orbit = group / stab;
    (out, u64::try_from(orbit).expect("orbit size fits u64"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::{PolicyState, Slot};

    fn cfg() -> LivenessConfig {
        LivenessConfig {
            banks: 4,
            rows: 2,
            queue_capacity: 8,
            adversary_threads: 1,
            ..Default::default()
        }
    }

    fn empty(cfg: &LivenessConfig) -> ModelState {
        ModelState {
            queue: Vec::new(),
            open: vec![NONE; cfg.banks],
            victim: VictimPhase::NotArrived,
            pol: PolicyState::new(cfg.adversary_threads + 1),
        }
    }

    #[test]
    fn initial_state_is_fixed_by_the_whole_group() {
        let c = cfg();
        let (_, orbit) = canonicalize(&empty(&c), &c);
        assert_eq!(orbit, 1);
    }

    #[test]
    fn single_slot_orbit_counts_label_choices() {
        // One adversary request: any of 4 banks × 2 rows = 8 raw states
        // collapse to one canonical state.
        let c = cfg();
        let mut s = empty(&c);
        s.queue.push(Slot { thread: 1, bank: 2, row: 1, marked: false });
        let (key, orbit) = canonicalize(&s, &c);
        assert_eq!(orbit, 8);
        // Any relabeled variant produces the identical key and orbit.
        let mut t = empty(&c);
        t.queue.push(Slot { thread: 1, bank: 0, row: 0, marked: false });
        assert_eq!(canonicalize(&t, &c), (key, orbit));
    }

    #[test]
    fn open_banks_are_interchangeable_only_with_open_banks() {
        let c = cfg();
        let mut a = empty(&c);
        a.open[1] = 0;
        let mut b = empty(&c);
        b.open[3] = 1;
        assert_eq!(canonicalize(&a, &c), canonicalize(&b, &c));
        let closed = empty(&c);
        assert_ne!(canonicalize(&a, &c).0, canonicalize(&closed, &c).0);
        // One open bank: 4 bank choices × 2 row choices = 8 raw states.
        assert_eq!(canonicalize(&a, &c).1, 8);
    }

    #[test]
    fn policy_counters_block_thread_interchange() {
        let mut c = cfg();
        c.adversary_threads = 2;
        let mut a = empty(&c);
        a.pol.counters[1] = 2;
        let mut b = empty(&c);
        b.pol.counters[2] = 2;
        // Same orbit: which adversary holds the counter is a relabeling.
        assert_eq!(canonicalize(&a, &c), canonicalize(&b, &c));
        // But the orbit has 2 members now (the two assignments), where the
        // all-zero state has 1.
        assert_eq!(canonicalize(&a, &c).1, 2);
        assert_eq!(canonicalize(&empty(&c), &c).1, 1);
    }
}
