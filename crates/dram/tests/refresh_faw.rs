//! Tests for the four-activate window and all-bank refresh.

use parbs_dram::{
    Channel, Command, CommandKind, Controller, DramConfig, FcfsScheduler, LineAddr,
    ProtocolChecker, Request, RequestId, RequestKind, ThreadId, TimingParams,
};

fn act(bank: usize, row: u64) -> Command {
    Command { kind: CommandKind::Activate, rank: 0, bank, row, col: 0, request: RequestId(0) }
}

#[test]
fn tfaw_blocks_fifth_activate() {
    let t = TimingParams::ddr2_800();
    assert!(t.t_faw > 4 * t.t_rrd, "test assumes tFAW is the binding constraint");
    let mut ch = Channel::new(8, t);
    // Four activates at tRRD spacing.
    for (i, now) in (0..4).map(|i| (i, i as u64 * t.t_rrd)) {
        assert!(ch.can_issue(&act(i, 1), now), "activate {i} should be legal");
        ch.issue(&act(i, 1), ThreadId(0), now);
    }
    let after_rrd = 4 * t.t_rrd;
    assert!(!ch.can_issue(&act(4, 1), after_rrd), "fifth activate within tFAW must be blocked");
    assert!(
        ch.can_issue(&act(4, 1), t.t_faw + 10),
        "fifth activate after the window must be legal"
    );
}

#[test]
fn checker_accepts_refresh_and_blocks_act_during_trfc() {
    let t = TimingParams::ddr2_800();
    let mut c = ProtocolChecker::new(8, t);
    c.observe(&Command::refresh(0, RequestId(u64::MAX)), 0).unwrap();
    let err = c.observe(&act(0, 1), t.t_rfc - 10).unwrap_err();
    assert_eq!(err.rule, "tRFC");
    let mut c = ProtocolChecker::new(8, t);
    c.observe(&Command::refresh(0, RequestId(u64::MAX)), 0).unwrap();
    c.observe(&act(0, 1), t.t_rfc).unwrap();
}

#[test]
fn refresh_closes_open_rows() {
    let t = TimingParams::ddr2_800();
    let mut ch = Channel::new(8, t);
    ch.issue(&act(0, 5), ThreadId(0), 0);
    assert_eq!(ch.bank(0).open_row(), Some(5));
    ch.refresh(1_000);
    assert_eq!(ch.bank(0).open_row(), None);
    assert!(ch.refresh_until() >= 1_000 + t.t_rfc);
    // Nothing can issue during the refresh.
    assert!(!ch.can_issue(&act(0, 5), 1_000 + t.t_rfc - 10));
    assert!(ch.can_issue(&act(0, 5), 1_000 + t.t_rfc));
}

#[test]
fn controller_refreshes_periodically() {
    let cfg = DramConfig::default();
    let t_refi = cfg.timing.t_refi;
    assert!(t_refi > 0);
    let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
    // Keep a trickle of reads flowing so the controller is active.
    let mut out = Vec::new();
    let mut id = 0u64;
    let horizon = 4 * t_refi;
    for now in 0..horizon {
        if now % 500 == 0 && ctrl.can_accept_read() {
            let addr = LineAddr { channel: 0, bank: (id % 8) as usize, row: id % 7, col: 0 };
            ctrl.try_enqueue(Request::new(id, ThreadId(0), addr, RequestKind::Read, now)).unwrap();
            id += 1;
        }
        ctrl.tick(now, &mut out);
    }
    let refreshes = ctrl.stats().refreshes;
    // One refresh per interval, ± the deferral slack.
    assert!(
        (3..=4).contains(&refreshes),
        "expected ~{} refreshes over {horizon} cycles, got {refreshes}",
        horizon / t_refi
    );
    assert!(!out.is_empty(), "reads still complete alongside refreshes");
}

#[test]
fn refresh_disabled_when_trefi_zero() {
    let mut cfg = DramConfig::default();
    cfg.timing.t_refi = 0;
    let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
    let mut out = Vec::new();
    for now in 0..100_000 {
        ctrl.tick(now, &mut out);
    }
    assert_eq!(ctrl.stats().refreshes, 0);
}

#[test]
fn checker_detects_tfaw_violation() {
    let t = TimingParams::ddr2_800();
    let mut c = ProtocolChecker::new(8, t);
    for i in 0..4u64 {
        c.observe(&act(i as usize, 1), i * t.t_rrd).unwrap();
    }
    let err = c.observe(&act(4, 1), 4 * t.t_rrd).unwrap_err();
    assert_eq!(err.rule, "tFAW");
    // After the window, a fresh checker run at legal spacing passes.
    let mut c = ProtocolChecker::new(8, t);
    for i in 0..6u64 {
        c.observe(&act(i as usize, 1), i * (t.t_faw / 3)).unwrap();
    }
}
